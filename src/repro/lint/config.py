"""Rule → module mapping for :mod:`repro.lint`.

Each rule carries two path lists, matched with :func:`fnmatch.fnmatch`
against the file's path *relative to the* ``repro`` *package root* (so the
same config works whether the checker is pointed at ``src/repro``, a single
file, or a checkout-relative path):

* ``paths`` — the modules the rule applies to (empty ⇒ everywhere);
* ``allow`` — modules exempt from the rule even when ``paths`` matches
  (e.g. ``sim/randomness.py`` is the one sanctioned home of raw
  ``random.Random`` construction).

The defaults below *are* the project contract; a ``lint.toml`` next to the
checked tree (or passed via ``--config``) can override any rule's lists
using the same shape::

    [lint.RPR002]
    allow = ["obs/*", "bench/*", "campaign/*"]

``lint.toml`` is parsed with :mod:`tomllib` (stdlib, 3.11+); when the file
is absent the embedded defaults apply, so the checker has no set-up step.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, List, Optional

try:  # pragma: no cover - stdlib on 3.11+, gate kept for older interpreters
    import tomllib
except ModuleNotFoundError:  # pragma: no cover
    tomllib = None  # type: ignore[assignment]

from repro.errors import ConfigurationError

#: Modules whose event ordering, packet contents or hashing feed the
#: byte-determinism contract.  Runner plumbing (campaign), measurement
#: harnesses (bench, obs) and pure reporting (stats) are not on that path.
DETERMINISTIC_MODULES = [
    "sim/*", "phy/*", "mac/*", "channel/*", "net/*", "core/*",
    "apps/*", "transport/*", "mobility/*", "topology/*", "node/*",
    "experiments/*",
]

#: Modules on the per-event hot path, where ``__slots__`` layouts and
#: ``enabled``-guarded instrumentation are mandatory (the PR 6/7 contract).
HOT_PATH_MODULES = ["sim/*", "phy/*", "mac/*", "channel/*"]

#: Method names that emit, schedule or hash — iteration order flowing into
#: one of these must be deterministic (RPR003's sink heuristic).
ORDER_SINKS = [
    "schedule", "schedule_at", "push", "send", "broadcast", "emit",
    "enqueue", "enqueue_broadcast", "enqueue_unicast", "transmit",
    "forward", "deliver", "update", "record", "hash", "sha256", "md5",
]

#: ``receiver.method`` specs for instrumentation emitters that must sit
#: behind an ``.enabled`` guard on the hot path (RPR005).  A leading
#: underscore on the receiver at the call site (``self._tracer.emit``)
#: matches the bare spec.
GUARDED_INSTRUMENTATION_CALLS = [
    "tracer.emit", "tracer.record",
    "metrics.inc", "metrics.observe",
    "journey.begin", "journey.record",
]

DEFAULT_CONFIG: Dict[str, Dict[str, List[str]]] = {
    "RPR001": {
        "paths": [],
        "allow": ["sim/randomness.py", "lint/*"],
    },
    "RPR002": {
        "paths": [],
        "allow": ["obs/*", "bench/*", "campaign/*", "lint/*"],
    },
    "RPR003": {
        "paths": list(DETERMINISTIC_MODULES),
        "allow": [],
        "sinks": list(ORDER_SINKS),
    },
    "RPR004": {
        "paths": list(HOT_PATH_MODULES),
        "allow": [],
    },
    "RPR005": {
        "paths": list(HOT_PATH_MODULES),
        "allow": [],
        "guarded_calls": list(GUARDED_INSTRUMENTATION_CALLS),
    },
    "RPR006": {
        "paths": [],
        "allow": ["lint/*"],
    },
}


@dataclass
class LintConfig:
    """Resolved per-rule path scoping."""

    rules: Dict[str, Dict[str, List[str]]] = field(
        default_factory=lambda: copy.deepcopy(DEFAULT_CONFIG))

    def rule_options(self, rule_id: str) -> Dict[str, List[str]]:
        """The option mapping for ``rule_id`` (empty when unconfigured)."""
        return self.rules.get(rule_id, {})

    def applies(self, rule_id: str, rel_path: str) -> bool:
        """True when ``rule_id`` should run against ``rel_path``.

        ``rel_path`` is POSIX-style and relative to the ``repro`` package
        root (see :func:`repro.lint.engine.relative_to_package`).
        """
        options = self.rule_options(rule_id)
        scoped = options.get("paths", [])
        if scoped and not any(fnmatch(rel_path, pattern) for pattern in scoped):
            return False
        return not any(fnmatch(rel_path, pattern)
                       for pattern in options.get("allow", []))

    def sinks(self, rule_id: str) -> frozenset:
        """Configured order-sink method names for ``rule_id``."""
        return frozenset(self.rule_options(rule_id).get("sinks", ORDER_SINKS))

    def guarded_calls(self, rule_id: str) -> frozenset:
        """Configured ``receiver.method`` guard specs for ``rule_id``."""
        return frozenset(self.rule_options(rule_id).get(
            "guarded_calls", GUARDED_INSTRUMENTATION_CALLS))


def load_config(path: Optional[Path] = None,
                search_from: Optional[Path] = None) -> LintConfig:
    """Build a :class:`LintConfig` from ``lint.toml`` or the defaults.

    ``path`` names an explicit config file (an error if unreadable).  Without
    one, ``lint.toml`` is searched for upward from ``search_from`` (typically
    the checked tree); the embedded defaults apply when nothing is found.
    """
    explicit = path is not None
    if path is None and search_from is not None:
        probe = search_from.resolve()
        if probe.is_file():
            probe = probe.parent
        for candidate_dir in (probe, *probe.parents):
            candidate = candidate_dir / "lint.toml"
            if candidate.is_file():
                path = candidate
                break
    config = LintConfig()
    if path is None:
        return config
    if tomllib is None:  # pragma: no cover - tomllib is stdlib on 3.11+
        if explicit:
            raise ConfigurationError(
                f"cannot parse {path}: tomllib unavailable on this interpreter")
        # A discovered lint.toml mirrors the embedded defaults by contract
        # (tests/lint/test_cli.py pins that), so pre-3.11 interpreters can
        # safely fall back to the defaults instead of failing the gate.
        return config
    try:
        data = tomllib.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"cannot read lint config {path}: {exc}") from exc
    for rule_id, options in data.get("lint", {}).items():
        if not isinstance(options, dict):
            raise ConfigurationError(
                f"lint config section [lint.{rule_id}] must be a table")
        merged = config.rules.setdefault(rule_id, {"paths": [], "allow": []})
        for key, value in options.items():
            if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
                raise ConfigurationError(
                    f"lint config option {rule_id}.{key} must be a list of strings")
            merged[key] = list(value)
    return config
