"""File walking, suppression handling and report assembly for repro.lint.

The engine parses each ``.py`` file once, hands the tree to every rule whose
config scope matches the file, then filters the findings through inline
suppression comments::

    rng = random.Random(seed)  # lint: disable=RPR001 -- derived from replica seed

A suppression hides the finding but is *recorded* — the report carries an
audit list of every suppression in the checked tree.  A suppression whose
``-- justification`` tail is missing still suppresses the original finding
but raises the meta-rule **RPR000** in its place, so unexplained escapes
fail the gate just like ordinary violations.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.rules import RULES, RuleContext

#: ``# lint: disable=RPR001`` or ``# lint: disable=RPR001,RPR003 -- why``.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Z0-9,\s]+?)(?:\s*--\s*(\S.*?))?\s*$")

META_RULE_ID = "RPR000"


@dataclass(slots=True)
class Violation:
    """One rule finding at a specific source location."""

    rule_id: str
    path: str
    line: int
    column: int
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }


@dataclass(slots=True)
class Suppression:
    """An inline ``# lint: disable`` that hid at least one finding."""

    rule_id: str
    path: str
    line: int
    justification: Optional[str]

    @property
    def justified(self) -> bool:
        return bool(self.justification)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "justification": self.justification,
            "justified": self.justified,
        }


@dataclass(slots=True)
class LintReport:
    """Aggregated result of a lint run."""

    violations: List[Violation] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    checked_files: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors

    def extend(self, other: "LintReport") -> None:
        self.violations.extend(other.violations)
        self.suppressions.extend(other.suppressions)
        self.checked_files += other.checked_files
        self.errors.extend(other.errors)

    def sorted(self) -> "LintReport":
        self.violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule_id))
        self.suppressions.sort(key=lambda s: (s.path, s.line, s.rule_id))
        return self

    def as_dict(self) -> Dict[str, object]:
        by_rule: Dict[str, int] = {}
        for violation in self.violations:
            by_rule[violation.rule_id] = by_rule.get(violation.rule_id, 0) + 1
        return {
            "ok": self.ok,
            "checked_files": self.checked_files,
            "violations": [v.as_dict() for v in self.violations],
            "suppressions": [s.as_dict() for s in self.suppressions],
            "counts": {
                "violations": len(self.violations),
                "suppressions": len(self.suppressions),
                "unjustified_suppressions": sum(
                    1 for s in self.suppressions if not s.justified),
                "by_rule": dict(sorted(by_rule.items())),
            },
            "errors": list(self.errors),
        }


def _parse_suppressions(source: str) -> Dict[int, Tuple[List[str], Optional[str]]]:
    """Map line number → (rule ids, justification) for disable comments."""
    table: Dict[int, Tuple[List[str], Optional[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rule_ids = [part.strip() for part in match.group(1).split(",") if part.strip()]
        table[lineno] = (rule_ids, match.group(2))
    return table


def relative_to_package(path: Path) -> str:
    """POSIX path of ``path`` relative to its enclosing ``repro`` package.

    Config patterns like ``sim/*`` are anchored at the package root so the
    checker behaves identically for ``src/repro``, ``repro/sim/timer.py``
    or an absolute path.  Files outside any ``repro`` directory fall back
    to their own name (fixture files in tests, ad-hoc snippets).
    """
    resolved = path.resolve()
    parts = resolved.parts
    for index in range(len(parts) - 1, 0, -1):
        if parts[index - 1] == "repro":
            return "/".join(parts[index:])
    return resolved.name


def check_source(source: str, rel_path: str, config: Optional[LintConfig] = None,
                 ) -> LintReport:
    """Lint one module's source text as if it lived at ``rel_path``.

    This is the fixture-test entry point: rules see exactly what they would
    for an on-disk file at that package-relative location.
    """
    if config is None:
        config = LintConfig()
    report = LintReport(checked_files=1)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.errors.append(f"{rel_path}:{exc.lineno}: syntax error: {exc.msg}")
        return report

    suppressions = _parse_suppressions(source)
    used_suppressions: set = set()
    ctx = RuleContext(rel_path, source, config)
    for rule in RULES:
        if not config.applies(rule.id, rel_path):
            continue
        for line, column, message in rule.check(tree, ctx):
            entry = suppressions.get(line)
            if entry is not None and rule.id in entry[0]:
                used_suppressions.add((line, rule.id))
                continue
            report.violations.append(
                Violation(rule.id, rel_path, line, column, message))
    for (line, rule_id) in sorted(used_suppressions):
        justification = suppressions[line][1]
        report.suppressions.append(
            Suppression(rule_id, rel_path, line, justification))
        if not justification:
            report.violations.append(Violation(
                META_RULE_ID, rel_path, line, 0,
                f"suppression of {rule_id} without a `-- justification` tail; "
                "explain why the rule does not apply here"))
    return report


def check_file(path: Path, config: Optional[LintConfig] = None) -> LintReport:
    """Lint one on-disk Python file."""
    rel_path = relative_to_package(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        report = LintReport()
        report.errors.append(f"{path}: unreadable: {exc}")
        return report
    return check_source(source, rel_path, config)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand the CLI's path operands into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(p for p in path.rglob("*.py")
                         if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            files.append(path)
    return sorted(set(files))


def check_paths(paths: Iterable[Path], config: Optional[LintConfig] = None,
                ) -> LintReport:
    """Lint every Python file under ``paths`` and merge the reports."""
    report = LintReport()
    for path in iter_python_files(paths):
        report.extend(check_file(path, config))
    return report.sorted()
