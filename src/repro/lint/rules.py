"""The rule registry: one AST visitor per codebase invariant.

Every rule is a :class:`Rule` subclass with a stable id (``RPR001``…), a
one-line title, a rationale (shown by ``explain``) and a ``check`` method
that walks a parsed module and yields findings as ``(line, col, message)``
tuples.  The engine turns findings into :class:`repro.lint.engine.Violation`
records and applies inline suppressions.

The rules encode contracts that previously lived only in test suites and PR
descriptions — see ``docs/DETERMINISM.md`` for the prose version of each.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

Finding = Tuple[int, int, str]

#: ``random`` module functions that consume the process-global PRNG state or
#: construct unseeded generators.  ``sim.random.stream(label)`` is the only
#: sanctioned randomness source in sim code.
_RANDOM_MODULE_FNS = {
    "Random", "SystemRandom", "seed", "random", "randint", "randrange",
    "uniform", "choice", "choices", "shuffle", "sample", "gauss",
    "normalvariate", "expovariate", "betavariate", "paretovariate",
    "vonmisesvariate", "weibullvariate", "triangular", "getrandbits",
    "randbytes",
}

#: Wall-clock / environment reads that make a run depend on when or where it
#: executes rather than on its seed.
_WALL_CLOCK_TIME_FNS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "localtime",
    "gmtime",
}
_WALL_CLOCK_DATETIME_FNS = {"now", "utcnow", "today"}

#: Iteration wrappers that impose a deterministic order on a set.
_ORDERING_WRAPPERS = {"sorted"}
#: Wrappers transparent to ordering — unwrap and look at their argument.
_TRANSPARENT_WRAPPERS = {"list", "tuple", "reversed", "enumerate"}


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _receiver_tail(func: ast.AST) -> Optional[str]:
    """For a call ``x.y.z(...)`` passed as ``func``, the name ``y`` the
    method is invoked on (``z``'s immediate receiver), else None."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _iter_class_methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _self_assigned_attrs(func: ast.FunctionDef) -> Set[str]:
    """Names assigned as ``self.<name> = …`` anywhere inside ``func``."""
    first_arg = func.args.args[0].arg if func.args.args else None
    if first_arg != "self":
        return set()
    attrs: Set[str] = set()
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            stack = [target]
            while stack:
                t = stack.pop()
                if isinstance(t, (ast.Tuple, ast.List)):
                    stack.extend(t.elts)
                elif (isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"):
                    attrs.add(t.attr)
    return attrs


class Rule:
    """Base class for lint rules."""

    id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, tree: ast.Module, ctx: "RuleContext") -> List[Finding]:
        raise NotImplementedError


class RuleContext:
    """Per-file inputs shared by every rule."""

    def __init__(self, rel_path: str, source: str, config) -> None:
        self.rel_path = rel_path
        self.source = source
        self.config = config


class NoRawRandomness(Rule):
    id = "RPR001"
    title = "randomness must come from sim.random.stream(label)"
    rationale = (
        "Byte-identical replay per seed is the project's standing contract "
        "(in-process and across pool workers). random.Random() with no seed, "
        "module-level random.<fn>() calls, os.urandom and uuid all draw from "
        "process state that differs between runs and hosts. Derive every "
        "stream from the simulator's root seed via sim.random.stream(label) "
        "(repro.sim.randomness). Allowlisted: sim/randomness.py itself and "
        "experiment param-sampling that seeds explicitly from the replica "
        "seed (suppress with a justification)."
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        findings: List[Finding] = []
        random_aliases: Set[str] = set()
        uuid_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                    elif alias.name == "uuid":
                        uuid_aliases.add(alias.asname or "uuid")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    findings.append((node.lineno, node.col_offset,
                                     "from-import of the random module; use "
                                     "sim.random.stream(label) instead"))
                elif node.module == "uuid":
                    findings.append((node.lineno, node.col_offset,
                                     "uuid is nondeterministic across runs; derive "
                                     "identifiers from seeded streams or counters"))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            root, _, fn = dotted.partition(".")
            if root in random_aliases and fn in _RANDOM_MODULE_FNS:
                findings.append((node.lineno, node.col_offset,
                                 f"direct call to {dotted}(); all simulation "
                                 "randomness must come from sim.random.stream(label)"))
            elif root in uuid_aliases and fn:
                findings.append((node.lineno, node.col_offset,
                                 f"{dotted}() is nondeterministic across runs"))
            elif dotted == "os.urandom":
                findings.append((node.lineno, node.col_offset,
                                 "os.urandom() bypasses the seeded streams"))
        return findings


class NoWallClock(Rule):
    id = "RPR002"
    title = "no wall-clock or environment reads in deterministic code"
    rationale = (
        "time.time/monotonic/perf_counter, datetime.now and os.environ make "
        "behaviour depend on the host and the moment of execution, which "
        "breaks byte-identical replay and makes remote-worker bugs "
        "unbisectable. Simulated time comes from sim.now; wall-clock "
        "measurement belongs to the obs/, bench/ and campaign/ harness "
        "layers, which are allowlisted."
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    bad = [a.name for a in node.names if a.name in _WALL_CLOCK_TIME_FNS]
                    if bad:
                        findings.append((node.lineno, node.col_offset,
                                         f"from-import of wall-clock function(s) "
                                         f"{', '.join(sorted(bad))} from time"))
                continue
            if isinstance(node, ast.Attribute):
                dotted = _dotted_name(node)
                if dotted == "os.environ":
                    findings.append((node.lineno, node.col_offset,
                                     "os.environ read in deterministic code; pass "
                                     "configuration explicitly"))
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] == "time" and len(parts) == 2 and parts[1] in _WALL_CLOCK_TIME_FNS:
                findings.append((node.lineno, node.col_offset,
                                 f"wall-clock call {dotted}(); use sim.now for "
                                 "simulated time"))
            elif (parts[-1] in _WALL_CLOCK_DATETIME_FNS
                    and parts[0] in ("datetime", "date")):
                findings.append((node.lineno, node.col_offset,
                                 f"wall-clock call {dotted}()"))
            elif dotted == "os.getenv":
                findings.append((node.lineno, node.col_offset,
                                 "os.getenv read in deterministic code; pass "
                                 "configuration explicitly"))
        return findings


class SortedSetIteration(Rule):
    id = "RPR003"
    title = "iteration over sets feeding sinks must be sorted()"
    rationale = (
        "Python set iteration order depends on element hashes — for strings "
        "it varies run to run — so a set-driven loop that schedules events, "
        "emits packets or hashes state silently breaks byte-determinism. "
        "This is the rule that made DSDV/AODV byte-stable: wrap the "
        "iterable in sorted(...). Dict iteration is insertion-ordered and "
        "only flagged when a bare .keys()/.values()/.items() view feeds a "
        "scheduling/emission/hashing sink inside the loop body."
    )

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        self._sinks = ctx.config.sinks(self.id)
        findings: List[Finding] = []
        # self.<attr> names assigned a set in __init__, per class.
        for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
            set_attrs = self._set_typed_self_attrs(cls)
            for method in _iter_class_methods(cls):
                findings.extend(self._check_scope(method, set_attrs))
        # Module-level code outside classes (experiment runners etc.).
        module_only = ast.Module(
            body=[n for n in tree.body if not isinstance(n, ast.ClassDef)],
            type_ignores=[])
        findings.extend(self._check_scope(module_only, set()))
        return findings

    # -- helpers -------------------------------------------------------
    def _set_typed_self_attrs(self, cls: ast.ClassDef) -> Set[str]:
        attrs: Set[str] = set()
        for method in _iter_class_methods(cls):
            if method.name not in ("__init__", "__post_init__"):
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                if not self._is_set_expr(node.value, set()):
                    continue
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        attrs.add(target.attr)
        return attrs

    def _is_set_expr(self, node: ast.expr, set_locals: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")):
            return True
        if isinstance(node, ast.Name) and node.id in set_locals:
            return True
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("union", "intersection", "difference",
                                       "symmetric_difference")
                and self._is_set_expr(node.func.value, set_locals)):
            return True
        if (isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor))
                and (self._is_set_expr(node.left, set_locals)
                     or self._is_set_expr(node.right, set_locals))):
            return True
        return False

    def _is_set_iterable(self, node: ast.expr, set_locals: Set[str],
                         set_attrs: Set[str]) -> bool:
        if self._is_set_expr(node, set_locals):
            return True
        return (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in set_attrs)

    def _is_dict_view(self, node: ast.expr) -> bool:
        return (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("keys", "values", "items")
                and not node.args and not node.keywords)

    def _unwrap(self, node: ast.expr) -> Tuple[ast.expr, bool]:
        """Peel transparent wrappers; True when an ordering wrapper was seen."""
        while (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
               and node.args):
            if node.func.id in _ORDERING_WRAPPERS:
                return node, True
            if node.func.id in _TRANSPARENT_WRAPPERS:
                node = node.args[0]
                continue
            break
        return node, False

    def _body_has_sink(self, body: Iterable[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    if isinstance(node.func, ast.Attribute) and node.func.attr in self._sinks:
                        return True
                    if isinstance(node.func, ast.Name) and node.func.id in self._sinks:
                        return True
        return False

    def _check_scope(self, scope: ast.AST, set_attrs: Set[str]) -> List[Finding]:
        findings: List[Finding] = []
        set_locals: Set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.expr):
                if self._is_set_expr(node.value, set_locals):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            set_locals.add(target.id)
        for node in ast.walk(scope):
            iters: List[Tuple[ast.expr, Optional[List[ast.stmt]], int, int]] = []
            if isinstance(node, ast.For):
                iters.append((node.iter, node.body, node.lineno, node.col_offset))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    iters.append((gen.iter, None, node.lineno, node.col_offset))
            for iterable, body, lineno, col in iters:
                unwrapped, ordered = self._unwrap(iterable)
                if ordered:
                    continue
                if self._is_set_iterable(unwrapped, set_locals, set_attrs):
                    findings.append((lineno, col,
                                     "iteration over a set; wrap the iterable in "
                                     "sorted(...) so the order is deterministic"))
                elif (self._is_dict_view(unwrapped) and body is not None
                        and self._body_has_sink(body)):
                    findings.append((lineno, col,
                                     "bare dict-view iteration feeding a "
                                     "scheduling/emission/hashing sink; iterate "
                                     "sorted(...) (insertion order is fragile "
                                     "under refactors)"))
        return findings


class HotPathSlots(Rule):
    id = "RPR004"
    title = "hot-path classes must declare complete __slots__"
    rationale = (
        "sim/, phy/, mac/ and channel/ allocate objects per event — per-"
        "instance __dict__ overhead dominated allocation cost before the "
        "PR 6 slots layout, and a self.<attr> missing from __slots__ is a "
        "latent AttributeError. Plain classes declare __slots__ covering "
        "every attribute they assign to self; dataclasses pass "
        "slots=True. Enums, Protocols and exception types are exempt "
        "(their metaclasses manage layout)."
    )

    _EXEMPT_BASES = {"Protocol", "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
                     "Exception", "BaseException", "TypedDict", "NamedTuple",
                     "ABC"}

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        findings: List[Finding] = []
        module_classes = {n.name: n for n in ast.walk(tree)
                          if isinstance(n, ast.ClassDef)}
        for cls in module_classes.values():
            findings.extend(self._check_class(cls, module_classes))
        return findings

    def _base_names(self, cls: ast.ClassDef) -> List[str]:
        names = []
        for base in cls.bases:
            dotted = _dotted_name(base)
            if dotted is not None:
                names.append(dotted.split(".")[-1])
        return names

    def _dataclass_decorator(self, cls: ast.ClassDef) -> Optional[ast.AST]:
        for decorator in cls.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            dotted = _dotted_name(target)
            if dotted is not None and dotted.split(".")[-1] == "dataclass":
                return decorator
        return None

    def _own_slots(self, cls: ast.ClassDef) -> Optional[Set[str]]:
        """Names in the class's ``__slots__``, or None when undeclared."""
        for node in cls.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    value = node.value
                    names: Set[str] = set()
                    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                        for element in value.elts:
                            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                                names.add(element.value)
                    elif isinstance(value, ast.Constant) and isinstance(value.value, str):
                        names.add(value.value)
                    return names
        return None

    def _check_class(self, cls: ast.ClassDef,
                     module_classes: Dict[str, ast.ClassDef]) -> List[Finding]:
        base_names = self._base_names(cls)
        if any(b in self._EXEMPT_BASES or b.endswith(("Error", "Exception", "Warning"))
               for b in base_names):
            return []
        decorator = self._dataclass_decorator(cls)
        if decorator is not None:
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if (keyword.arg == "slots" and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True):
                        return []
            return [(cls.lineno, cls.col_offset,
                     f"dataclass {cls.name} in a hot-path module must pass "
                     "slots=True")]

        own_slots = self._own_slots(cls)
        if own_slots is None:
            return [(cls.lineno, cls.col_offset,
                     f"class {cls.name} in a hot-path module must declare "
                     "__slots__")]

        # Coverage: every self.<attr> assigned anywhere in the class must be
        # slotted here or in a base resolvable within this module.
        known = set(own_slots)
        resolvable = True
        for base in base_names:
            if base == "object":
                continue
            base_cls = module_classes.get(base)
            if base_cls is None:
                resolvable = False
                break
            base_slots = self._own_slots(base_cls)
            if base_slots is None:
                resolvable = False
                break
            known |= base_slots
        if not resolvable:
            return []
        assigned: Set[str] = set()
        for method in _iter_class_methods(cls):
            assigned |= _self_assigned_attrs(method)
        missing = sorted(assigned - known)
        if missing:
            return [(cls.lineno, cls.col_offset,
                     f"class {cls.name}: attribute(s) {', '.join(missing)} are "
                     "assigned to self but missing from __slots__")]
        return []


class GuardedInstrumentation(Rule):
    id = "RPR005"
    title = "hot-path tracer/metrics calls must sit behind an enabled guard"
    rationale = (
        "Tracing and metrics are off by default precisely so the hot path "
        "pays one attribute load and a branch when disabled (the PR 6/7 "
        "pattern). An unguarded tracer.emit(...)/metrics.inc(...)/"
        "journey.record(...) still builds its argument tuple and formats its "
        "fields on every event — measurable at millions of events per run. "
        "Hoist `tracer = self.sim.tracer` and test `if tracer.enabled:` (or "
        "`metrics.enabled`, `journey.enabled`) around the call. The emitter "
        "set is the RPR005 `guarded_calls` list in lint.toml "
        "(`receiver.method` specs)."
    )

    def _guard_specs(self, ctx: RuleContext) -> Dict[str, Set[str]]:
        """``receiver -> {methods}`` parsed from the rule's guarded_calls."""
        specs: Dict[str, Set[str]] = {}
        for spec in ctx.config.guarded_calls(self.id):
            receiver, dot, method = spec.rpartition(".")
            if not dot or not receiver or not method:
                continue
            specs.setdefault(receiver.lstrip("_"), set()).add(method)
        return specs

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        specs = self._guard_specs(ctx)
        findings: List[Finding] = []
        for func in [n for n in ast.walk(tree)
                     if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]:
            findings.extend(self._check_function(func, specs))
        return findings

    def _is_instrument_call(self, node: ast.Call,
                            specs: Dict[str, Set[str]]) -> Optional[str]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        receiver = _receiver_tail(func)
        if receiver is None:
            return None
        receiver = receiver.lstrip("_")
        if func.attr in specs.get(receiver, ()):
            return receiver
        return None

    def _test_mentions_enabled(self, test: ast.expr) -> bool:
        for node in ast.walk(test):
            if isinstance(node, ast.Attribute) and node.attr == "enabled":
                return True
            if isinstance(node, ast.Name) and node.id == "enabled":
                return True
        return False

    def _has_early_return_guard(self, func: ast.FunctionDef) -> bool:
        """True for the ``if not self.enabled: return`` prologue pattern."""
        for stmt in func.body:
            if not isinstance(stmt, ast.If):
                continue
            if (self._test_mentions_enabled(stmt.test)
                    and any(isinstance(s, (ast.Return, ast.Raise)) for s in stmt.body)):
                return True
        return False

    def _check_function(self, func: ast.FunctionDef,
                        specs: Dict[str, Set[str]]) -> List[Finding]:
        if self._has_early_return_guard(func):
            return []
        findings: List[Finding] = []
        guarded: Set[int] = set()
        # Mark every node under an enabled-testing If/IfExp/BoolOp as guarded.
        for node in ast.walk(func):
            test: Optional[ast.expr] = None
            covered: List[ast.AST] = []
            if isinstance(node, ast.If):
                test, covered = node.test, list(node.body)
            elif isinstance(node, ast.IfExp):
                test, covered = node.test, [node.body]
            elif isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
                test, covered = node.values[0], list(node.values[1:])
            if test is None or not self._test_mentions_enabled(test):
                continue
            for stmt in covered:
                for child in ast.walk(stmt):
                    guarded.add(id(child))
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and id(node) not in guarded:
                kind = self._is_instrument_call(node, specs)
                if kind is not None:
                    findings.append((node.lineno, node.col_offset,
                                     f"unguarded {kind} instrumentation call on the "
                                     f"hot path; test `.enabled` first"))
        return findings


class NoMutableDefaults(Rule):
    id = "RPR006"
    title = "no mutable default arguments"
    rationale = (
        "A mutable default ([], {}, set()) is evaluated once at definition "
        "time and shared by every call — scheduler callbacks that capture "
        "one leak state across simulator instances and across campaign "
        "jobs, which corrupts replay determinism in ways that only "
        "reproduce after specific call sequences. Default to None and "
        "construct inside the function."
    )

    _MUTABLE_CALLS = {"list", "dict", "set", "deque", "defaultdict",
                      "OrderedDict", "Counter", "bytearray"}

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted is not None and dotted.split(".")[-1] in self._MUTABLE_CALLS:
                # frozenset() and tuple() would be fine, but they are not in
                # the mutable call set; set()/list()/dict() etc. are shared.
                return True
        return False

    def check(self, tree: ast.Module, ctx: RuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None]
                for default in defaults:
                    if self._is_mutable(default):
                        name = getattr(node, "name", "<lambda>")
                        findings.append((default.lineno, default.col_offset,
                                         f"mutable default argument in {name}(); "
                                         "use None and construct per call"))
        return findings


#: Registry in rule-id order; the engine and CLI iterate this.
RULES: Tuple[Rule, ...] = (
    NoRawRandomness(),
    NoWallClock(),
    SortedSetIteration(),
    HotPathSlots(),
    GuardedInstrumentation(),
    NoMutableDefaults(),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in RULES}
