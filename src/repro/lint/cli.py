"""``python -m repro.lint`` — check | list-rules | explain.

Exit codes: 0 clean, 1 violations (including unjustified suppressions via
the RPR000 meta-rule), 2 usage or configuration errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.lint.config import load_config
from repro.lint.engine import LintReport, check_paths
from repro.lint.rules import RULES, RULES_BY_ID

EXIT_OK = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & hot-path contract checker for the repro codebase.")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="lint files/directories")
    check.add_argument("paths", nargs="+", type=Path,
                       help="files or directories to lint (e.g. src/repro)")
    check.add_argument("--format", choices=("text", "json"), default="text",
                       help="report format (default: text)")
    check.add_argument("--config", type=Path, default=None,
                       help="explicit lint.toml (default: search upward from "
                            "the first path)")
    check.add_argument("--output", type=Path, default=None,
                       help="also write the report (in the chosen format) to "
                            "this file — used by CI to upload an artifact")

    sub.add_parser("list-rules", help="list rule ids and titles")

    explain = sub.add_parser("explain", help="show a rule's rationale")
    explain.add_argument("rule", help="rule id, e.g. RPR003")
    return parser


def _render_text(report: LintReport) -> str:
    lines: List[str] = []
    for violation in report.violations:
        lines.append(f"{violation.path}:{violation.line}:{violation.column + 1}: "
                     f"{violation.rule_id} {violation.message}")
    for error in report.errors:
        lines.append(f"error: {error}")
    justified = sum(1 for s in report.suppressions if s.justified)
    unjustified = len(report.suppressions) - justified
    lines.append(
        f"checked {report.checked_files} file(s): "
        f"{len(report.violations)} violation(s), "
        f"{len(report.suppressions)} suppression(s) "
        f"({justified} justified, {unjustified} unjustified)")
    return "\n".join(lines)


def _cmd_check(args: argparse.Namespace) -> int:
    try:
        config = load_config(args.config, search_from=args.paths[0])
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    missing = [str(p) for p in args.paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return EXIT_USAGE
    report = check_paths(args.paths, config)
    rendered = (json.dumps(report.as_dict(), indent=2)
                if args.format == "json" else _render_text(report))
    print(rendered)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(rendered + "\n", encoding="utf-8")
    return EXIT_OK if report.ok else EXIT_VIOLATIONS


def _cmd_list_rules() -> int:
    for rule in RULES:
        print(f"{rule.id}  {rule.title}")
    return EXIT_OK


def _cmd_explain(rule_id: str) -> int:
    rule = RULES_BY_ID.get(rule_id.upper())
    if rule is None:
        known = ", ".join(sorted(RULES_BY_ID))
        print(f"error: unknown rule {rule_id!r} (known: {known})", file=sys.stderr)
        return EXIT_USAGE
    print(f"{rule.id}: {rule.title}\n")
    print(rule.rationale)
    print("\nSuppress inline (justification required):")
    print(f"    offending_line  # lint: disable={rule.id} -- <why the rule "
          "does not apply here>")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "list-rules":
        return _cmd_list_rules()
    return _cmd_explain(args.rule)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
