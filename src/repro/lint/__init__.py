"""Determinism & hot-path contract checker for the repro codebase.

The reproduction rests on two contracts that the test suites only enforce at
runtime: every run is byte-identical per seed (in-process and across pool
workers), and the simulation hot path stays cheap (``__slots__`` layouts,
``enabled``-guarded instrumentation, memo caches).  ``repro.lint`` enforces
those contracts *statically*, file by file, before a single simulation runs:

* :mod:`repro.lint.rules` — the rule registry (RPR001–RPR006), one AST
  visitor per codebase invariant;
* :mod:`repro.lint.config` — the ``lint.toml``-style rule → module mapping;
* :mod:`repro.lint.engine` — file walking, suppression parsing and report
  assembly;
* :mod:`repro.lint.cli` — ``python -m repro.lint check|list-rules|explain``.

Suppress a finding inline with a justification::

    rng = random.Random(seed)  # lint: disable=RPR001 -- derived from the replica seed

A suppression without the ``-- justification`` tail is itself reported
(rule ``RPR000``), so the audit trail stays honest.
"""

from repro.lint.config import DEFAULT_CONFIG, LintConfig, load_config
from repro.lint.engine import LintReport, Suppression, Violation, check_paths, check_source
from repro.lint.rules import RULES, Rule

__all__ = [
    "DEFAULT_CONFIG",
    "LintConfig",
    "LintReport",
    "RULES",
    "Rule",
    "Suppression",
    "Violation",
    "check_paths",
    "check_source",
    "load_config",
]
