"""Unit helpers.

The simulator keeps all times in **seconds** (floats), all sizes in **bytes**
(ints) and all rates in **bits per second** (floats).  These helpers exist so
that configuration code reads naturally (``milliseconds(3)``,
``mbps(1.3)``) and so conversions are done in exactly one place.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

#: Number of microseconds in a second.
MICROSECONDS_PER_SECOND = 1_000_000.0


def seconds(value: float) -> float:
    """Return ``value`` expressed in seconds (identity, for readability)."""
    return float(value)


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) * 1e-3


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) * 1e-6


def to_microseconds(time_s: float) -> float:
    """Convert a time in seconds to microseconds."""
    return time_s * MICROSECONDS_PER_SECOND


# ---------------------------------------------------------------------------
# Data sizes
# ---------------------------------------------------------------------------


def bits(n_bytes: int) -> int:
    """Number of bits in ``n_bytes`` bytes."""
    return int(n_bytes) * 8


def bytes_from_bits(n_bits: float) -> float:
    """Number of bytes represented by ``n_bits`` bits (may be fractional)."""
    return n_bits / 8.0


def kilobytes(value: float) -> int:
    """Convert kilobytes (1 KB = 1024 B) to bytes."""
    return int(round(value * 1024))


def megabytes(value: float) -> int:
    """Convert megabytes (1 MB = 1024 KB) to bytes."""
    return int(round(value * 1024 * 1024))


# ---------------------------------------------------------------------------
# Rates
# ---------------------------------------------------------------------------


def bps(value: float) -> float:
    """Bits per second (identity, for readability)."""
    return float(value)


def kbps(value: float) -> float:
    """Kilobits per second to bits per second."""
    return float(value) * 1e3


def mbps(value: float) -> float:
    """Megabits per second to bits per second."""
    return float(value) * 1e6


def to_mbps(rate_bps: float) -> float:
    """Bits per second to megabits per second."""
    return rate_bps / 1e6


def transmission_time(size_bytes: int, rate_bps: float) -> float:
    """Time in seconds to serialise ``size_bytes`` bytes at ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return (size_bytes * 8.0) / rate_bps


def throughput_mbps(size_bytes: int, elapsed_s: float) -> float:
    """Application throughput in Mbps for ``size_bytes`` delivered in ``elapsed_s``."""
    if elapsed_s <= 0:
        return 0.0
    return (size_bytes * 8.0) / elapsed_s / 1e6
