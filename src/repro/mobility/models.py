"""Node mobility models.

The paper's testbed is stationary: every experiment in Section 5 runs with
fixed indoor node positions at a ~25 dB operating SNR, so link quality never
changes during a run.  This module deliberately departs from that setup — it
supplies deterministic, seedable mobility processes so the aggregation-policy
trade-offs can be studied while neighbor sets and link budgets change under
them.

Design:

* A model produces a **piecewise-linear trajectory** (or a closed form, for
  :class:`CircularOrbit`).  ``position_at(t)`` interpolates analytically
  between waypoints, so positional precision never depends on how often the
  scheduler ticks the model.
* Scheduler **update events** at a configurable ``update_interval`` refresh
  the attached PHY's ``position`` snapshot attribute (for code that reads the
  plain attribute) and keep trajectory generation marching forward in time;
  they carry no randomness of their own.
* Every random draw comes from a dedicated per-model stream derived from the
  simulator's root seed (``mobility.<phy name>``), so attaching a model never
  perturbs any other component's random sequence and same-seed runs are
  byte-identical.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

Position = Tuple[float, float]
Velocity = Tuple[float, float]

#: Bounding box as (x_min, y_min, x_max, y_max) in metres.
Area = Tuple[float, float, float, float]

#: Default interval between scheduler update events (seconds).
DEFAULT_UPDATE_INTERVAL_S = 0.1

_EPSILON = 1e-12


def _check_area(area: Area) -> Area:
    x_min, y_min, x_max, y_max = (float(v) for v in area)
    if x_max <= x_min or y_max <= y_min:
        raise ConfigurationError(f"degenerate mobility area {area}")
    return (x_min, y_min, x_max, y_max)


def _check_speed_range(speed_range: Tuple[float, float]) -> Tuple[float, float]:
    low, high = (float(v) for v in speed_range)
    if low < 0 or high < low:
        raise ConfigurationError(f"invalid speed range {speed_range}")
    return (low, high)


@dataclass(frozen=True)
class TrajectoryLeg:
    """One straight-line segment of a trajectory (zero velocity = a pause)."""

    start_time: float
    duration: float
    start: Position
    velocity: Velocity

    @property
    def end_time(self) -> float:
        """Simulated time at which the leg ends."""
        return self.start_time + self.duration

    @property
    def end(self) -> Position:
        """Position at the end of the leg."""
        return (self.start[0] + self.velocity[0] * self.duration,
                self.start[1] + self.velocity[1] * self.duration)

    @property
    def speed(self) -> float:
        """Scalar speed along the leg in m/s."""
        return math.hypot(*self.velocity)

    def position_at(self, time: float) -> Position:
        """Analytic position along the leg (clamped to the leg's time span)."""
        dt = min(max(time - self.start_time, 0.0), self.duration)
        return (self.start[0] + self.velocity[0] * dt,
                self.start[1] + self.velocity[1] * dt)


class MobilityModel:
    """Base class: binding, update-event scheduling and the query interface.

    A model is *bound* to an RNG stream and an origin (either directly via
    :meth:`bind` for standalone/unit-test use, or via :meth:`attach`, which
    derives both from a PHY), after which :meth:`position_at` answers for any
    ``time >= start_time``.  :meth:`start` additionally schedules periodic
    scheduler events that copy the current analytic position into the attached
    PHY's ``position`` attribute.
    """

    def __init__(self, update_interval: float = DEFAULT_UPDATE_INTERVAL_S) -> None:
        if update_interval <= 0:
            raise ConfigurationError("update_interval must be positive")
        self.update_interval = update_interval
        self._rng: Optional[random.Random] = None
        self._origin: Position = (0.0, 0.0)
        self._start_time = 0.0
        self._phy = None
        self._sim = None
        self._update_handle = None
        self._stop_time: Optional[float] = None
        self.updates = 0

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    @property
    def bound(self) -> bool:
        """True once the model has an RNG and an origin."""
        return self._rng is not None

    def bind(self, rng: random.Random, initial_position: Position,
             start_time: float = 0.0) -> "MobilityModel":
        """Bind the model to a random stream and an origin (idempotent-free).

        Re-binding a model that already generated trajectory state is a
        configuration error: the trajectory is a function of the stream, so a
        second binding would silently splice two incompatible histories.
        """
        if self.bound:
            raise ConfigurationError("mobility model is already bound")
        self._rng = rng
        self._origin = (float(initial_position[0]), float(initial_position[1]))
        self._start_time = start_time
        self._on_bound()
        return self

    def attach(self, phy) -> "MobilityModel":
        """Bind to ``phy`` (its sim, name and current position)."""
        sim = phy.sim
        self.bind(sim.random.stream(f"mobility.{phy.name}"), tuple(phy.position),
                  start_time=sim.now)
        self._phy = phy
        self._sim = sim
        return self

    def _on_bound(self) -> None:
        """Subclass hook invoked once the RNG and origin are available."""

    def _require_bound(self) -> None:
        if not self.bound:
            raise ConfigurationError(
                f"{type(self).__name__} must be bound (attach() or bind()) "
                "before positions can be queried")

    # ------------------------------------------------------------------
    # Update events
    # ------------------------------------------------------------------
    @property
    def is_static(self) -> bool:
        """True when the trajectory never moves (no update events needed)."""
        return False

    def start(self, stop_time: Optional[float] = None) -> None:
        """Schedule periodic position updates (no-op for static models)."""
        if self._sim is None:
            raise ConfigurationError("attach() the model to a PHY before start()")
        if self.is_static or self._update_handle is not None:
            return
        self._stop_time = stop_time
        self._update_handle = self._sim.schedule(self.update_interval, self._on_update)

    def stop(self) -> None:
        """Cancel pending update events."""
        if self._sim is not None and self._update_handle is not None:
            self._sim.cancel(self._update_handle)
        self._update_handle = None

    def _on_update(self) -> None:
        self._update_handle = None
        self.updates += 1
        self._phy.position = self.position_at(self._sim.now)
        next_time = self._sim.now + self.update_interval
        if self._stop_time is None or next_time <= self._stop_time:
            self._update_handle = self._sim.schedule(self.update_interval, self._on_update)

    # ------------------------------------------------------------------
    # Query interface
    # ------------------------------------------------------------------
    def position_at(self, time: float) -> Position:
        """Exact position at simulated ``time`` (>= the binding time)."""
        raise NotImplementedError


class Stationary(MobilityModel):
    """A node that never moves.

    Attaching a ``Stationary`` model is observationally identical to
    attaching no model at all: it draws nothing from its RNG stream and
    schedules no events, so existing stationary experiments reproduce their
    outputs bit-for-bit with or without it.
    """

    def __init__(self, position: Optional[Position] = None) -> None:
        super().__init__()
        self._explicit_position = position

    @property
    def is_static(self) -> bool:
        return True

    def _on_bound(self) -> None:
        if self._explicit_position is not None:
            self._origin = (float(self._explicit_position[0]),
                            float(self._explicit_position[1]))

    def position_at(self, time: float) -> Position:
        self._require_bound()
        return self._origin


class _PiecewiseLinearMobility(MobilityModel):
    """Shared leg bookkeeping for waypoint-style models.

    Legs are generated strictly forward in time from the model's own stream,
    so the sequence of draws depends only on (seed, parameters) — never on
    when or how often ``position_at`` is called.
    """

    def __init__(self, update_interval: float = DEFAULT_UPDATE_INTERVAL_S) -> None:
        super().__init__(update_interval)
        self._legs: List[TrajectoryLeg] = []
        self._leg_starts: List[float] = []

    def _append_leg(self, leg: TrajectoryLeg) -> None:
        if leg.duration <= 0:
            raise ConfigurationError("trajectory legs must have positive duration")
        self._legs.append(leg)
        self._leg_starts.append(leg.start_time)

    def _frontier(self) -> Tuple[float, Position]:
        """Time and position from which the next leg departs."""
        if not self._legs:
            return self._start_time, self._origin
        last = self._legs[-1]
        return last.end_time, last.end

    def _extend_to(self, time: float) -> None:
        while self._frontier()[0] < time:
            start_time, start = self._frontier()
            for leg in self._next_legs(start_time, start):
                self._append_leg(leg)

    def _next_legs(self, start_time: float, start: Position) -> Sequence[TrajectoryLeg]:
        """Produce the next leg(s) of the trajectory; must advance time."""
        raise NotImplementedError

    def position_at(self, time: float) -> Position:
        self._require_bound()
        if time <= self._start_time:
            return self._origin
        self._extend_to(time)
        index = bisect.bisect_right(self._leg_starts, time) - 1
        return self._legs[index].position_at(time)

    @property
    def legs(self) -> Tuple[TrajectoryLeg, ...]:
        """The trajectory generated so far (diagnostics and unit tests)."""
        return tuple(self._legs)


class RandomWaypoint(_PiecewiseLinearMobility):
    """Classic random-waypoint mobility.

    Repeatedly: draw a destination uniformly inside ``area``, draw a speed
    uniformly from ``speed_range``, travel there in a straight line, pause
    for ``pause_time`` seconds.
    """

    def __init__(self, area: Area, speed_range: Tuple[float, float] = (0.5, 2.0),
                 pause_time: float = 0.0,
                 update_interval: float = DEFAULT_UPDATE_INTERVAL_S) -> None:
        super().__init__(update_interval)
        self.area = _check_area(area)
        self.speed_range = _check_speed_range(speed_range)
        if self.speed_range[1] <= 0:
            raise ConfigurationError("random waypoint needs a positive top speed")
        if pause_time < 0:
            raise ConfigurationError("pause_time must be non-negative")
        self.pause_time = pause_time

    def _next_legs(self, start_time: float, start: Position) -> Sequence[TrajectoryLeg]:
        x_min, y_min, x_max, y_max = self.area
        destination = (self._rng.uniform(x_min, x_max), self._rng.uniform(y_min, y_max))
        speed = self._rng.uniform(*self.speed_range)
        distance = math.hypot(destination[0] - start[0], destination[1] - start[1])
        legs: List[TrajectoryLeg] = []
        cursor = start_time
        if distance > _EPSILON and speed > _EPSILON:
            travel_time = distance / speed
            velocity = ((destination[0] - start[0]) / travel_time,
                        (destination[1] - start[1]) / travel_time)
            legs.append(TrajectoryLeg(cursor, travel_time, start, velocity))
            cursor += travel_time
            start = destination
        if self.pause_time > 0:
            legs.append(TrajectoryLeg(cursor, self.pause_time, start, (0.0, 0.0)))
        if not legs:
            # Zero-length hop with no pause: burn no time but keep the
            # trajectory advancing (treat it as a minimal pause).
            legs.append(TrajectoryLeg(cursor, self.update_interval, start, (0.0, 0.0)))
        return legs


class RandomWalk(_PiecewiseLinearMobility):
    """Bounded random walk with boundary reflection.

    Every ``leg_duration`` seconds the node draws a fresh heading uniformly
    in [0, 2π) and a speed from ``speed_range``; straight paths that would
    leave ``area`` are reflected off the walls (the leg is split at each
    crossing, consuming no extra randomness).
    """

    def __init__(self, area: Area, speed_range: Tuple[float, float] = (0.5, 2.0),
                 leg_duration: float = 2.0,
                 update_interval: float = DEFAULT_UPDATE_INTERVAL_S) -> None:
        super().__init__(update_interval)
        self.area = _check_area(area)
        self.speed_range = _check_speed_range(speed_range)
        if leg_duration <= 0:
            raise ConfigurationError("leg_duration must be positive")
        self.leg_duration = leg_duration

    def _next_legs(self, start_time: float, start: Position) -> Sequence[TrajectoryLeg]:
        heading = self._rng.uniform(0.0, 2.0 * math.pi)
        speed = self._rng.uniform(*self.speed_range)
        velocity = (speed * math.cos(heading), speed * math.sin(heading))
        return self._reflected_legs(start_time, start, velocity, self.leg_duration)

    def _reflected_legs(self, start_time: float, start: Position, velocity: Velocity,
                        remaining: float) -> List[TrajectoryLeg]:
        x_min, y_min, x_max, y_max = self.area
        legs: List[TrajectoryLeg] = []
        cursor = start_time
        position = (min(max(start[0], x_min), x_max), min(max(start[1], y_min), y_max))
        if math.hypot(*velocity) <= _EPSILON:
            return [TrajectoryLeg(cursor, remaining, position, (0.0, 0.0))]
        for _ in range(64):  # bound: a leg cannot reflect more often than this
            hit = self._time_to_wall(position, velocity)
            if hit is None or hit >= remaining:
                legs.append(TrajectoryLeg(cursor, remaining, position, velocity))
                return legs
            if hit > _EPSILON:
                legs.append(TrajectoryLeg(cursor, hit, position, velocity))
                cursor += hit
                remaining -= hit
                position = legs[-1].end
            position = (min(max(position[0], x_min), x_max),
                        min(max(position[1], y_min), y_max))
            velocity = self._reflect(position, velocity)
        legs.append(TrajectoryLeg(cursor, remaining, position, (0.0, 0.0)))
        return legs

    def _time_to_wall(self, position: Position, velocity: Velocity) -> Optional[float]:
        x_min, y_min, x_max, y_max = self.area
        times = []
        for coord, v, low, high in ((position[0], velocity[0], x_min, x_max),
                                    (position[1], velocity[1], y_min, y_max)):
            if v > _EPSILON:
                times.append((high - coord) / v)
            elif v < -_EPSILON:
                times.append((low - coord) / v)
        times = [t for t in times if t > _EPSILON]
        return min(times) if times else None

    def _reflect(self, position: Position, velocity: Velocity) -> Velocity:
        x_min, y_min, x_max, y_max = self.area
        vx, vy = velocity
        if (position[0] >= x_max - _EPSILON and vx > 0) or \
                (position[0] <= x_min + _EPSILON and vx < 0):
            vx = -vx
        if (position[1] >= y_max - _EPSILON and vy > 0) or \
                (position[1] <= y_min + _EPSILON and vy < 0):
            vy = -vy
        return (vx, vy)


class CircularOrbit(MobilityModel):
    """Deterministic circular motion (closed form, no randomness).

    The node orbits ``center`` at ``radius`` metres, completing one
    revolution every ``period`` seconds (negative = clockwise).  When no
    center is given, the binding position is taken as the point on the circle
    at ``phase_rad``, which makes attaching natural: the node starts exactly
    where the topology placed it and orbits from there.
    """

    def __init__(self, radius: float, period: float,
                 center: Optional[Position] = None, phase_rad: float = -math.pi / 2.0,
                 update_interval: float = DEFAULT_UPDATE_INTERVAL_S) -> None:
        super().__init__(update_interval)
        if radius <= 0:
            raise ConfigurationError("orbit radius must be positive")
        if period == 0:
            raise ConfigurationError("orbit period must be non-zero")
        self.radius = radius
        self.period = period
        self.phase_rad = phase_rad
        self._center = center

    def _on_bound(self) -> None:
        if self._center is None:
            self._center = (
                self._origin[0] - self.radius * math.cos(self.phase_rad),
                self._origin[1] - self.radius * math.sin(self.phase_rad),
            )

    @property
    def center(self) -> Position:
        """Orbit center (available once bound or when given explicitly)."""
        if self._center is None:
            raise ConfigurationError("orbit center is derived at bind() time")
        return self._center

    def position_at(self, time: float) -> Position:
        self._require_bound()
        elapsed = max(time - self._start_time, 0.0)
        angle = self.phase_rad + 2.0 * math.pi * elapsed / self.period
        return (self._center[0] + self.radius * math.cos(angle),
                self._center[1] + self.radius * math.sin(angle))
