"""Node mobility: deterministic, seedable position processes.

The paper's evaluation is entirely stationary (Section 5: fixed indoor nodes
at ~25 dB SNR).  This package extends the reproduction beyond that setup:
mobility models advance node positions via scheduler events, the
PHY/channel layer evaluates propagation against exact analytic positions at
transmission start (see ``Phy.position_at`` and
:class:`~repro.channel.medium.WirelessChannel`), and the
:class:`~repro.channel.propagation.LogNormalShadowing` model makes motion
change loss rather than just distance.

See :mod:`repro.topology.mobile` for the scenario builder and the
``mob01``/``mob02`` modules in :mod:`repro.experiments` for ready-made
mobile-scenario experiments.
"""

from repro.mobility.models import (
    DEFAULT_UPDATE_INTERVAL_S,
    CircularOrbit,
    MobilityModel,
    RandomWalk,
    RandomWaypoint,
    Stationary,
    TrajectoryLeg,
)

__all__ = [
    "DEFAULT_UPDATE_INTERVAL_S",
    "CircularOrbit",
    "MobilityModel",
    "RandomWalk",
    "RandomWaypoint",
    "Stationary",
    "TrajectoryLeg",
]
