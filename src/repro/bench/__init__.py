"""Machine-readable performance trajectory for the canonical benchmarks.

ROADMAP item 2 ("raw-speed overhaul with a tracked perf trajectory") needs
every optimisation claim to be verifiable: each canonical benchmark scenario
emits a ``BENCH_<scenario>.json`` file holding a committed **baseline** record
plus an appended **history** of measurements (wall-clock seconds, executed
events, events/second and simulated-seconds per wall-second).  The same files
are written by two front ends:

* ``python -m repro.bench`` — runs the canonical scenarios directly (no
  pytest), prints a trajectory report, appends history records and gates on
  regressions vs the committed baseline (``--check``); and
* the pytest benchmark suite — ``benchmarks/bench_common.run_once`` records
  the same measurement for every canonical bench it runs.

Measurement itself is :func:`measure`, built on the process-wide
:data:`repro.sim.telemetry.TELEMETRY` accumulator, so events are counted
inside whatever simulators a scenario constructs.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Tuple

from repro.sim.telemetry import TELEMETRY

from repro.bench.history import (  # noqa: F401  (re-exported API)
    bench_path,
    check_against_baseline,
    load_history,
    record_measurement,
)
from repro.bench.scenarios import CANONICAL_SCENARIOS  # noqa: F401


def measure(function: Callable[..., Any], *args: Any, **kwargs: Any
            ) -> Tuple[Any, Dict[str, Any]]:
    """Run ``function`` once, measuring wall time and simulator throughput.

    Returns ``(result, record)`` where ``record`` holds the fields stored in
    a ``BENCH_*.json`` history entry (minus the timestamp/source metadata
    added at write time).
    """
    events_before, sim_before, _ = TELEMETRY.snapshot()
    wall_start = time.perf_counter()
    result = function(*args, **kwargs)
    wall_seconds = time.perf_counter() - wall_start
    events_after, sim_after, _ = TELEMETRY.snapshot()

    events = events_after - events_before
    sim_seconds = sim_after - sim_before
    record = {
        "wall_seconds": round(wall_seconds, 6),
        "events": events,
        "events_per_second": round(events / wall_seconds, 1) if wall_seconds > 0 else 0.0,
        "simulated_seconds": round(sim_seconds, 6),
        "sim_seconds_per_wall_second": (
            round(sim_seconds / wall_seconds, 3) if wall_seconds > 0 else 0.0),
    }
    return result, record
