"""The canonical benchmark scenarios and their reduced parameter sets.

One entry per tracked scenario, mirroring the reduced parameters the pytest
benchmarks in ``benchmarks/`` use (the trajectory is only meaningful if every
measurement runs the same workload).  ``quick`` parameters shrink the sweep
further for CI smoke runs; events/second is throughput-normalised, so quick
and standard records remain comparable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, NamedTuple

#: Reduced duration shared with ``benchmarks/bench_common.BENCH_UDP_DURATION``.
UDP_DURATION = 8.0


class BenchScenario(NamedTuple):
    """One canonical scenario: how to import it, and its parameter tiers."""

    name: str
    loader: Callable[[], Callable[..., Any]]
    params: Dict[str, Any]
    quick_params: Dict[str, Any]

    def run(self, quick: bool = False) -> Any:
        """Execute the scenario at the requested tier; returns its result."""
        return self.loader()(**(self.quick_params if quick else self.params))


def _fig09():
    from repro.experiments import fig09_udp_flooding
    return fig09_udp_flooding.run


def _rt02():
    from repro.experiments import rt02_overhead_scaling
    return rt02_overhead_scaling.run


def _table02():
    from repro.experiments import table02_udp_unicast
    return table02_udp_unicast.run


def _city01():
    from repro.experiments import city01_scale
    return city01_scale.run


CANONICAL_SCENARIOS: Dict[str, BenchScenario] = {
    scenario.name: scenario
    for scenario in (
        BenchScenario(
            name="fig09_udp_flooding",
            loader=_fig09,
            params={"rates_mbps": (1.3,), "flooding_intervals": (0.25, 1.0, 5.0),
                    "duration": UDP_DURATION},
            quick_params={"rates_mbps": (1.3,), "flooding_intervals": (0.25, 1.0),
                          "duration": 3.0},
        ),
        BenchScenario(
            name="rt02_overhead_scaling",
            loader=_rt02,
            params={"flow_counts": (1, 6), "speeds_mps": (2.0,), "duration": 8.0,
                    "warmup": 3.0, "include_no_aggregation": False},
            quick_params={"flow_counts": (1, 3), "speeds_mps": (2.0,), "duration": 5.0,
                          "warmup": 2.0, "include_no_aggregation": False},
        ),
        BenchScenario(
            name="table02_udp_unicast",
            loader=_table02,
            params={"rates_mbps": (0.65, 1.3), "duration": UDP_DURATION},
            quick_params={"rates_mbps": (1.3,), "duration": 3.0},
        ),
        # The city run is the spatial index's reason to exist: thousands of
        # PHYs on one channel, where a full scan would be O(N) per frame.
        # Both tiers keep the 2,000-node point so the trajectory tracks the
        # indexed cost at the scale the acceptance gate cares about.
        BenchScenario(
            name="city01_scale",
            loader=_city01,
            params={"node_counts": (500, 1000, 2000),
                    "protocols": ("flooding", "aodv"), "flow_count": 100,
                    "duration": 2.0, "warmup": 0.5},
            quick_params={"node_counts": (2000,),
                          "protocols": ("flooding", "aodv"), "flow_count": 100,
                          "duration": 2.0, "warmup": 0.5},
        ),
    )
}
