"""Reading, appending and regression-checking ``BENCH_<scenario>.json`` files.

File layout (schema 1)::

    {
      "scenario": "fig09_udp_flooding",
      "schema": 1,
      "baseline": { <record> },      # committed reference for the CI gate
      "history": [ <record>, ... ]   # trajectory, oldest first, capped
    }

A record is one measurement: wall-clock seconds, executed simulator events,
events/second, simulated seconds and simulated-seconds per wall-second, plus
``recorded_at`` (UTC ISO timestamp), ``source`` (``pytest`` or ``module``)
and an optional free-form ``label``.

The **baseline** is only ever moved explicitly (``--rebaseline`` or
:func:`record_measurement` with ``set_baseline=True``); appending history
never touches it, so a committed baseline survives any number of local bench
runs and the regression gate always compares against the reviewed number.
"""

from __future__ import annotations

import datetime
import json
import os
from typing import Any, Dict, Optional

#: Cap on stored history records; the oldest entries are dropped first.
HISTORY_LIMIT = 100

SCHEMA_VERSION = 1


def default_results_dir() -> str:
    """The committed results directory, overridable via ``BENCH_RESULTS_DIR``."""
    override = os.environ.get("BENCH_RESULTS_DIR")
    if override:
        return override
    here = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(repo_root, "benchmarks", "results")


def bench_path(scenario: str, results_dir: Optional[str] = None) -> str:
    """Path of the ``BENCH_<scenario>.json`` file."""
    return os.path.join(results_dir or default_results_dir(), f"BENCH_{scenario}.json")


def load_history(scenario: str, results_dir: Optional[str] = None) -> Dict[str, Any]:
    """The scenario's trajectory document (a fresh empty one if absent)."""
    path = bench_path(scenario, results_dir)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return {"scenario": scenario, "schema": SCHEMA_VERSION,
                "baseline": None, "history": []}
    document.setdefault("scenario", scenario)
    document.setdefault("schema", SCHEMA_VERSION)
    document.setdefault("baseline", None)
    document.setdefault("history", [])
    return document


def record_measurement(scenario: str, record: Dict[str, Any], *, source: str,
                       label: str = "", set_baseline: bool = False,
                       results_dir: Optional[str] = None) -> Dict[str, Any]:
    """Append ``record`` to the scenario's history (atomically) and return it.

    ``set_baseline=True`` additionally promotes the record to the committed
    baseline — the reference every later ``--check`` compares against.
    """
    stamped = dict(record)
    stamped["recorded_at"] = datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds")
    stamped["source"] = source
    if label:
        stamped["label"] = label

    document = load_history(scenario, results_dir)
    document["history"].append(stamped)
    document["history"] = document["history"][-HISTORY_LIMIT:]
    if set_baseline or document.get("baseline") is None:
        document["baseline"] = stamped

    path = bench_path(scenario, results_dir)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    os.replace(tmp_path, path)
    return stamped


def check_against_baseline(scenario: str, record: Dict[str, Any],
                           tolerance: float = 0.2,
                           results_dir: Optional[str] = None) -> Dict[str, Any]:
    """Compare a fresh record against the committed baseline.

    Returns a verdict dict with ``ok`` (False only when the measured
    events/second fell more than ``tolerance`` below the baseline), the two
    rates and their ratio.  A scenario with no committed baseline passes
    vacuously (``ratio`` is ``None``).
    """
    baseline = load_history(scenario, results_dir).get("baseline")
    current = float(record.get("events_per_second") or 0.0)
    if not baseline or not baseline.get("events_per_second"):
        return {"scenario": scenario, "ok": True, "ratio": None,
                "current_eps": current, "baseline_eps": None}
    reference = float(baseline["events_per_second"])
    ratio = current / reference if reference > 0 else None
    ok = ratio is None or ratio >= (1.0 - tolerance)
    return {"scenario": scenario, "ok": ok, "ratio": ratio,
            "current_eps": current, "baseline_eps": reference}
