"""``python -m repro.bench`` — run the canonical benches, track the trajectory.

Examples::

    python -m repro.bench                         # run all, print report
    python -m repro.bench --update                # ...and append history records
    python -m repro.bench --update --check        # ...and gate on >20% regression
    python -m repro.bench --rebaseline --label "post speed overhaul"
    python -m repro.bench --scenarios fig09_udp_flooding --quick
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import check_against_baseline, load_history, measure, record_measurement
from repro.bench.scenarios import CANONICAL_SCENARIOS
from repro.obs.session import observe


def _format_eps(value: Optional[float]) -> str:
    return f"{value:>12,.0f}" if value is not None else f"{'-':>12}"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the canonical benchmark scenarios and track the "
                    "perf trajectory in benchmarks/results/BENCH_<scenario>.json.")
    parser.add_argument("--scenarios", default="",
                        help="comma-separated subset (default: all canonical scenarios)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced CI-smoke parameters instead of the standard "
                             "bench parameters")
    parser.add_argument("--update", action="store_true",
                        help="append this run's records to the committed history")
    parser.add_argument("--rebaseline", action="store_true",
                        help="promote this run's records to the committed baseline "
                             "(implies --update)")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) when events/second regresses more than "
                             "--tolerance below the committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional regression for --check (default 0.2)")
    parser.add_argument("--label", default="",
                        help="free-form label stored on the records")
    parser.add_argument("--out-dir", default=None,
                        help="results directory (default benchmarks/results)")
    parser.add_argument("--profile", action="store_true",
                        help="run each scenario under the hot-path profiler and "
                             "print a 'where time goes' table per scenario "
                             "(profiled numbers are not comparable to the "
                             "baseline, so --update/--rebaseline/--check are "
                             "rejected)")
    args = parser.parse_args(argv)

    if args.profile and (args.update or args.rebaseline or args.check):
        parser.error("--profile adds measurement overhead; it cannot be "
                     "combined with --update, --rebaseline or --check")

    if args.scenarios:
        names = [name.strip() for name in args.scenarios.split(",") if name.strip()]
        unknown = [name for name in names if name not in CANONICAL_SCENARIOS]
        if unknown:
            parser.error(f"unknown scenario(s) {unknown}; "
                         f"choose from {sorted(CANONICAL_SCENARIOS)}")
    else:
        names = list(CANONICAL_SCENARIOS)

    failures = []
    profiles = []
    print(f"{'scenario':<28} {'wall s':>8} {'events':>10} {'events/s':>12} "
          f"{'sim s/s':>8} {'baseline e/s':>12} {'ratio':>7}")
    for name in names:
        scenario = CANONICAL_SCENARIOS[name]
        if args.profile:
            with observe(profile=True) as session:
                _, record = measure(scenario.run, quick=args.quick)
            profiles.append((name, session.profiler))
        else:
            _, record = measure(scenario.run, quick=args.quick)
        verdict = check_against_baseline(name, record, tolerance=args.tolerance,
                                         results_dir=args.out_dir)
        if args.update or args.rebaseline:
            record_measurement(name, record, source="module", label=args.label,
                               set_baseline=args.rebaseline, results_dir=args.out_dir)
        ratio = verdict["ratio"]
        ratio_text = f"{ratio:>6.2f}x" if ratio is not None else f"{'-':>7}"
        print(f"{name:<28} {record['wall_seconds']:>8.3f} {record['events']:>10,} "
              f"{_format_eps(record['events_per_second'])} "
              f"{record['sim_seconds_per_wall_second']:>8.1f} "
              f"{_format_eps(verdict['baseline_eps'])} {ratio_text}")
        if args.check and not verdict["ok"]:
            failures.append(verdict)

    for name, profiler in profiles:
        print()
        print(f"=== {name} ===")
        print(profiler.to_text())

    for name in names:
        history = load_history(name, results_dir=args.out_dir)["history"]
        if len(history) >= 2:
            first, last = history[0], history[-1]
            if first.get("events_per_second"):
                trend = last["events_per_second"] / first["events_per_second"]
                print(f"trajectory {name}: {len(history)} records, "
                      f"{first['events_per_second']:,.0f} -> "
                      f"{last['events_per_second']:,.0f} events/s ({trend:.2f}x)")

    if failures:
        for verdict in failures:
            print(f"REGRESSION {verdict['scenario']}: {verdict['current_eps']:,.0f} "
                  f"events/s vs baseline {verdict['baseline_eps']:,.0f} "
                  f"({verdict['ratio']:.2f}x, tolerance {1.0 - args.tolerance:.2f}x)",
                  file=sys.stderr)
        return 1
    if args.check:
        print(f"bench check ok: {len(names)} scenario(s) within "
              f"{args.tolerance:.0%} of the committed baseline")
    return 0
