"""Convolutional coding rates used by the Hydra PHY.

The paper's PHY uses a bit-interleaved binary convolutional code with rates
1/2, 2/3, 3/4 and 5/6.  We model coding as an effective SNR gain applied
before the uncoded BER expression; the gains are conventional soft-decision
Viterbi figures and only need to be roughly right because the experiments run
at 25 dB SNR where the first four rates are essentially error free and the
64-QAM rates are essentially unusable (as the paper reports).
"""

from __future__ import annotations

import enum
from fractions import Fraction


class CodingRate(enum.Enum):
    """A convolutional code rate."""

    HALF = (Fraction(1, 2), 5.0)
    TWO_THIRDS = (Fraction(2, 3), 4.0)
    THREE_QUARTERS = (Fraction(3, 4), 3.5)
    FIVE_SIXTHS = (Fraction(5, 6), 3.0)

    def __init__(self, fraction: Fraction, coding_gain_db: float) -> None:
        self.fraction = fraction
        self.coding_gain_db = coding_gain_db

    @property
    def value_float(self) -> float:
        """The code rate as a float (information bits / coded bits)."""
        return float(self.fraction)

    @property
    def numerator(self) -> int:
        """Numerator of the code rate."""
        return self.fraction.numerator

    @property
    def denominator(self) -> int:
        """Denominator of the code rate."""
        return self.fraction.denominator

    def __str__(self) -> str:
        return f"{self.fraction.numerator}/{self.fraction.denominator}"
