"""Physical-layer frame formats.

A :class:`PhyFrame` is what the MAC hands to the PHY for transmission.  For
data it follows the paper's aggregated format (Figures 1 and 2): a preamble
and PHY header carrying *rate/length* information for the broadcast portion
and for the unicast portion, followed by zero or more broadcast subframes and
zero or more unicast subframes.  RTS/CTS/ACK control frames are separate,
small, non-aggregated frames.

The PHY treats subframes as opaque objects; it only needs their
``size_bytes`` attribute (satisfied by :class:`repro.mac.frames.MacSubframe`
and the control frame classes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import PhyError
from repro.phy.rates import PhyRate
from repro.phy.timing import PhyTimingConfig


class FrameKind(enum.Enum):
    """The kind of physical frame on the air."""

    DATA = "data"
    RTS = "rts"
    CTS = "cts"
    ACK = "ack"

    @property
    def is_control(self) -> bool:
        """True for RTS/CTS/ACK frames."""
        return self is not FrameKind.DATA


@dataclass(slots=True)
class PhyFrame:
    """A frame as transmitted on the air.

    For :attr:`FrameKind.DATA` frames, ``broadcast_subframes`` are serialised
    first at ``broadcast_rate`` and ``unicast_subframes`` follow at
    ``unicast_rate``.  For control frames, ``control`` holds the single
    control frame object and ``unicast_rate`` is the rate it is sent at.
    """

    kind: FrameKind
    unicast_rate: PhyRate
    broadcast_rate: Optional[PhyRate] = None
    broadcast_subframes: Tuple[object, ...] = ()
    unicast_subframes: Tuple[object, ...] = ()
    control: Optional[object] = None
    sender: Optional[object] = None
    #: Memoised ``(timing, broadcast_offsets, unicast_offsets)`` — every
    #: receiver of the frame recomputes identical offsets otherwise.
    _offsets_cache: Optional[tuple] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def data(cls, broadcast_subframes: Sequence[object], unicast_subframes: Sequence[object],
             unicast_rate: PhyRate, broadcast_rate: Optional[PhyRate] = None) -> "PhyFrame":
        """Build an aggregated data frame (broadcast portion first)."""
        broadcast_subframes = tuple(broadcast_subframes)
        unicast_subframes = tuple(unicast_subframes)
        if not broadcast_subframes and not unicast_subframes:
            raise PhyError("a data frame must contain at least one subframe")
        if broadcast_subframes and broadcast_rate is None:
            broadcast_rate = unicast_rate
        return cls(
            kind=FrameKind.DATA,
            unicast_rate=unicast_rate,
            broadcast_rate=broadcast_rate,
            broadcast_subframes=broadcast_subframes,
            unicast_subframes=unicast_subframes,
        )

    @classmethod
    def control_frame(cls, kind: FrameKind, control: object, rate: PhyRate) -> "PhyFrame":
        """Build an RTS/CTS/ACK frame."""
        if not kind.is_control:
            raise PhyError(f"{kind} is not a control frame kind")
        return cls(kind=kind, unicast_rate=rate, control=control)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def broadcast_bytes(self) -> int:
        """Total size of the broadcast portion in bytes."""
        return sum(sf.size_bytes for sf in self.broadcast_subframes)

    @property
    def unicast_bytes(self) -> int:
        """Total size of the unicast portion in bytes."""
        return sum(sf.size_bytes for sf in self.unicast_subframes)

    @property
    def control_bytes(self) -> int:
        """Size of the control frame in bytes (0 for data frames)."""
        return self.control.size_bytes if self.control is not None else 0

    @property
    def total_bytes(self) -> int:
        """Total MAC payload bytes carried by the frame."""
        return self.broadcast_bytes + self.unicast_bytes + self.control_bytes

    @property
    def subframe_count(self) -> int:
        """Number of MAC subframes (0 for control frames)."""
        return len(self.broadcast_subframes) + len(self.unicast_subframes)

    @property
    def is_broadcast_only(self) -> bool:
        """True when the frame has broadcast subframes but no unicast portion."""
        return bool(self.broadcast_subframes) and not self.unicast_subframes

    @property
    def has_unicast(self) -> bool:
        """True when the frame carries at least one unicast subframe."""
        return bool(self.unicast_subframes)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def airtime(self, timing: PhyTimingConfig) -> float:
        """Total on-air duration of the frame, including the preamble."""
        if self.kind.is_control:
            return timing.control_airtime(self.control_bytes, self.unicast_rate)
        broadcast_rate = self.broadcast_rate or self.unicast_rate
        return timing.frame_airtime(
            self.broadcast_bytes, broadcast_rate, self.unicast_bytes, self.unicast_rate
        )

    def total_samples(self, timing: PhyTimingConfig) -> float:
        """Number of PHY payload samples (excluding the preamble)."""
        if self.kind.is_control:
            return timing.samples_for_bytes(self.control_bytes, self.unicast_rate)
        broadcast_rate = self.broadcast_rate or self.unicast_rate
        return (
            timing.samples_for_bytes(self.broadcast_bytes, broadcast_rate)
            + timing.samples_for_bytes(self.unicast_bytes, self.unicast_rate)
        )

    def sample_offsets(self, timing: PhyTimingConfig) -> Tuple[List[float], List[float]]:
        """Sample offsets (from the end of the preamble) at which subframes end.

        Returns ``(broadcast_offsets, unicast_offsets)``.  The broadcast
        portion is transmitted first (closer to the training sequences), so it
        is less exposed to channel aging — the reason the paper puts
        broadcasts ahead of unicasts (Section 4.2.3).

        The result is memoised per timing config (validated by identity, so
        the cache can never outlive the config object it was computed from):
        offsets depend only on the frame layout, which is immutable once the
        frame is on the air, yet every receiver needs them.
        """
        cached = self._offsets_cache
        if cached is not None and cached[0] is timing:
            return cached[1], cached[2]
        broadcast_rate = self.broadcast_rate or self.unicast_rate
        broadcast_offsets = timing.subframe_sample_offsets(
            [sf.size_bytes for sf in self.broadcast_subframes], broadcast_rate
        )
        start = broadcast_offsets[-1] if broadcast_offsets else 0.0
        unicast_offsets = timing.subframe_sample_offsets(
            [sf.size_bytes for sf in self.unicast_subframes], self.unicast_rate, start
        )
        self._offsets_cache = (timing, broadcast_offsets, unicast_offsets)
        return broadcast_offsets, unicast_offsets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind.is_control:
            return f"<PhyFrame {self.kind.value} {self.control_bytes}B @{self.unicast_rate.name}>"
        return (
            f"<PhyFrame data bcast={len(self.broadcast_subframes)}sf/{self.broadcast_bytes}B "
            f"ucast={len(self.unicast_subframes)}sf/{self.unicast_bytes}B @{self.unicast_rate.name}>"
        )


@dataclass(slots=True)
class ReceptionResult:
    """Outcome of decoding a received :class:`PhyFrame`.

    One boolean per subframe records whether its CRC passed.  ``collided``
    marks frames that overlapped a stronger/comparable transmission or that
    arrived while the receiver itself was transmitting.
    """

    frame: PhyFrame
    snr_db: float
    collided: bool = False
    broadcast_ok: List[bool] = field(default_factory=list)
    unicast_ok: List[bool] = field(default_factory=list)
    control_ok: bool = False

    @property
    def all_unicast_ok(self) -> bool:
        """True when every unicast subframe passed its CRC."""
        return all(self.unicast_ok) if self.unicast_ok else False

    @property
    def any_ok(self) -> bool:
        """True when anything in the frame was decodable."""
        return self.control_ok or any(self.broadcast_ok) or any(self.unicast_ok)

    @property
    def delivered_broadcast(self) -> List[object]:
        """The broadcast subframes that passed their CRC."""
        return [sf for sf, ok in zip(self.frame.broadcast_subframes, self.broadcast_ok) if ok]

    @property
    def delivered_unicast(self) -> List[object]:
        """The unicast subframes, if *all* of them passed (else empty)."""
        if self.all_unicast_ok:
            return list(self.frame.unicast_subframes)
        return []
