"""Link adaptation algorithms supported by the Hydra MAC.

The paper notes (Section 4.1.2) that Hydra implements receiver-based auto
rate (RBAR) and auto-rate fallback (ARF) but that the experiments do not use
them: every experiment pins the PHY rate.  Both algorithms are implemented
here for completeness and are exercised by the ablation benchmarks; the MAC
accepts any object implementing the small :class:`RateController` protocol.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.phy.rates import PhyRate, RateTable, required_snr_db


class RateController(Protocol):
    """Interface the MAC uses to pick the unicast data rate."""

    def current_rate(self) -> PhyRate:
        """Rate to use for the next transmission."""

    def on_success(self) -> None:
        """The last unicast exchange was acknowledged."""

    def on_failure(self) -> None:
        """The last unicast exchange failed (no ACK / no CTS)."""

    def on_feedback(self, snr_db: float) -> None:
        """Explicit channel feedback (e.g. SNR measured from an RTS/CTS exchange)."""


class FixedRate:
    """Trivial controller that always returns the configured rate."""

    __slots__ = ("_rate",)

    def __init__(self, rate: PhyRate) -> None:
        self._rate = rate

    def current_rate(self) -> PhyRate:
        return self._rate

    def set_rate(self, rate: PhyRate) -> None:
        """Change the pinned rate."""
        self._rate = rate

    def on_success(self) -> None:  # noqa: D102 - protocol no-op
        pass

    def on_failure(self) -> None:  # noqa: D102 - protocol no-op
        pass

    def on_feedback(self, snr_db: float) -> None:  # noqa: D102 - protocol no-op
        pass


class AutoRateFallback:
    """ARF (Kamerman & Monteban): step up after N successes, down after M failures."""

    __slots__ = ("table", "_rate", "success_threshold", "failure_threshold",
                 "_successes", "_failures", "_probing")

    def __init__(self, table: RateTable, initial: Optional[PhyRate] = None,
                 success_threshold: int = 10, failure_threshold: int = 2) -> None:
        self.table = table
        self._rate = initial or table.base_rate
        self.success_threshold = success_threshold
        self.failure_threshold = failure_threshold
        self._successes = 0
        self._failures = 0
        self._probing = False

    def current_rate(self) -> PhyRate:
        return self._rate

    def on_success(self) -> None:
        self._failures = 0
        self._successes += 1
        self._probing = False
        if self._successes >= self.success_threshold:
            self._successes = 0
            higher = self.table.next_higher(self._rate)
            if higher is not self._rate:
                self._rate = higher
                self._probing = True

    def on_failure(self) -> None:
        self._successes = 0
        self._failures += 1
        # A failure immediately after probing up reverts straight away.
        if self._probing or self._failures >= self.failure_threshold:
            self._failures = 0
            self._probing = False
            self._rate = self.table.next_lower(self._rate)

    def on_feedback(self, snr_db: float) -> None:
        """ARF ignores explicit feedback."""


class ReceiverBasedAutoRate:
    """RBAR (Holland, Vaidya, Bahl): pick the fastest rate the measured SNR supports."""

    __slots__ = ("table", "margin_db", "_rate")

    def __init__(self, table: RateTable, initial: Optional[PhyRate] = None,
                 margin_db: float = 3.0) -> None:
        self.table = table
        self.margin_db = margin_db
        self._rate = initial or table.base_rate

    def current_rate(self) -> PhyRate:
        return self._rate

    def on_success(self) -> None:
        """RBAR adapts only on explicit feedback."""

    def on_failure(self) -> None:
        """RBAR adapts only on explicit feedback."""

    def on_feedback(self, snr_db: float) -> None:
        chosen = self.table.base_rate
        for rate in self.table:
            if snr_db - self.margin_db >= required_snr_db(rate):
                chosen = rate
        self._rate = chosen
