"""Physical-layer model of the Hydra 802.11n-style software-radio PHY.

The PHY model captures the three things that matter for the paper's
experiments:

* **airtime arithmetic** — how long a (possibly aggregated) frame occupies the
  medium given its broadcast/unicast rates and sizes, including the long
  software-radio preamble;
* **sample accounting** — Hydra's aggregation ceiling is expressed in PHY
  samples (~120 Ksamples), so the model tracks how many samples each subframe
  ends at;
* **an error model** — SNR-driven BER/PER per modulation and coding rate plus
  a channel-estimate-aging term that makes subframes beyond the coherence
  limit fail, reproducing Figure 7's collapse.
"""

from repro.phy.modulation import Modulation
from repro.phy.coding import CodingRate
from repro.phy.rates import PhyRate, RateTable, HYDRA_SISO_RATES, hydra_rate_table
from repro.phy.timing import PhyTimingConfig
from repro.phy.error_model import ErrorModel, ErrorModelConfig
from repro.phy.frame import FrameKind, PhyFrame, ReceptionResult
from repro.phy.device import Phy, PhyConfig, PhyListener, PhyState
from repro.phy.link_adaptation import AutoRateFallback, ReceiverBasedAutoRate

__all__ = [
    "Modulation",
    "CodingRate",
    "PhyRate",
    "RateTable",
    "HYDRA_SISO_RATES",
    "hydra_rate_table",
    "PhyTimingConfig",
    "ErrorModel",
    "ErrorModelConfig",
    "FrameKind",
    "PhyFrame",
    "ReceptionResult",
    "Phy",
    "PhyConfig",
    "PhyListener",
    "PhyState",
    "AutoRateFallback",
    "ReceiverBasedAutoRate",
]
