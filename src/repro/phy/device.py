"""The PHY device: transmit/receive state machine and carrier sensing.

One :class:`Phy` instance belongs to each node.  It talks *down* to the
shared :class:`~repro.channel.medium.WirelessChannel` and *up* to a
:class:`PhyListener` (the MAC).  It is deliberately half-duplex: a frame that
arrives while the node is transmitting is lost, and overlapping receptions
interfere with each other (SINR-based capture).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Protocol

from repro.errors import PhyError
from repro.obs.journey import node_of
from repro.phy.error_model import ErrorModel, ErrorModelConfig
from repro.phy.frame import FrameKind, PhyFrame, ReceptionResult
from repro.phy.timing import PhyTimingConfig
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.channel.medium import Transmission, WirelessChannel
    from repro.mobility.models import MobilityModel


class PhyListener(Protocol):
    """Interface the MAC implements to receive PHY notifications."""

    def on_carrier_busy(self) -> None:
        """The medium became busy (energy above the carrier-sense threshold)."""

    def on_carrier_idle(self) -> None:
        """The medium became idle."""

    def on_frame_received(self, result: ReceptionResult) -> None:
        """A frame finished reception and was at least partially decodable."""

    def on_transmit_complete(self, frame: PhyFrame) -> None:
        """A locally originated frame finished transmission."""


class PhyState(enum.Enum):
    """Coarse state of the PHY."""

    IDLE = "idle"
    TRANSMITTING = "transmitting"
    RECEIVING = "receiving"


@dataclass(slots=True)
class PhyConfig:
    """Static configuration of a PHY device."""

    timing: PhyTimingConfig = field(default_factory=PhyTimingConfig)
    error: ErrorModelConfig = field(default_factory=ErrorModelConfig)
    #: Transmit power; the paper uses 7.7 mW ~= 8.9 dBm.
    tx_power_dbm: float = 8.9
    #: Energy level above which the medium is reported busy to the MAC.
    carrier_sense_threshold_dbm: float = -92.0
    #: Minimum received power for a frame to be decodable at all.
    reception_threshold_dbm: float = -90.0
    #: A frame survives interference if it is this many dB above the sum of
    #: interferers (simple capture model).
    capture_threshold_db: float = 10.0

    @property
    def detect_floor_dbm(self) -> float:
        """Weakest received power with any observable effect on this PHY.

        Below both the carrier-sense and reception thresholds a frame cannot
        be sensed, decoded, or counted — the PHY ignores it entirely (see
        :meth:`Phy.begin_reception`), which is what lets the channel cull
        such deliveries before scheduling them without changing a single
        byte of any run.
        """
        return min(self.carrier_sense_threshold_dbm, self.reception_threshold_dbm)


@dataclass(slots=True)
class _ReceptionAttempt:
    """Book-keeping for one in-flight reception."""

    transmission: "Transmission"
    rx_power_dbm: float
    interference_mw: float = 0.0
    doomed: bool = False

    def add_interference_dbm(self, power_dbm: float) -> None:
        self.interference_mw += 10.0 ** (power_dbm / 10.0)

    @property
    def interference_dbm(self) -> float:
        if self.interference_mw <= 0.0:
            return -math.inf
        return 10.0 * math.log10(self.interference_mw)


class Phy:
    """Half-duplex PHY with carrier sensing, capture and subframe decoding."""

    __slots__ = ("sim", "channel", "config", "_position", "mobility", "name",
                 "error_model", "_rng", "_listener", "_transmitting",
                 "_current_tx_frame", "_receptions", "_carrier_count",
                 "_carrier_busy_reported", "_noise_cache_dbm",
                 "_noise_cache_mw", "frames_sent", "frames_received",
                 "frames_collided", "tx_airtime", "_metrics", "_journey",
                 "_journey_node")

    def __init__(
        self,
        sim: Simulator,
        channel: "WirelessChannel",
        config: Optional[PhyConfig] = None,
        position: tuple = (0.0, 0.0),
        name: str = "phy",
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.config = config or PhyConfig()
        # Direct slot write: the position property's setter notifies the
        # channel's spatial index, which cannot know this PHY yet (register()
        # runs at the end of __init__).
        self._position = position
        self.mobility: Optional["MobilityModel"] = None
        self.name = name
        self.error_model = ErrorModel(self.config.error)
        self._rng = sim.random.stream(f"phy.{name}")
        self._listener: Optional[PhyListener] = None
        self._transmitting = False
        self._current_tx_frame: Optional[PhyFrame] = None
        self._receptions: Dict[int, _ReceptionAttempt] = {}
        self._carrier_count = 0
        self._carrier_busy_reported = False
        # Cached linear noise floor, revalidated against the channel's dBm
        # setting on every delivery (10**x per frame per receiver adds up).
        self._noise_cache_dbm: Optional[float] = None
        self._noise_cache_mw = 0.0
        # statistics
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_collided = 0
        self.tx_airtime = 0.0
        self._metrics = sim.metrics
        self._journey = sim.journey
        self._journey_node = node_of(name, "phy")
        sim.metrics.register_collector(self._collect_metrics)
        channel.register(self)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_listener(self, listener: PhyListener) -> None:
        """Attach the MAC (or any :class:`PhyListener`)."""
        self._listener = listener

    @property
    def listener(self) -> Optional[PhyListener]:
        """The attached MAC, if any."""
        return self._listener

    def set_mobility(self, model: "MobilityModel", start: bool = True,
                     stop_time: Optional[float] = None) -> "MobilityModel":
        """Attach a mobility model (and start its position update events).

        ``stop_time`` bounds the periodic updates so a mobile run whose
        traffic has drained does not keep the event queue alive forever.
        """
        if self.mobility is not None:
            raise PhyError(f"{self.name}: a mobility model is already attached")
        self.mobility = model
        model.attach(self)
        # The spatial index revalidates mobile PHYs against position_at() on
        # every query; tell the channel this one just became mobile.
        self.channel.phy_mobility_changed(self)
        if start:
            model.start(stop_time=stop_time)
        return model

    @property
    def position(self) -> tuple:
        """Latest position snapshot; refreshed by mobility update events.

        Link budgets use :meth:`position_at` (exact) instead of this.
        Assigning a new position notifies the channel so its spatial index
        re-buckets the PHY immediately — a reassigned *static* position has
        no mobility model to revalidate against, so the setter is the only
        way the index learns about it.
        """
        return self._position

    @position.setter
    def position(self, value: tuple) -> None:
        self._position = value
        self.channel.phy_position_changed(self)

    def position_at(self, time: float) -> tuple:
        """Exact position at simulated ``time``.

        Without a mobility model this is the static ``position`` attribute —
        the same tuple object, so stationary scenarios are unchanged bit for
        bit.  With one, the model interpolates analytically between waypoints
        regardless of the update-event granularity.
        """
        if self.mobility is None:
            return self.position
        return self.mobility.position_at(time)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> PhyState:
        """Current coarse PHY state."""
        if self._transmitting:
            return PhyState.TRANSMITTING
        if self._receptions:
            return PhyState.RECEIVING
        return PhyState.IDLE

    @property
    def carrier_busy(self) -> bool:
        """True when the node is transmitting or senses energy on the medium."""
        return self._transmitting or self._carrier_count > 0

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def send(self, frame: PhyFrame) -> float:
        """Transmit ``frame``; returns its airtime in seconds."""
        if self._transmitting:
            raise PhyError(f"{self.name}: send() while already transmitting")
        frame.sender = self
        duration = frame.airtime(self.config.timing)
        self._transmitting = True
        self._current_tx_frame = frame
        self.frames_sent += 1
        self.tx_airtime += duration
        # Transmitting while receiving destroys the receptions in progress.
        for attempt in self._receptions.values():
            attempt.doomed = True
        self.channel.broadcast(self, frame, duration, self.config.tx_power_dbm)
        sim = self.sim
        sim._scheduler.push(sim.now + duration, self._finish_transmission, (frame,),
                            Simulator.PRIORITY_PHY)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(self.name, "phy", "tx_start", kind=frame.kind.value,
                        bytes=frame.total_bytes, duration=duration)
        metrics = self._metrics
        if metrics.enabled:
            metrics.inc("phy.tx_frames", node=self.name, kind=frame.kind.value)
        capture = sim.capture
        if capture is not None:
            capture.record_tx(sim.now, self, frame, duration)
        return duration

    def _finish_transmission(self, frame: PhyFrame) -> None:
        self._transmitting = False
        self._current_tx_frame = None
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(self.name, "phy", "tx_end", kind=frame.kind.value)
        if self._listener is not None:
            self._listener.on_transmit_complete(frame)
        self._update_carrier()

    # ------------------------------------------------------------------
    # Receive path (driven by the channel)
    # ------------------------------------------------------------------
    def begin_reception(self, transmission: "Transmission", rx_power_dbm: float) -> None:
        """Called by the channel when a remote transmission starts arriving."""
        config = self.config
        if (rx_power_dbm < config.carrier_sense_threshold_dbm
                and rx_power_dbm < config.reception_threshold_dbm):
            # Below the detect floor the frame is invisible: no carrier
            # energy, no reception attempt, no interference contribution, no
            # counters.  This is the PHY-side half of the conservative-cutoff
            # contract (docs/DETERMINISM.md): because a sub-floor arrival has
            # zero observable effect, the channel may skip scheduling it — in
            # every enumeration mode — without changing any byte of a run.
            return
        if rx_power_dbm >= self.config.carrier_sense_threshold_dbm:
            self._carrier_count += 1
            self._update_carrier()

        decodable = rx_power_dbm >= self.config.reception_threshold_dbm
        attempt = _ReceptionAttempt(transmission=transmission, rx_power_dbm=rx_power_dbm,
                                    doomed=not decodable or self._transmitting)
        # Mutual interference with every reception already in progress.
        for other in self._receptions.values():
            other.add_interference_dbm(rx_power_dbm)
            attempt.add_interference_dbm(other.rx_power_dbm)
        self._receptions[id(transmission)] = attempt

    def end_reception(self, transmission: "Transmission") -> None:
        """Called by the channel when a remote transmission stops arriving."""
        attempt = self._receptions.pop(id(transmission), None)
        if attempt is None:  # pragma: no cover - defensive
            return
        if attempt.rx_power_dbm >= self.config.carrier_sense_threshold_dbm:
            self._carrier_count = max(0, self._carrier_count - 1)
        # Transmitting at the instant reception completes also kills it.
        if self._transmitting:
            attempt.doomed = True
        self._deliver(attempt)
        self._update_carrier()

    def abort_receptions(self) -> None:
        """Forget every reception in progress without delivering anything.

        The channel calls this when the PHY is unregistered mid-flight: the
        pending end-reception events are cancelled on the channel side, so the
        attempts (and the carrier energy they contributed) must be dropped
        here or the PHY would sense a busy medium forever.
        """
        self._receptions.clear()
        self._carrier_count = 0
        self._update_carrier()

    def _deliver(self, attempt: _ReceptionAttempt) -> None:
        frame = attempt.transmission.frame
        noise_dbm = self.channel.noise_floor_dbm
        if noise_dbm != self._noise_cache_dbm:
            self._noise_cache_dbm = noise_dbm
            self._noise_cache_mw = 10.0 ** (noise_dbm / 10.0)
        noise_mw = self._noise_cache_mw
        sinr_db = attempt.rx_power_dbm - 10.0 * math.log10(noise_mw + attempt.interference_mw)
        captured = True
        if attempt.interference_mw > 0.0:
            captured = (attempt.rx_power_dbm - attempt.interference_dbm
                        >= self.config.capture_threshold_db)
        collided = attempt.doomed or not captured

        result = ReceptionResult(frame=frame, snr_db=sinr_db, collided=collided)
        timing = self.config.timing
        if frame.kind.is_control:
            result.control_ok = (not collided) and self.error_model.control_frame_survives(
                self._rng, sinr_db, frame.unicast_rate, frame.control_bytes)
        else:
            broadcast_offsets, unicast_offsets = frame.sample_offsets(timing)
            broadcast_rate = frame.broadcast_rate or frame.unicast_rate
            for subframe, offset in zip(frame.broadcast_subframes, broadcast_offsets):
                ok = (not collided) and self.error_model.subframe_survives(
                    self._rng, sinr_db, broadcast_rate, subframe.size_bytes, offset)
                result.broadcast_ok.append(ok)
            for subframe, offset in zip(frame.unicast_subframes, unicast_offsets):
                ok = (not collided) and self.error_model.subframe_survives(
                    self._rng, sinr_db, frame.unicast_rate, subframe.size_bytes, offset)
                result.unicast_ok.append(ok)

        if collided:
            self.frames_collided += 1
        self.frames_received += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(self.name, "phy", "rx_end", kind=frame.kind.value,
                        snr=round(sinr_db, 1), collided=collided)
        metrics = self._metrics
        if metrics.enabled:
            outcome = ("collided" if collided
                       else "decoded" if result.any_ok else "undecoded")
            metrics.inc("phy.rx_frames", node=self.name,
                        kind=frame.kind.value, outcome=outcome)
            metrics.observe("phy.rx_snr_db", sinr_db, node=self.name)
        journey = self._journey
        if journey.enabled and not frame.kind.is_control:
            now = self.sim.now
            node = self._journey_node
            snr = round(sinr_db, 1)
            for subframe, ok in zip(frame.broadcast_subframes,
                                    result.broadcast_ok):
                journey.record(now, node, "phy", "rx", subframe.packet,
                               ok=ok, collided=collided, snr=snr)
            for subframe, ok in zip(frame.unicast_subframes,
                                    result.unicast_ok):
                journey.record(now, node, "phy", "rx", subframe.packet,
                               ok=ok, collided=collided, snr=snr)
        capture = self.sim.capture
        if capture is not None:
            capture.record_rx(self.sim.now, self, result)
        if self._listener is not None and result.any_ok or self._listener is not None and collided:
            self._listener.on_frame_received(result)

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: running PHY totals as per-node gauges."""
        registry.set_gauge("phy.frames_sent", self.frames_sent, node=self.name)
        registry.set_gauge("phy.frames_received", self.frames_received, node=self.name)
        registry.set_gauge("phy.frames_collided", self.frames_collided, node=self.name)
        registry.set_gauge("phy.tx_airtime_s", self.tx_airtime, node=self.name)

    # ------------------------------------------------------------------
    # Carrier sense notification
    # ------------------------------------------------------------------
    def _update_carrier(self) -> None:
        busy = self.carrier_busy
        if busy and not self._carrier_busy_reported:
            self._carrier_busy_reported = True
            if self._listener is not None:
                self._listener.on_carrier_busy()
        elif not busy and self._carrier_busy_reported:
            self._carrier_busy_reported = False
            if self._listener is not None:
                self._listener.on_carrier_idle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Phy {self.name} state={self.state.value}>"
