"""Modulation schemes supported by the Hydra PHY.

Hydra (Table 1 of the paper) supports BPSK, QPSK, 16-QAM and 64-QAM with a
bit-interleaved convolutional code.  The BER approximations below are the
standard Gray-coded AWGN expressions; they are evaluated on the *effective*
SNR after coding gain and implementation loss have been applied by
:class:`repro.phy.error_model.ErrorModel`.
"""

from __future__ import annotations

import enum
import math


def q_function(x: float) -> float:
    """Gaussian tail probability Q(x) = P(N(0,1) > x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


class Modulation(enum.Enum):
    """A constellation used by the PHY."""

    BPSK = ("BPSK", 1)
    QPSK = ("QPSK", 2)
    QAM16 = ("16-QAM", 4)
    QAM64 = ("64-QAM", 6)

    def __init__(self, label: str, bits_per_symbol: int) -> None:
        self.label = label
        self.bits_per_symbol = bits_per_symbol

    @property
    def constellation_size(self) -> int:
        """Number of constellation points (M)."""
        return 2 ** self.bits_per_symbol

    def bit_error_rate(self, snr_db: float, coding_rate: float = 1.0) -> float:
        """Approximate bit error rate at the given per-symbol SNR.

        Parameters
        ----------
        snr_db:
            Effective per-symbol signal-to-noise ratio in dB (after coding
            gain / implementation loss adjustments).
        coding_rate:
            Fraction of transmitted bits that are information bits; used to
            convert symbol SNR into Eb/N0.
        """
        snr_linear = 10.0 ** (snr_db / 10.0)
        # Eb/N0 = Es/N0 / (bits-per-symbol * coding-rate)
        denominator = self.bits_per_symbol * max(coding_rate, 1e-9)
        ebn0 = snr_linear / denominator
        if ebn0 <= 0:
            return 0.5

        if self in (Modulation.BPSK, Modulation.QPSK):
            ber = q_function(math.sqrt(2.0 * ebn0))
        else:
            m = self.constellation_size
            k = self.bits_per_symbol
            # Gray-coded square M-QAM approximation.
            coefficient = (4.0 / k) * (1.0 - 1.0 / math.sqrt(m))
            argument = math.sqrt(3.0 * k * ebn0 / (m - 1.0))
            ber = coefficient * q_function(argument)
        return min(max(ber, 0.0), 0.5)

    def __str__(self) -> str:
        return self.label
