"""Subframe error model.

Each MAC subframe inside a physical frame is accepted or rejected
independently based on its own cyclic redundancy check (Section 4.2.2 of the
paper).  The probability that a subframe is corrupted has two components:

* a **noise term** — the standard AWGN bit-error-rate of the modulation at the
  effective SNR (after coding gain and the software-radio implementation
  loss), accumulated over the subframe's bits; and
* an **aging term** — Hydra estimates the channel once, from the preamble.
  Subframes whose last sample lies beyond the channel coherence limit
  (~120 Ksamples) are demodulated against a stale estimate and fail with
  quickly increasing probability.  This is what produces the throughput
  collapse beyond the 5/11/15 KB aggregation thresholds in Figure 7.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.phy.rates import PhyRate


@dataclass(slots=True)
class ErrorModelConfig:
    """Tunable constants of the error model.

    Attributes
    ----------
    implementation_loss_db:
        SNR penalty representing the prototype's front-end and software
        demodulation losses.  Calibrated so that, at the paper's 25 dB
        operating SNR, the 64-QAM rates are unreliable (as reported in
        Section 5) while BPSK/QPSK/16-QAM are essentially error free.
    coherence_samples:
        Number of PHY samples after the preamble for which the channel
        estimate remains valid (the paper observes ~120 Ksamples).
    aging_scale_fraction:
        Fraction of ``coherence_samples`` over which the aging failure
        probability rises towards one once the limit is exceeded; smaller
        values give a sharper collapse.
    """

    implementation_loss_db: float = 8.0
    coherence_samples: float = 120_000.0
    aging_scale_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.coherence_samples <= 0:
            raise ConfigurationError("coherence_samples must be positive")
        if self.aging_scale_fraction <= 0:
            raise ConfigurationError("aging_scale_fraction must be positive")


class ErrorModel:
    """Computes and samples per-subframe error probabilities.

    ``subframe_error_probability`` is a pure function of its arguments (the
    config is immutable in practice), and stationary scenarios evaluate it
    with the same handful of (SNR, rate, size, offset) tuples millions of
    times — once per subframe per receiver per frame — so the model memoises
    the probability.  Sampling still draws from the caller's stream on every
    call, so reproducibility is untouched: the cache changes *when math runs*,
    never *which numbers come out*.
    """

    __slots__ = ("config", "_probability_cache")

    #: Drop the memo once it holds this many distinct argument tuples
    #: (mobile/interference scenarios produce unbounded SNR values).
    _CACHE_LIMIT = 8192

    def __init__(self, config: Optional[ErrorModelConfig] = None) -> None:
        self.config = config or ErrorModelConfig()
        self._probability_cache: Dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------
    def bit_error_rate(self, snr_db: float, rate: PhyRate) -> float:
        """Post-coding BER at the given received SNR for ``rate``."""
        effective_snr = (
            snr_db + rate.coding.coding_gain_db - self.config.implementation_loss_db
        )
        return rate.modulation.bit_error_rate(effective_snr, rate.coding.value_float)

    def noise_error_probability(self, snr_db: float, rate: PhyRate, size_bytes: int) -> float:
        """Probability that at least one of the subframe's bits is in error."""
        ber = self.bit_error_rate(snr_db, rate)
        n_bits = max(size_bytes, 0) * 8
        if ber <= 0.0 or n_bits == 0:
            return 0.0
        if ber >= 0.5:
            return 1.0
        # log-domain to avoid underflow for very small BER * large frames
        log_ok = n_bits * math.log1p(-ber)
        return 1.0 - math.exp(log_ok)

    def aging_error_probability(self, end_offset_samples: float) -> float:
        """Probability of failure due to a stale channel estimate."""
        excess = end_offset_samples - self.config.coherence_samples
        if excess <= 0:
            return 0.0
        scale = self.config.coherence_samples * self.config.aging_scale_fraction
        return 1.0 - math.exp(-excess / scale)

    def subframe_error_probability(self, snr_db: float, rate: PhyRate, size_bytes: int,
                                   end_offset_samples: float = 0.0) -> float:
        """Combined probability that a subframe fails its CRC (memoised)."""
        key = (snr_db, rate, size_bytes, end_offset_samples)
        cached = self._probability_cache.get(key)
        if cached is not None:
            return cached
        p_noise = self.noise_error_probability(snr_db, rate, size_bytes)
        p_aging = self.aging_error_probability(end_offset_samples)
        probability = 1.0 - (1.0 - p_noise) * (1.0 - p_aging)
        if len(self._probability_cache) >= self._CACHE_LIMIT:
            self._probability_cache.clear()
        self._probability_cache[key] = probability
        return probability

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def subframe_survives(self, rng: random.Random, snr_db: float, rate: PhyRate,
                          size_bytes: int, end_offset_samples: float = 0.0) -> bool:
        """Draw whether the subframe passes its CRC."""
        # Inline cache probe (this runs once per subframe per receiver; the
        # extra call into subframe_error_probability showed up in profiles).
        p_error = self._probability_cache.get(
            (snr_db, rate, size_bytes, end_offset_samples))
        if p_error is None:
            p_error = self.subframe_error_probability(
                snr_db, rate, size_bytes, end_offset_samples)
        if p_error <= 0.0:
            return True
        if p_error >= 1.0:
            return False
        return rng.random() >= p_error

    def control_frame_survives(self, rng: random.Random, snr_db: float, rate: PhyRate,
                               size_bytes: int) -> bool:
        """Draw whether a control frame (RTS/CTS/ACK) is received correctly."""
        return self.subframe_survives(rng, snr_db, rate, size_bytes, end_offset_samples=0.0)
