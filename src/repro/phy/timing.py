"""PHY airtime and sample accounting.

Two quantities drive every experiment in the paper:

* the **airtime** of a physical frame — preamble plus the broadcast portion at
  the broadcast rate plus the unicast portion at the unicast rate — which
  determines throughput; and
* the **sample offset** at which each subframe ends — Hydra's channel
  estimate, taken from the preamble, goes stale after roughly 120 Ksamples, so
  subframes ending beyond that offset fail (Section 6.1 / Figure 7).

The Hydra PHY streams complex baseband samples over USB at an effective rate
of about 1.9 Msample/s in this model; that constant is calibrated so that the
paper's byte thresholds (5 KB at 0.65 Mbps, ~11 KB at 1.3 Mbps, ~15 KB at
1.95 Mbps) all map to the same ~120 Ksample ceiling, exactly as the authors
observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.phy.rates import PhyRate
from repro.units import microseconds


@dataclass(slots=True)
class PhyTimingConfig:
    """Timing constants of the PHY.

    Attributes
    ----------
    preamble_duration:
        Duration of the PHY training sequences plus rate/length header
        (seconds).  Hydra's software PHY preamble is long compared to
        commodity 802.11 hardware.
    sample_rate:
        Effective complex-baseband sample rate (samples per second) used to
        convert airtime into PHY samples for the aging model.
    turnaround_time:
        Extra RX/TX turnaround latency added once per transmission, modelling
        the USB + software pipeline latency of the prototype.
    """

    preamble_duration: float = microseconds(240.0)
    sample_rate: float = 1.9e6
    turnaround_time: float = 0.0

    def __post_init__(self) -> None:
        if self.preamble_duration < 0:
            raise ConfigurationError("preamble_duration must be non-negative")
        if self.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be positive")
        if self.turnaround_time < 0:
            raise ConfigurationError("turnaround_time must be non-negative")

    # ------------------------------------------------------------------
    # Airtime
    # ------------------------------------------------------------------
    def payload_airtime(self, size_bytes: int, rate: PhyRate) -> float:
        """Airtime of ``size_bytes`` of MAC payload at ``rate`` (no preamble)."""
        if size_bytes < 0:
            raise ConfigurationError("size_bytes must be non-negative")
        return rate.transmission_time(size_bytes)

    def frame_airtime(self, broadcast_bytes: int, broadcast_rate: PhyRate,
                      unicast_bytes: int, unicast_rate: PhyRate) -> float:
        """Total airtime of an aggregated physical frame.

        The broadcast portion is serialised first at ``broadcast_rate``, then
        the unicast portion at ``unicast_rate`` (Figure 2 of the paper), after
        a single preamble.
        """
        duration = self.preamble_duration + self.turnaround_time
        if broadcast_bytes:
            duration += self.payload_airtime(broadcast_bytes, broadcast_rate)
        if unicast_bytes:
            duration += self.payload_airtime(unicast_bytes, unicast_rate)
        return duration

    def control_airtime(self, size_bytes: int, rate: PhyRate) -> float:
        """Airtime of a control frame (RTS/CTS/ACK): preamble + body."""
        return self.preamble_duration + self.turnaround_time + self.payload_airtime(size_bytes, rate)

    # ------------------------------------------------------------------
    # Samples
    # ------------------------------------------------------------------
    def samples_for_airtime(self, airtime_s: float) -> float:
        """Number of PHY samples occupied by ``airtime_s`` seconds of payload."""
        return airtime_s * self.sample_rate

    def samples_for_bytes(self, size_bytes: int, rate: PhyRate) -> float:
        """Number of PHY samples needed to carry ``size_bytes`` at ``rate``."""
        return self.samples_for_airtime(self.payload_airtime(size_bytes, rate))

    def bytes_for_samples(self, samples: float, rate: PhyRate) -> float:
        """Inverse of :meth:`samples_for_bytes` (may be fractional)."""
        airtime = samples / self.sample_rate
        return rate.bits_in_time(airtime) / 8.0

    def subframe_sample_offsets(self, sizes_bytes: Sequence[int], rate: PhyRate,
                                start_offset_samples: float = 0.0) -> List[float]:
        """Sample offset (from the end of the preamble) at which each subframe ends.

        ``start_offset_samples`` accounts for an earlier portion of the frame
        transmitted at a different rate (e.g. the broadcast portion preceding
        the unicast portion).
        """
        offsets: List[float] = []
        cumulative = start_offset_samples
        for size in sizes_bytes:
            cumulative += self.samples_for_bytes(size, rate)
            offsets.append(cumulative)
        return offsets
