"""PHY rate table.

The Hydra prototype supports SISO data rates of 0.65, 1.30, 1.95, 2.60, 3.90,
5.20, 5.85 and 6.50 Mbps (Table 1) — exactly the 802.11n MCS 0–7 rates scaled
down by a factor of ten because of USB/processing limits — plus MIMO modes at
2x/3x/4x those rates.  The experiments in the paper use the first four SISO
rates with cyclic delay diversity (a single spatial stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.phy.coding import CodingRate
from repro.phy.modulation import Modulation
from repro.units import mbps


@dataclass(frozen=True, slots=True)
class PhyRate:
    """A single (modulation, coding rate, data rate) operating point."""

    name: str
    modulation: Modulation
    coding: CodingRate
    data_rate_bps: float
    spatial_streams: int = 1

    @property
    def data_rate_mbps(self) -> float:
        """Data rate in Mbps."""
        return self.data_rate_bps / 1e6

    def transmission_time(self, size_bytes: int) -> float:
        """Seconds needed to serialise ``size_bytes`` at this rate."""
        return (size_bytes * 8.0) / self.data_rate_bps

    def bits_in_time(self, duration_s: float) -> float:
        """Number of information bits carried in ``duration_s`` seconds."""
        return duration_s * self.data_rate_bps

    def __str__(self) -> str:
        return f"{self.name} ({self.modulation} {self.coding}, {self.data_rate_mbps:.2f} Mbps)"


def _hydra_siso_rates() -> List[PhyRate]:
    specs: List[Tuple[str, Modulation, CodingRate, float]] = [
        ("MCS0", Modulation.BPSK, CodingRate.HALF, 0.65),
        ("MCS1", Modulation.QPSK, CodingRate.HALF, 1.30),
        ("MCS2", Modulation.QPSK, CodingRate.THREE_QUARTERS, 1.95),
        ("MCS3", Modulation.QAM16, CodingRate.HALF, 2.60),
        ("MCS4", Modulation.QAM16, CodingRate.THREE_QUARTERS, 3.90),
        ("MCS5", Modulation.QAM64, CodingRate.TWO_THIRDS, 5.20),
        ("MCS6", Modulation.QAM64, CodingRate.THREE_QUARTERS, 5.85),
        ("MCS7", Modulation.QAM64, CodingRate.FIVE_SIXTHS, 6.50),
    ]
    return [
        PhyRate(name=name, modulation=mod, coding=cod, data_rate_bps=mbps(rate))
        for name, mod, cod, rate in specs
    ]


#: The eight Hydra SISO rates from Table 1 of the paper.
HYDRA_SISO_RATES: Tuple[PhyRate, ...] = tuple(_hydra_siso_rates())

#: The base (most robust) rate; control frames are transmitted at this rate.
HYDRA_BASE_RATE: PhyRate = HYDRA_SISO_RATES[0]


class RateTable:
    """An ordered collection of :class:`PhyRate` operating points."""

    __slots__ = ("_rates", "_by_name")

    def __init__(self, rates: Iterable[PhyRate]):
        self._rates: List[PhyRate] = sorted(rates, key=lambda r: r.data_rate_bps)
        if not self._rates:
            raise ConfigurationError("rate table must contain at least one rate")
        self._by_name: Dict[str, PhyRate] = {r.name: r for r in self._rates}

    def __iter__(self):
        return iter(self._rates)

    def __len__(self) -> int:
        return len(self._rates)

    def __contains__(self, rate: PhyRate) -> bool:
        return rate in self._rates

    @property
    def base_rate(self) -> PhyRate:
        """The slowest (most robust) rate in the table."""
        return self._rates[0]

    @property
    def max_rate(self) -> PhyRate:
        """The fastest rate in the table."""
        return self._rates[-1]

    def by_name(self, name: str) -> PhyRate:
        """Look up a rate by its MCS name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(f"unknown rate name {name!r}") from None

    def by_mbps(self, rate_mbps: float, tolerance: float = 0.01) -> PhyRate:
        """Look up a rate by its nominal data rate in Mbps."""
        for rate in self._rates:
            if abs(rate.data_rate_mbps - rate_mbps) <= tolerance:
                return rate
        raise ConfigurationError(f"no PHY rate close to {rate_mbps} Mbps in table")

    def index_of(self, rate: PhyRate) -> int:
        """Position of ``rate`` in the (ascending) table."""
        return self._rates.index(rate)

    def next_lower(self, rate: PhyRate) -> PhyRate:
        """The next slower rate (or ``rate`` itself if already the slowest)."""
        index = self.index_of(rate)
        return self._rates[max(0, index - 1)]

    def next_higher(self, rate: PhyRate) -> PhyRate:
        """The next faster rate (or ``rate`` itself if already the fastest)."""
        index = self.index_of(rate)
        return self._rates[min(len(self._rates) - 1, index + 1)]

    def highest_supported(self, snr_db: float, required_margin_db: float = 0.0,
                          error_model: Optional["object"] = None) -> PhyRate:
        """Pick the fastest rate whose required SNR is met (used by RBAR)."""
        chosen = self.base_rate
        for rate in self._rates:
            if snr_db - required_margin_db >= required_snr_db(rate):
                chosen = rate
        return chosen


def required_snr_db(rate: PhyRate) -> float:
    """Rule-of-thumb SNR (dB) needed for reliable operation at ``rate``.

    These figures are used only by the RBAR link-adaptation algorithm (which
    the paper's experiments leave disabled); they are the conventional
    802.11a/n receiver sensitivities shifted to this model's scale.
    """
    thresholds = {
        ("BPSK", "1/2"): 5.0,
        ("QPSK", "1/2"): 8.0,
        ("QPSK", "3/4"): 11.0,
        ("16-QAM", "1/2"): 14.0,
        ("16-QAM", "3/4"): 18.0,
        ("64-QAM", "2/3"): 26.0,
        ("64-QAM", "3/4"): 28.0,
        ("64-QAM", "5/6"): 30.0,
    }
    return thresholds.get((rate.modulation.label, str(rate.coding)), 30.0)


def hydra_rate_table(mimo_multiplier: int = 1) -> RateTable:
    """Build the Hydra rate table.

    Parameters
    ----------
    mimo_multiplier:
        1 for SISO (and cyclic delay diversity, which carries a single spatial
        stream), 2/3/4 for the spatial-multiplexing MIMO modes listed in
        Table 1 of the paper.
    """
    if mimo_multiplier < 1 or mimo_multiplier > 4:
        raise ConfigurationError("mimo_multiplier must be between 1 and 4")
    rates = [
        PhyRate(
            name=rate.name if mimo_multiplier == 1 else f"{rate.name}x{mimo_multiplier}",
            modulation=rate.modulation,
            coding=rate.coding,
            data_rate_bps=rate.data_rate_bps * mimo_multiplier,
            spatial_streams=mimo_multiplier,
        )
        for rate in HYDRA_SISO_RATES
    ]
    return RateTable(rates)
