"""A node: PHY, MAC, network layer and transport layers wired together.

This mirrors the Hydra block diagram (Figure 3 of the paper): the radio/PHY
at the bottom, the Click-based MAC and routing in the middle and the Linux
protocol stack (here: the ``repro`` UDP/TCP implementations) on top.

Beyond the paper's stationary testbed, a node may carry a
:mod:`repro.mobility` model (:meth:`Node.set_mobility`); ``position`` then
tracks the model's scheduler-driven updates and :meth:`Node.position_at`
answers exactly for any time.  With ``routing="dsdv"`` or ``routing="aodv"``
the node additionally runs a dynamic control plane: its routing table is a
:class:`~repro.net.dynamic_routing.DynamicRoutingTable` maintained either
proactively by HELLO-based neighbor discovery plus DSDV advertisements
(:mod:`repro.net.dynamic_routing`) or reactively by AODV-style on-demand
route discovery (:mod:`repro.net.on_demand`) instead of statically installed
routes.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.channel.medium import WirelessChannel
from repro.core.policies import AggregationPolicy, broadcast_aggregation
from repro.errors import ConfigurationError
from repro.mac.addresses import MacAddress
from repro.mac.dcf import AggregatingMac, MacConfig
from repro.net.address import IpAddress
from repro.net.dynamic_routing import DsdvConfig, DsdvRouter, DynamicRoutingTable
from repro.net.on_demand import AodvConfig, AodvRouter
from repro.net.routing import ForwardingEngine, NeighborTable, RoutingTable
from repro.node.hydra import (
    HydraProfile,
    default_aodv_config,
    default_dsdv_config,
    default_hydra_profile,
)
from repro.phy.device import Phy
from repro.sim.simulator import Simulator
from repro.transport.tcp.layer import TcpLayer
from repro.transport.udp import UdpLayer

#: The routing modes a node can be constructed with: statically installed
#: routes (the paper's testbed), the proactive DSDV control plane, or the
#: reactive AODV control plane.  :class:`~repro.topology.mobile.MobileScenario`
#: validates against this same tuple, so the two never drift apart.
VALID_ROUTING_MODES = ("static", "dsdv", "aodv")

#: Configuration object accepted alongside the matching routing mode.
RoutingConfig = Union[DsdvConfig, AodvConfig]


def validate_routing_mode(routing: str) -> str:
    """Fail fast (with a :class:`ValueError`) on an unknown routing mode.

    :class:`~repro.errors.ConfigurationError` is also a :class:`ValueError`,
    so an invalid ``routing=`` string surfaces at construction time with the
    valid modes spelled out — never later as an ``AttributeError`` on a
    router that was silently not built.
    """
    if routing not in VALID_ROUTING_MODES:
        valid = ", ".join(repr(mode) for mode in VALID_ROUTING_MODES)
        raise ConfigurationError(
            f"unknown routing mode {routing!r}; valid modes: {valid}")
    return routing


class Node:
    """A complete wireless node."""

    def __init__(
        self,
        sim: Simulator,
        channel: WirelessChannel,
        index: int,
        position: Tuple[float, float] = (0.0, 0.0),
        policy: Optional[AggregationPolicy] = None,
        profile: Optional[HydraProfile] = None,
        neighbors: Optional[NeighborTable] = None,
        use_block_ack: bool = False,
        routing: str = "static",
        routing_config: Optional[RoutingConfig] = None,
    ) -> None:
        validate_routing_mode(routing)
        self.sim = sim
        self.channel = channel
        self.index = index
        self.profile = profile or default_hydra_profile()
        self.policy = policy or broadcast_aggregation()

        self.ip = IpAddress.host(index)
        self.mac_address = MacAddress.node(index)
        self.name = f"node{index}"

        # --- PHY -----------------------------------------------------------
        self.phy = Phy(sim, channel, config=self.profile.phy_config(),
                       position=position, name=f"{self.name}.phy")

        # --- MAC -----------------------------------------------------------
        broadcast_rate = self.profile.broadcast_rate()
        if self.policy.broadcast_rate_mbps is not None:
            broadcast_rate = self.profile.rate_table.by_mbps(self.policy.broadcast_rate_mbps)
        mac_config = MacConfig(
            address=self.mac_address,
            unicast_rate=self.profile.unicast_rate(),
            broadcast_rate=broadcast_rate,
            basic_rate=self.profile.rate_table.base_rate,
            timing=self.profile.mac_timing,
            use_rts_cts=self.profile.use_rts_cts,
            queue_capacity=self.profile.queue_capacity,
            use_block_ack=use_block_ack,
        )
        self.mac = AggregatingMac(sim, self.phy, mac_config, policy=self.policy,
                                  name=f"{self.name}.mac")

        # --- network layer ---------------------------------------------------
        self.routing_mode = routing
        self.routing_table = (RoutingTable() if routing == "static"
                              else DynamicRoutingTable())
        self.neighbors = neighbors if neighbors is not None else NeighborTable()
        self.network = ForwardingEngine(sim, self.mac, self.ip,
                                        routing_table=self.routing_table,
                                        neighbors=self.neighbors,
                                        name=f"{self.name}.net")
        # The dynamic control plane (None under static routing).  Construction
        # wires packet handlers only; call :meth:`start_routing` (or let the
        # scenario builder do it) to begin HELLOs and route maintenance.
        self.router: Optional[Union[DsdvRouter, AodvRouter]] = None
        if routing == "static" and routing_config is not None:
            raise ConfigurationError(
                "routing_config was given but routing='static' ignores it; "
                "did you mean routing='dsdv' or routing='aodv'?")
        if routing == "dsdv":
            if routing_config is not None and not isinstance(routing_config, DsdvConfig):
                raise ConfigurationError(
                    f"routing='dsdv' takes a DsdvConfig, got "
                    f"{type(routing_config).__name__}")
            self.router = DsdvRouter(sim, self.network, self.routing_table,
                                     config=routing_config or default_dsdv_config(),
                                     name=f"{self.name}.dsdv")
        elif routing == "aodv":
            if routing_config is not None and not isinstance(routing_config, AodvConfig):
                raise ConfigurationError(
                    f"routing='aodv' takes an AodvConfig, got "
                    f"{type(routing_config).__name__}")
            self.router = AodvRouter(sim, self.network, self.routing_table,
                                     config=routing_config or default_aodv_config(),
                                     name=f"{self.name}.aodv")

        # --- transport layers ------------------------------------------------
        self.udp = UdpLayer(sim, self.network, self.ip)
        self.tcp = TcpLayer(sim, self.network, self.ip)

    # ------------------------------------------------------------------
    # Position and mobility (delegated to the PHY)
    # ------------------------------------------------------------------
    @property
    def position(self) -> Tuple[float, float]:
        """Current position snapshot (the PHY's, kept fresh by mobility updates)."""
        return self.phy.position

    @position.setter
    def position(self, value: Tuple[float, float]) -> None:
        self.phy.position = value

    def position_at(self, time: float) -> Tuple[float, float]:
        """Exact analytic position at simulated ``time``."""
        return self.phy.position_at(time)

    @property
    def mobility(self):
        """The attached mobility model, if any."""
        return self.phy.mobility

    def set_mobility(self, model, start: bool = True, stop_time: float = None):
        """Attach a mobility model to this node's PHY."""
        return self.phy.set_mobility(model, start=start, stop_time=stop_time)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def mac_stats(self):
        """The MAC statistics of this node (Tables 3-8 feed off these)."""
        return self.mac.stats

    def add_route(self, destination: IpAddress, next_hop: IpAddress) -> None:
        """Install a static route."""
        self.routing_table.add_route(destination, next_hop)

    def start_routing(self, stop_time: float = None) -> None:
        """Start the dynamic control plane (no-op under static routing).

        ``stop_time`` bounds the protocol timers so runs whose traffic drains
        do not keep the event queue alive to the horizon.
        """
        if self.router is not None:
            self.router.start(stop_time=stop_time)

    def set_unicast_rate(self, rate_mbps: float) -> None:
        """Pin the unicast PHY rate of this node's MAC."""
        rate = self.profile.rate_table.by_mbps(rate_mbps)
        self.mac.rate_controller.set_rate(rate)
        self.mac.config.unicast_rate = rate

    def set_broadcast_rate(self, rate_mbps: Optional[float]) -> None:
        """Pin (or unpin) the broadcast-portion PHY rate of this node's MAC."""
        if rate_mbps is None:
            self.mac.config.broadcast_rate = None
        else:
            self.mac.config.broadcast_rate = self.profile.rate_table.by_mbps(rate_mbps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.index} ip={self.ip} mac={self.mac_address}>"
