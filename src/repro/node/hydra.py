"""The Hydra node profile.

Table 1 of the paper and the experimental setup of Section 5 fix the
prototype's operating point: 1 MHz of bandwidth in the 2.4 GHz band, 7.7 mW
transmit power giving ~25 dB SNR at the 2.5 m node spacing, SISO data rates
of 0.65–6.5 Mbps (the experiments use the lowest four), cyclic-delay-diversity
MIMO (a single spatial stream), DCF with RTS/CTS, and a maximum aggregation
size of 5 KB chosen from the Figure 7 sweep.  :class:`HydraProfile` bundles
those defaults so topology builders and experiments can instantiate nodes
with one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.mac.timing import HYDRA_MAC_TIMING, MacTimingProfile
from repro.phy.device import PhyConfig
from repro.phy.error_model import ErrorModelConfig
from repro.phy.rates import PhyRate, RateTable, hydra_rate_table
from repro.phy.timing import PhyTimingConfig


@dataclass
class HydraProfile:
    """Default PHY/MAC parameters of one Hydra node."""

    #: PHY rate table (SISO; the cyclic-delay-diversity mode used in the
    #: paper's experiments carries a single spatial stream).
    rate_table: RateTable = field(default_factory=hydra_rate_table)
    phy_timing: PhyTimingConfig = field(default_factory=PhyTimingConfig)
    error_model: ErrorModelConfig = field(default_factory=ErrorModelConfig)
    mac_timing: MacTimingProfile = field(default_factory=lambda: HYDRA_MAC_TIMING)
    #: 7.7 mW transmit power (Section 5).
    tx_power_dbm: float = 8.9
    use_rts_cts: bool = True
    queue_capacity: int = 50
    #: Default unicast data rate (Mbps); experiments sweep this.
    unicast_rate_mbps: float = 0.65
    #: Default broadcast-portion rate; ``None`` = same as unicast.
    broadcast_rate_mbps: Optional[float] = None

    def phy_config(self) -> PhyConfig:
        """Build the :class:`~repro.phy.device.PhyConfig` for this profile."""
        return PhyConfig(timing=self.phy_timing, error=self.error_model,
                         tx_power_dbm=self.tx_power_dbm)

    def unicast_rate(self) -> PhyRate:
        """Resolve the default unicast rate to a :class:`PhyRate`."""
        return self.rate_table.by_mbps(self.unicast_rate_mbps)

    def broadcast_rate(self) -> Optional[PhyRate]:
        """Resolve the broadcast rate (None = follow the unicast rate)."""
        if self.broadcast_rate_mbps is None:
            return None
        return self.rate_table.by_mbps(self.broadcast_rate_mbps)

    def with_rates(self, unicast_rate_mbps: float,
                   broadcast_rate_mbps: Optional[float] = None) -> "HydraProfile":
        """Copy of the profile with different data rates."""
        return replace(self, unicast_rate_mbps=unicast_rate_mbps,
                       broadcast_rate_mbps=broadcast_rate_mbps)


def default_hydra_profile() -> HydraProfile:
    """The stock Hydra profile used throughout the paper's evaluation."""
    return HydraProfile()


def default_dsdv_config():
    """The DSDV parameters a ``routing="dsdv"`` node uses unless overridden.

    The :class:`~repro.net.dynamic_routing.DsdvConfig` defaults suit Hydra's
    sub-megabit rates: at 0.65 Mbps a HELLO beacon occupies well under a
    millisecond of air, so one beacon per second and a full-dump
    advertisement every three seconds keep control overhead in the low
    percent range while bounding neighbor-loss detection at ~3.5 s (the
    HELLO hold time) — commensurate with the seconds-scale outages the
    mobile scenarios produce.  (Imported lazily: the network layer depends
    on this module's profile, not the other way around.)
    """
    from repro.net.dynamic_routing import DsdvConfig

    return DsdvConfig()


def default_aodv_config():
    """The AODV parameters a ``routing="aodv"`` node uses unless overridden.

    The :class:`~repro.net.on_demand.AodvConfig` defaults match the DSDV
    operating point: the same 1 s HELLO beacons bound link-break detection at
    ~3.5 s, while discovery timing suits Hydra's sub-megabit rates — at
    0.65 Mbps a RREQ crosses a hop in well under ``ring_timeout_per_ttl``
    even under contention, so an expanding-ring round trip comfortably fits
    its timeout.  (Imported lazily: the network layer depends on this
    module's profile, not the other way around.)
    """
    from repro.net.on_demand import AodvConfig

    return AodvConfig()
