"""Node assembly: the full Hydra protocol stack wired together."""

from repro.node.hydra import HydraProfile, default_hydra_profile
from repro.node.node import Node

__all__ = ["Node", "HydraProfile", "default_hydra_profile"]
