"""Auto-discovery registry of the paper's experiment runners.

Every module in :mod:`repro.experiments` that exposes both a ``run(...)``
callable and an ``EXPERIMENT_ID`` string is registered under that id
(``fig07`` … ``table08``).  The registry records each runner's parameter
schema (name, default, annotation) introspected from the ``run`` signature,
plus the module's ``FAST_PARAMS`` — a reduced sweep that keeps campaign runs
and CI smoke tests fast.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import pkgutil
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import repro.experiments
from repro.errors import ExperimentError


def module_source_digest(module: Any) -> str:
    """Digest of a module's source code, used to version cache entries.

    Editing a runner module changes this digest, which changes every cache
    key derived from it — so stale results can never be served across code
    changes.  The module *file* is read directly (not ``inspect.getsource``)
    because the latter serves stale text from ``linecache`` after an edit.
    """
    source_file = getattr(module, "__file__", None)
    try:
        with open(source_file, "rb") as handle:
            source = handle.read()
    except (OSError, TypeError):
        try:
            source = inspect.getsource(module).encode("utf-8")
        except (OSError, TypeError):
            return ""
    return hashlib.sha256(source).hexdigest()[:16]


@dataclass(frozen=True)
class ParameterSpec:
    """One keyword parameter of an experiment's ``run`` function."""

    name: str
    default: Any
    annotation: str


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: its id, runner and parameter schema."""

    experiment_id: str
    module_name: str
    description: str
    run: Callable[..., Any]
    parameters: Tuple[ParameterSpec, ...]
    fast_params: Mapping[str, Any]
    #: Digest of the runner module's source; folded into cache keys so
    #: editing a runner invalidates its cached results.
    source_digest: str = ""

    @property
    def parameter_names(self) -> Tuple[str, ...]:
        """Names of all declared parameters (including ``seed``)."""
        return tuple(p.name for p in self.parameters)

    def resolve_params(self, overrides: Optional[Mapping[str, Any]] = None,
                       fast: bool = True) -> Dict[str, Any]:
        """Materialize the full parameter dict for one run.

        Layering: signature defaults, then ``FAST_PARAMS`` (unless
        ``fast=False``), then ``overrides``.  ``seed`` is excluded — the
        campaign runner supplies it per job — and unknown override names
        raise so typos do not silently run the default sweep.
        """
        params = {p.name: p.default for p in self.parameters}
        if fast:
            params.update(self.fast_params)
        if overrides:
            if "seed" in overrides:
                raise ExperimentError(
                    "'seed' cannot be overridden; the campaign runner supplies "
                    "one seed per job (use --seeds / --base-seed)")
            unknown = sorted(set(overrides) - set(self.parameter_names))
            if unknown:
                raise ExperimentError(
                    f"unknown parameter(s) {unknown} for {self.experiment_id}; "
                    f"valid: {sorted(self.parameter_names)}")
            params.update(overrides)
        params.pop("seed", None)
        return params


class ExperimentRegistry:
    """Mapping of experiment id → :class:`ExperimentSpec`."""

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> None:
        """Add a spec (duplicate ids are a configuration error)."""
        if spec.experiment_id in self._specs:
            raise ExperimentError(f"duplicate experiment id {spec.experiment_id!r}")
        self._specs[spec.experiment_id] = spec

    def get(self, experiment_id: str) -> ExperimentSpec:
        """Look up a spec by id."""
        try:
            return self._specs[experiment_id]
        except KeyError:
            raise ExperimentError(
                f"unknown experiment {experiment_id!r}; known: {self.experiment_ids()}"
            ) from None

    def experiment_ids(self) -> Tuple[str, ...]:
        """All registered ids, sorted."""
        return tuple(sorted(self._specs))

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in self._specs


def _spec_from_module(module: Any) -> ExperimentSpec:
    """Build a spec from a hooked experiment module."""
    run = module.run
    parameters = tuple(
        ParameterSpec(
            name=param.name,
            default=param.default,
            annotation="" if param.annotation is inspect.Parameter.empty
            else str(param.annotation),
        )
        for param in inspect.signature(run).parameters.values()
        if param.default is not inspect.Parameter.empty
    )
    doc = inspect.getdoc(module) or ""
    fast_params = dict(getattr(module, "FAST_PARAMS", {}))
    parameter_names = {p.name for p in parameters}
    bogus = sorted(set(fast_params) - parameter_names)
    if bogus:
        # Catch FAST_PARAMS typos at discovery instead of as opaque
        # TypeErrors inside pool workers.
        raise ExperimentError(
            f"{module.__name__}: FAST_PARAMS name(s) {bogus} do not match "
            f"run() parameters {sorted(parameter_names)}")
    return ExperimentSpec(
        experiment_id=module.EXPERIMENT_ID,
        module_name=module.__name__,
        description=doc.splitlines()[0] if doc else "",
        run=run,
        parameters=parameters,
        fast_params=fast_params,
        source_digest=module_source_digest(module),
    )


def discover() -> ExperimentRegistry:
    """Import every ``repro.experiments`` module and register the hooked ones."""
    registry = ExperimentRegistry()
    for info in pkgutil.iter_modules(repro.experiments.__path__):
        module = importlib.import_module(f"repro.experiments.{info.name}")
        if hasattr(module, "run") and hasattr(module, "EXPERIMENT_ID"):
            registry.register(_spec_from_module(module))
    return registry


_registry: Optional[ExperimentRegistry] = None


def get_registry() -> ExperimentRegistry:
    """The process-wide registry, discovered on first use."""
    global _registry
    if _registry is None:
        _registry = discover()
    return _registry
