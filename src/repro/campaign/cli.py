"""Command-line interface: ``python -m repro.campaign {list,run,run-all,report}``."""

from __future__ import annotations

import argparse
import ast
import fnmatch
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.registry import get_registry
from repro.campaign.runner import CampaignOutcome, CampaignRunner
from repro.errors import ReproError
from repro.obs.progress import ProgressReporter
from repro.stats.svg import write_svg

DEFAULT_CACHE_DIR = ".campaign-cache"


def _parse_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    """Parse repeated ``--set name=value`` flags; values are Python literals."""
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        name, separator, raw = pair.partition("=")
        if not separator or not name:
            raise SystemExit(f"--set expects name=value, got {pair!r}")
        try:
            overrides[name] = ast.literal_eval(raw)
        except (SyntaxError, ValueError):
            overrides[name] = raw  # bare strings are fine unquoted
    return overrides


def _build_runner(args: argparse.Namespace) -> CampaignRunner:
    """Runner configured from the shared run/run-all flags.

    Progress streams through a :class:`ProgressReporter` observer: one line
    per job start/finish with a running counter, per-job events/s from the
    worker's telemetry, and an ETA once a job has completed.
    """
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    reporter = ProgressReporter(
        emit=lambda line: print(f"  {line}", flush=True), workers=args.jobs)
    return CampaignRunner(
        jobs=args.jobs, cache=cache,
        timeout=args.timeout if args.timeout > 0 else None,
        observer=reporter)


def _seed_list(args: argparse.Namespace) -> List[int]:
    return [args.base_seed + offset for offset in range(args.seeds)]


def _write_results(path: str, payload: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        # No sort_keys: series/table ordering follows the paper's layout.
        json.dump(payload, handle, indent=1, default=repr)


def _cmd_list(_: argparse.Namespace) -> int:
    registry = get_registry()
    for experiment_id in registry.experiment_ids():
        spec = registry.get(experiment_id)
        print(f"{experiment_id:12} {spec.description}")
        defaults = ", ".join(f"{p.name}={p.default!r}" for p in spec.parameters)
        print(f"{'':12}   module: {spec.module_name}")
        print(f"{'':12}   params: {defaults}")
        if spec.fast_params:
            fast = ", ".join(f"{k}={v!r}" for k, v in spec.fast_params.items())
            print(f"{'':12}   fast:   {fast}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    runner = _build_runner(args)
    seeds = _seed_list(args)
    print(f"campaign {args.experiment_id}: {len(seeds)} seed(s) x jobs={args.jobs} "
          f"({'full' if args.full else 'fast'} parameters)")
    outcome = runner.run_campaign(
        args.experiment_id, seeds,
        overrides=_parse_overrides(args.set or []), fast=not args.full)

    print()
    print(outcome.aggregate.to_text())
    print()
    print(runner.observer.summary_line())
    if runner.cache is not None:
        print(runner.cache.stats_line)
    out_path = args.out or f"campaign_{args.experiment_id}.json"
    _write_results(out_path, outcome.to_dict())
    print(f"results written to {out_path}")
    failed = [o for o in outcome.outcomes if not o.ok]
    for job_outcome in failed:
        print(f"FAILED {job_outcome.job.describe()}: {job_outcome.status}", file=sys.stderr)
    return 1 if failed else 0


def _select_experiments(patterns: Optional[Sequence[str]],
                        experiment_ids: Sequence[str]) -> List[str]:
    """Filter registry ids by shell-style globs (``--experiments 'mob*'``).

    Patterns may be repeated and/or comma-separated; a pattern matching no
    experiment is an error so typos do not silently run nothing.
    """
    if not patterns:
        return list(experiment_ids)
    selected: List[str] = []
    for raw in patterns:
        for pattern in filter(None, (p.strip() for p in raw.split(","))):
            matches = fnmatch.filter(experiment_ids, pattern)
            if not matches:
                raise SystemExit(
                    f"--experiments pattern {pattern!r} matches no experiment; "
                    f"known: {', '.join(experiment_ids)}")
            selected.extend(m for m in matches if m not in selected)
    return selected


def _cmd_run_all(args: argparse.Namespace) -> int:
    """Sweep registered experiments (FAST_PARAMS by default, optionally globbed)."""
    registry = get_registry()
    runner = _build_runner(args)
    seeds = _seed_list(args)
    experiment_ids = _select_experiments(args.experiments, registry.experiment_ids())
    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
    print(f"run-all: {len(experiment_ids)} experiment(s) x {len(seeds)} seed(s), "
          f"jobs={args.jobs} ({'full' if args.full else 'fast'} parameters)")

    failures: List[str] = []
    for experiment_id in experiment_ids:
        print(f"[{experiment_id}]", flush=True)
        try:
            outcome = runner.run_campaign(experiment_id, seeds, fast=not args.full)
        except ReproError as error:
            print(f"  FAILED: {error}", file=sys.stderr)
            failures.append(experiment_id)
            continue
        if any(not o.ok for o in outcome.outcomes):
            failures.append(experiment_id)
        if args.out_dir:
            _write_results(os.path.join(args.out_dir, f"campaign_{experiment_id}.json"),
                           outcome.to_dict())
    print(runner.observer.summary_line())
    if runner.cache is not None:
        print(runner.cache.stats_line)
    if failures:
        print(f"run-all: {len(failures)} experiment(s) with failed jobs: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"run-all: all {len(experiment_ids)} experiments completed")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        with open(args.results_file, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        outcome = CampaignOutcome.from_dict(payload)
    except (OSError, ValueError, KeyError, TypeError, AttributeError) as error:
        print(f"error: cannot read results file {args.results_file!r}: {error!r}",
              file=sys.stderr)
        return 2
    if args.svg:
        write_svg(outcome.aggregate, args.svg)
        print(f"SVG written to {args.svg}")
    print(f"campaign {outcome.experiment_id} over seeds {outcome.seeds}")
    print(f"params: {outcome.params}")
    missing = [seed for seed in outcome.seeds if seed not in outcome.replicas]
    if missing:
        failed = payload.get("job_stats", {}).get("failed", len(missing))
        print(f"WARNING: {failed} job(s) failed — no replica for seed(s) {missing}; "
              f"the aggregate covers only {len(outcome.replicas)} seed(s)")
    print()
    print(outcome.aggregate.to_text())
    if args.replicas:
        for seed in outcome.seeds:
            if seed in outcome.replicas:
                print()
                print(f"--- replica seed={seed} ---")
                print(outcome.replicas[seed].to_text())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.campaign`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run paper experiments in parallel over replicated seeds.")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="show registered experiments and their parameters")

    run_parser = commands.add_parser("run", help="run one experiment over N seeds")
    run_parser.add_argument("experiment_id", help="registry id, e.g. fig09 or table02")
    run_parser.add_argument("--seeds", type=int, default=3,
                            help="number of replicated seeds (default 3)")
    run_parser.add_argument("--base-seed", type=int, default=1,
                            help="first seed; replicas use base, base+1, ... (default 1)")
    run_parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes; >1 uses a process pool (default 1)")
    run_parser.add_argument("--timeout", type=float, default=600.0,
                            help="per-job timeout in seconds (default 600; "
                                 "0 disables the timeout and lets --jobs 1 "
                                 "run without a process pool)")
    run_parser.add_argument("--full", action="store_true",
                            help="use the paper's full parameters instead of FAST_PARAMS")
    run_parser.add_argument("--set", action="append", metavar="NAME=VALUE",
                            help="override one run() parameter (repeatable)")
    run_parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                            help=f"result cache directory (default {DEFAULT_CACHE_DIR})")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="bypass the result cache entirely")
    run_parser.add_argument("--out", default=None,
                            help="results JSON path (default campaign_<id>.json)")

    run_all_parser = commands.add_parser(
        "run-all",
        help="sweep every registered experiment (reduced FAST_PARAMS by default)")
    run_all_parser.add_argument("--seeds", type=int, default=1,
                                help="replicated seeds per experiment (default 1, "
                                     "sized for CI smoke runs)")
    run_all_parser.add_argument("--base-seed", type=int, default=1,
                                help="first seed; replicas use base, base+1, ... (default 1)")
    run_all_parser.add_argument("--jobs", type=int, default=1,
                                help="worker processes; >1 uses a process pool (default 1)")
    run_all_parser.add_argument("--timeout", type=float, default=600.0,
                                help="per-job timeout in seconds (default 600; 0 disables)")
    run_all_parser.add_argument("--full", action="store_true",
                                help="use the paper's full parameters instead of FAST_PARAMS")
    run_all_parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                                help=f"result cache directory (default {DEFAULT_CACHE_DIR})")
    run_all_parser.add_argument("--no-cache", action="store_true",
                                help="bypass the result cache entirely")
    run_all_parser.add_argument("--out-dir", default=None,
                                help="write campaign_<id>.json per experiment here")
    run_all_parser.add_argument("--experiments", action="append", metavar="GLOB",
                                help="only run experiments matching this "
                                     "shell-style glob, e.g. 'mob*' or "
                                     "'fig*,table*' (repeatable)")

    report_parser = commands.add_parser("report", help="pretty-print a results JSON file")
    report_parser.add_argument("results_file")
    report_parser.add_argument("--replicas", action="store_true",
                               help="also print every per-seed replica")
    report_parser.add_argument("--svg", default=None, metavar="PATH",
                               help="also render the aggregate (series + 95%% CI "
                                    "error bars) as a standalone SVG plot")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run, "run-all": _cmd_run_all,
                "report": _cmd_report}
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
