"""Parallel experiment-campaign engine with seed replication and caching.

The seed repo reproduces each paper figure/table as a one-shot, single-seed,
single-process run.  This package turns those runners into a campaign system:

* :mod:`repro.campaign.registry` auto-registers every hooked module in
  :mod:`repro.experiments` under its paper id (``fig07`` … ``table08``) with a
  parameter schema introspected from its ``run()`` signature,
* :mod:`repro.campaign.runner` executes (experiment × seed × params) jobs over
  a process pool with per-job timeouts, progress reporting and intra-batch
  dedup (identical jobs submitted twice execute once),
* :mod:`repro.campaign.cache` makes re-runs incremental via an on-disk JSON
  cache keyed by (experiment id, params, seed, code version) — the code
  version is the runner module's source digest, so editing a runner
  invalidates its cached results automatically,
* :mod:`repro.stats.aggregate` condenses the per-seed replicas into per-point
  mean ± 95% confidence intervals.

Walkthrough
-----------

List what can be run, then replicate Figure 9 over five seeds on four worker
processes (the default parameter set is each module's reduced ``FAST_PARAMS``;
pass ``--full`` for the paper-scale sweep)::

    $ python -m repro.campaign list
    $ python -m repro.campaign run fig09 --seeds 5 --jobs 4

or sweep every registered experiment (the mobile/routing experiments
``mob01`` … ``mob04``, ``rt01`` and ``rt02`` included) at smoke scale —
optionally filtered by shell-style globs so CI can smoke the mobile+routing
scenarios separately from the paper figures::

    $ python -m repro.campaign run-all --seeds 1 --jobs 4
    $ python -m repro.campaign run-all --seeds 1 --jobs 4 --experiments 'mob*,rt*'

(``rt02`` is the DSDV-vs-AODV-vs-static overhead-scaling comparison; see the
README for how to read its ``routing_overhead_fraction`` series.)

The run prints the aggregated figure (mean y-values; 95% CI half-widths are
stored in each series' ``y_errors``) and writes ``campaign_fig09.json`` with
the aggregate plus every per-seed replica.  Because each completed job is
cached under ``.campaign-cache/``, re-running the same command is served
entirely from cache, and raising ``--seeds`` only executes the new seeds.
Inspect a results file later — or render it as a standalone SVG plot with
95%-CI error bars (hand-rolled writer, no matplotlib) — with::

    $ python -m repro.campaign report campaign_fig09.json --replicas
    $ python -m repro.campaign report campaign_fig09.json --svg fig09.svg

Programmatic use mirrors the CLI::

    from repro.campaign import CampaignRunner, ResultCache

    runner = CampaignRunner(jobs=4, cache=ResultCache(".campaign-cache"))
    outcome = runner.run_campaign("fig09", seeds=[1, 2, 3, 4, 5])
    outcome.aggregate.get_series("aggregation 0.65 Mbps").y_errors  # 95% CIs
"""

from repro.campaign.cache import ResultCache, job_key
from repro.campaign.registry import (
    ExperimentRegistry,
    ExperimentSpec,
    ParameterSpec,
    discover,
    get_registry,
    module_source_digest,
)
from repro.campaign.runner import (
    CampaignJob,
    CampaignOutcome,
    CampaignRunner,
    JobOutcome,
    execute_job,
)

__all__ = [
    "CampaignJob",
    "CampaignOutcome",
    "CampaignRunner",
    "ExperimentRegistry",
    "ExperimentSpec",
    "JobOutcome",
    "ParameterSpec",
    "ResultCache",
    "discover",
    "execute_job",
    "get_registry",
    "job_key",
    "module_source_digest",
]
