"""Parallel (experiment × seed × params) campaign execution.

Jobs fan out over a :class:`concurrent.futures.ProcessPoolExecutor` (or run
inline when ``jobs=1``), consult the :class:`~repro.campaign.cache.ResultCache`
before executing, and report progress through a callback.  Workers return the
``to_dict()`` form of :class:`~repro.stats.results.ExperimentResult` so only
plain JSON-compatible data crosses the process boundary.
"""

from __future__ import annotations

import concurrent.futures
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.cache import ResultCache, job_key
from repro.campaign.registry import get_registry
from repro.errors import ExperimentError
from repro.sim.telemetry import TELEMETRY
from repro.stats.aggregate import aggregate_experiment_results
from repro.stats.results import ExperimentResult


@dataclass(frozen=True)
class CampaignJob:
    """One unit of work: an experiment at fixed parameters with one seed.

    ``code_version`` (the runner module's source digest) versions the job's
    cache entries; :meth:`CampaignRunner.run_campaign` fills it in from the
    registry spec.
    """

    experiment_id: str
    params: Mapping[str, Any]
    seed: int
    code_version: str = ""

    def key(self) -> str:
        """Cache/dedup key for this job's coordinates."""
        return job_key(self.experiment_id, self.params, self.seed, self.code_version)

    def describe(self) -> str:
        """Short human-readable job label."""
        return f"{self.experiment_id}[seed={self.seed}]"


@dataclass
class JobOutcome:
    """What happened to one job: where the result came from, or why it failed."""

    job: CampaignJob
    status: str  #: ``"ran"`` | ``"cached"`` | ``"deduped"`` | ``"error"`` | ``"timeout"``
    result: Optional[ExperimentResult] = None
    error: str = ""
    elapsed: float = 0.0
    #: Simulator telemetry measured inside the executing process (zero for
    #: cached/deduped/failed jobs): events processed and simulated seconds
    #: covered.  Progress reporting derives per-job events/s from these.
    events: int = 0
    sim_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the job produced a result."""
        return self.result is not None


@dataclass
class CampaignOutcome:
    """A completed campaign: the aggregate plus every per-seed replica."""

    experiment_id: str
    params: Dict[str, Any]
    seeds: List[int]
    aggregate: ExperimentResult
    replicas: Dict[int, ExperimentResult]
    outcomes: List[JobOutcome] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible payload written by ``repro.campaign run --out``."""
        return {
            "experiment_id": self.experiment_id,
            "params": dict(self.params),
            "seeds": list(self.seeds),
            "aggregate": self.aggregate.to_dict(),
            "replicas": {str(seed): result.to_dict()
                         for seed, result in self.replicas.items()},
            "job_stats": {
                "ran": sum(1 for o in self.outcomes if o.status == "ran"),
                "cached": sum(1 for o in self.outcomes if o.status == "cached"),
                "deduped": sum(1 for o in self.outcomes if o.status == "deduped"),
                "failed": sum(1 for o in self.outcomes if not o.ok),
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignOutcome":
        """Rebuild a campaign outcome from :meth:`to_dict` output."""
        return cls(
            experiment_id=str(data["experiment_id"]),
            params=dict(data.get("params", {})),
            seeds=[int(s) for s in data.get("seeds", [])],
            aggregate=ExperimentResult.from_dict(data["aggregate"]),
            replicas={int(seed): ExperimentResult.from_dict(result)
                      for seed, result in data.get("replicas", {}).items()},
        )


def execute_job(experiment_id: str, params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Run one job in the current process (the pool's worker entry point)."""
    spec = get_registry().get(experiment_id)
    result = spec.run(seed=seed, **dict(params))
    return result.to_dict()


def _timed_execute_job(experiment_id: str, params: Mapping[str, Any],
                       seed: int) -> Tuple[float, Dict[str, Any],
                                           Tuple[int, float, int]]:
    """Worker wrapper measuring wall time and telemetry inside the process.

    Returns ``(elapsed, result_dict, (events, sim_seconds, runs))``.  The
    telemetry delta is measured against the *worker's* process-wide
    accumulator, which dies with the worker — returning it is the only way
    the parent can credit pool jobs to its own totals.
    """
    started = time.monotonic()
    events0, sim0, runs0 = TELEMETRY.snapshot()
    result_dict = execute_job(experiment_id, params, seed)
    events1, sim1, runs1 = TELEMETRY.snapshot()
    return (time.monotonic() - started, result_dict,
            (events1 - events0, sim1 - sim0, runs1 - runs0))


ProgressCallback = Callable[[str], None]


class CampaignRunner:
    """Executes batches of :class:`CampaignJob` with caching and parallelism.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` runs everything inline (no pool).
    cache:
        Optional :class:`ResultCache`; when set, completed jobs are stored and
        later batches are served incrementally.
    timeout:
        Per-job wall-clock budget in seconds once its result is awaited.
        Setting it routes execution through the pool even when ``jobs=1``
        (a job cannot time itself out), and a timed-out batch terminates
        its remaining workers instead of joining them.
    progress:
        Callback invoked with one line per finished job.
    observer:
        Object with any of ``batch_started(batch)``, ``job_started(job)``,
        ``job_finished(outcome)`` — invoked from the coordinating process as
        jobs are submitted and complete (see
        :class:`~repro.obs.progress.ProgressReporter`).  Missing methods are
        skipped; the legacy string ``progress`` callback still fires.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 timeout: Optional[float] = None,
                 progress: Optional[ProgressCallback] = None,
                 observer: Optional[Any] = None) -> None:
        if jobs < 1:
            raise ExperimentError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.progress = progress or (lambda message: None)
        self.observer = observer

    def _notify(self, method: str, *args: Any) -> None:
        if self.observer is not None:
            callback = getattr(self.observer, method, None)
            if callback is not None:
                callback(*args)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run_jobs(self, batch: Sequence[CampaignJob]) -> List[JobOutcome]:
        """Run a batch, serving cached jobs first and fanning the rest out.

        Identical (experiment, params, seed, code) jobs inside one batch are
        deduplicated: the first occurrence executes, duplicates share its
        outcome with status ``"deduped"`` — duplicate submissions cost one
        execution, not N.
        """
        self._notify("batch_started", batch)
        outcomes: Dict[int, JobOutcome] = {}
        pending: List[int] = []
        primary_for_key: Dict[str, int] = {}
        duplicate_of: Dict[int, int] = {}
        for index, job in enumerate(batch):
            key = job.key()
            if key in primary_for_key:
                duplicate_of[index] = primary_for_key[key]
                continue
            primary_for_key[key] = index
            cached = None
            if self.cache is not None:
                cached = self.cache.get(job.experiment_id, job.params, job.seed,
                                        job.code_version)
            if cached is not None:
                outcomes[index] = JobOutcome(
                    job=job, status="cached",
                    result=ExperimentResult.from_dict(cached))
                self.progress(f"{job.describe()}: cached")
                self._notify("job_finished", outcomes[index])
            else:
                pending.append(index)

        if pending:
            # Per-job timeouts can only be enforced from outside the job, so
            # a timed run always goes through the pool, even with one worker.
            if self.jobs > 1 or self.timeout is not None:
                self._run_pool(batch, pending, outcomes)
            else:
                self._run_inline(batch, pending, outcomes)

        for index, primary_index in duplicate_of.items():
            primary = outcomes[primary_index]
            outcomes[index] = JobOutcome(
                job=batch[index], status="deduped",
                result=primary.result, error=primary.error)
            self.progress(f"{batch[index].describe()}: deduped "
                          f"(same coordinates as job #{primary_index})")
            self._notify("job_finished", outcomes[index])
        return [outcomes[index] for index in range(len(batch))]

    def _finish(self, index: int, job: CampaignJob, result_dict: Dict[str, Any],
                elapsed: float, outcomes: Dict[int, JobOutcome],
                telemetry: Tuple[int, float, int] = (0, 0.0, 0)) -> None:
        if self.cache is not None:
            self.cache.put(job.experiment_id, job.params, job.seed, result_dict,
                           job.code_version)
        outcomes[index] = JobOutcome(
            job=job, status="ran",
            result=ExperimentResult.from_dict(result_dict), elapsed=elapsed,
            events=telemetry[0], sim_seconds=telemetry[1])
        self.progress(f"{job.describe()}: done in {elapsed:.2f}s")
        self._notify("job_finished", outcomes[index])

    def _fail(self, index: int, job: CampaignJob, status: str, error: str,
              outcomes: Dict[int, JobOutcome]) -> None:
        outcomes[index] = JobOutcome(job=job, status=status, error=error)
        self.progress(f"{job.describe()}: {status} ({error.splitlines()[-1] if error else status})")
        self._notify("job_finished", outcomes[index])

    def _run_inline(self, batch: Sequence[CampaignJob], pending: Sequence[int],
                    outcomes: Dict[int, JobOutcome]) -> None:
        for index in pending:
            job = batch[index]
            self._notify("job_started", job)
            started = time.monotonic()
            # Inline jobs already land in this process's TELEMETRY; the delta
            # is measured for the outcome only, never re-recorded.
            events0, sim0, _ = TELEMETRY.snapshot()
            try:
                result_dict = execute_job(job.experiment_id, job.params, job.seed)
            except Exception:  # noqa: BLE001 - report, don't crash the batch
                self._fail(index, job, "error", traceback.format_exc(), outcomes)
            else:
                events1, sim1, _ = TELEMETRY.snapshot()
                self._finish(index, job, result_dict, time.monotonic() - started,
                             outcomes, (events1 - events0, sim1 - sim0, 0))

    def _run_pool(self, batch: Sequence[CampaignJob], pending: Sequence[int],
                  outcomes: Dict[int, JobOutcome]) -> None:
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.jobs)
        timed_out = False
        try:
            futures = {}
            for index in pending:
                futures[index] = pool.submit(
                    _timed_execute_job, batch[index].experiment_id,
                    batch[index].params, batch[index].seed)
                self._notify("job_started", batch[index])
            for index, future in futures.items():
                job = batch[index]
                if timed_out and not future.done():
                    # The batch is being aborted (all workers get terminated
                    # below); waiting another full timeout per remaining job
                    # would stall the campaign for N x timeout.
                    future.cancel()
                    self._fail(index, job, "timeout",
                               "batch aborted after an earlier job timeout", outcomes)
                    continue
                try:
                    elapsed, result_dict, telemetry = future.result(timeout=self.timeout)
                except concurrent.futures.TimeoutError:
                    # On Python 3.11+ this aliases builtin TimeoutError, so a
                    # job *raising* TimeoutError lands here too; a completed
                    # future means the exception came from the job itself.
                    if future.done():
                        self._fail(index, job, "error", traceback.format_exc(), outcomes)
                    else:
                        future.cancel()
                        timed_out = True
                        self._fail(index, job, "timeout",
                                   f"no result within {self.timeout}s", outcomes)
                except Exception:  # noqa: BLE001 - report, don't crash the batch
                    self._fail(index, job, "error", traceback.format_exc(), outcomes)
                else:
                    # The worker's accumulator dies with the pool; credit its
                    # totals to the parent so campaign-wide telemetry is
                    # complete regardless of --jobs.
                    TELEMETRY.record_remote(*telemetry)
                    self._finish(index, job, result_dict, elapsed, outcomes,
                                 telemetry)
        finally:
            if timed_out:
                # future.cancel() cannot stop an already-running task, and a
                # plain shutdown would join the hung worker; kill it so the
                # campaign returns when the timeout says it should.
                for process in getattr(pool, "_processes", {}).values():
                    process.terminate()
            pool.shutdown(wait=not timed_out, cancel_futures=True)

    # ------------------------------------------------------------------
    # Seed-replicated campaigns
    # ------------------------------------------------------------------
    def run_campaign(self, experiment_id: str, seeds: Sequence[int],
                     overrides: Optional[Mapping[str, Any]] = None,
                     fast: bool = True) -> CampaignOutcome:
        """Replicate one experiment over ``seeds`` and aggregate mean ± 95% CI."""
        if not seeds:
            raise ExperimentError("need at least one seed")
        spec = get_registry().get(experiment_id)
        params = spec.resolve_params(overrides, fast=fast)
        batch = [CampaignJob(experiment_id=experiment_id, params=params, seed=seed,
                             code_version=spec.source_digest)
                 for seed in seeds]
        outcomes = self.run_jobs(batch)
        replicas = {outcome.job.seed: outcome.result
                    for outcome in outcomes if outcome.ok}
        if not replicas:
            failures = "; ".join(f"{o.job.describe()}: {o.status}" for o in outcomes)
            raise ExperimentError(f"every job of {experiment_id} failed ({failures})")
        aggregate = aggregate_experiment_results(
            [replicas[seed] for seed in seeds if seed in replicas])
        return CampaignOutcome(
            experiment_id=experiment_id, params=params, seeds=list(seeds),
            aggregate=aggregate, replicas=replicas, outcomes=outcomes)
