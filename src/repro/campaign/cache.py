"""On-disk JSON result cache keyed by (experiment id, params, seed, code).

Each cache entry is one JSON file holding the serialized
:class:`~repro.stats.results.ExperimentResult` plus the job coordinates that
produced it, so a cache directory doubles as a browsable archive of raw
per-seed results.  Keys are SHA-256 digests of the canonical (sorted-keys)
JSON encoding of the coordinates, which makes re-runs incremental: only jobs
whose (experiment, params, seed) triple has never completed are executed.

The optional ``code_version`` coordinate (the runner module's source digest,
see :func:`repro.campaign.registry.module_source_digest`) versions entries
against the code that produced them: editing a runner changes its digest,
orphaning every cache entry it wrote, so stale results are never served
across code changes.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Mapping, Optional


def job_key(experiment_id: str, params: Mapping[str, Any], seed: int,
            code_version: str = "") -> str:
    """Deterministic digest of one job's coordinates.

    Tuples canonicalize to JSON lists, so ``(0.65,)`` and ``[0.65]`` produce
    the same key; anything non-JSON falls back to ``repr``.  A non-empty
    ``code_version`` becomes part of the coordinates.
    """
    coordinates: Dict[str, Any] = {
        "experiment_id": experiment_id, "params": dict(params), "seed": seed,
    }
    if code_version:
        coordinates["code_version"] = code_version
    canonical = json.dumps(coordinates, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of per-job result JSON files with hit/miss accounting."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        os.makedirs(root, exist_ok=True)

    def _path(self, experiment_id: str, seed: int, key: str) -> str:
        return os.path.join(self.root, f"{experiment_id}_seed{seed}_{key[:16]}.json")

    def get(self, experiment_id: str, params: Mapping[str, Any], seed: int,
            code_version: str = "") -> Optional[Dict[str, Any]]:
        """Cached ``ExperimentResult.to_dict()`` payload, or ``None`` on a miss.

        The file name carries only the first 16 hex characters of the job
        key, so two distinct jobs *can* collide on a path.  Before serving an
        entry, the stored coordinates are re-hashed and compared against the
        requested job's full key; a mismatch is a miss, never another job's
        result.  (Stored params went through a JSON round-trip — tuples came
        back as lists — but ``job_key`` canonicalises both spellings to the
        same digest, so legitimate hits still verify.)
        """
        key = job_key(experiment_id, params, seed, code_version)
        path = self._path(experiment_id, seed, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            result = entry["result"]
            stored_key = job_key(
                entry["experiment_id"], entry["params"], entry["seed"],
                entry.get("code_version", ""))
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        if stored_key != key:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, experiment_id: str, params: Mapping[str, Any], seed: int,
            result_dict: Dict[str, Any], code_version: str = "") -> str:
        """Store one job's result; returns the file path."""
        path = self._path(experiment_id, seed,
                          job_key(experiment_id, params, seed, code_version))
        entry = {
            "experiment_id": experiment_id,
            "seed": seed,
            "params": {k: v for k, v in params.items()},
            "code_version": code_version,
            "result": result_dict,
        }
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            # No sort_keys: series labels and table rows carry the paper's
            # ordering, which must survive a cache round-trip.
            json.dump(entry, handle, indent=1, default=repr)
        os.replace(tmp_path, path)
        return path

    @property
    def stats_line(self) -> str:
        """Human-readable hit/miss summary."""
        return f"cache: {self.hits} hit(s), {self.misses} miss(es) in {self.root}"
