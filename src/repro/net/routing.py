"""Static routing and packet forwarding.

The paper's testbed forces its 2-hop, 3-hop and star topologies with static
routes (Section 5) because every node is within radio range of every other
node.  The :class:`RoutingTable` is therefore a plain destination → next-hop
map and the :class:`ForwardingEngine` is the per-node network layer that
glues the MAC to the transport protocols: it delivers local traffic up,
forwards transit traffic to the next hop and hands broadcast (flooding)
traffic to the registered handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.errors import RoutingError
from repro.mac.addresses import BROADCAST_MAC, MacAddress
from repro.net.address import IpAddress
from repro.net.packet import Packet
from repro.obs.journey import node_of
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mac.dcf import AggregatingMac

#: Handler signature for packets delivered to the local node:
#: ``handler(packet, source_mac)``.
PacketHandler = Callable[[Packet, MacAddress], None]

#: Hook signature for packets that have no route: ``handler(packet) -> bool``.
#: Returning True means the packet was consumed (e.g. buffered while an
#: on-demand protocol discovers a route) instead of being dropped.
NoRouteHandler = Callable[[Packet], bool]

#: Observer signature for successfully routed unicast packets:
#: ``observer(packet, next_hop_ip)``.  On-demand routing uses this to refresh
#: active-route lifetimes from forwarded data.
ForwardObserver = Callable[[Packet, IpAddress], None]

#: The IP broadcast address used by flooding traffic.
BROADCAST_IP = IpAddress("255.255.255.255")


@dataclass(frozen=True)
class StaticRoute:
    """One entry of a static routing table."""

    destination: IpAddress
    next_hop: IpAddress

    def __str__(self) -> str:
        return f"{self.destination} via {self.next_hop}"


class RoutingTable:
    """Destination → next-hop map with an optional default route."""

    def __init__(self) -> None:
        self._routes: Dict[IpAddress, IpAddress] = {}
        self._default: Optional[IpAddress] = None

    def add_route(self, destination: IpAddress, next_hop: IpAddress) -> None:
        """Install (or replace) the route towards ``destination``."""
        self._routes[IpAddress(destination)] = IpAddress(next_hop)

    def set_default(self, next_hop: IpAddress) -> None:
        """Install a default route."""
        self._default = IpAddress(next_hop)

    def next_hop(self, destination: IpAddress) -> IpAddress:
        """Next hop towards ``destination`` (raises :class:`RoutingError` if none)."""
        if type(destination) is not IpAddress:
            destination = IpAddress(destination)
        found = self._routes.get(destination)
        if found is not None:
            return found
        if self._default is not None:
            return self._default
        raise RoutingError(f"no route to {destination}")

    def has_route(self, destination: IpAddress) -> bool:
        """True when a route (or default) exists for ``destination``."""
        return IpAddress(destination) in self._routes or self._default is not None

    @property
    def routes(self) -> Dict[IpAddress, IpAddress]:
        """Copy of the explicit routes."""
        return dict(self._routes)

    def __len__(self) -> int:
        return len(self._routes)


class NeighborTable:
    """IP → MAC address resolution (a static ARP table shared by a scenario)."""

    def __init__(self) -> None:
        self._entries: Dict[IpAddress, MacAddress] = {}

    def add(self, ip: IpAddress, mac: MacAddress) -> None:
        """Register a neighbour."""
        self._entries[IpAddress(ip)] = mac

    def resolve(self, ip: IpAddress) -> MacAddress:
        """MAC address of ``ip`` (raises :class:`RoutingError` when unknown)."""
        if type(ip) is not IpAddress:
            ip = IpAddress(ip)
        if ip == BROADCAST_IP:
            return BROADCAST_MAC
        found = self._entries.get(ip)
        if found is None:
            raise RoutingError(f"no link-layer address known for {ip}")
        return found

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class ForwardingStatistics:
    """Counters kept by one forwarding engine."""

    sent_local: int = 0
    forwarded: int = 0
    delivered_local: int = 0
    delivered_broadcast: int = 0
    no_route_drops: int = 0
    no_route_buffered: int = 0
    ttl_drops: int = 0
    unhandled_protocol_drops: int = 0


class ForwardingEngine:
    """The network layer of one node."""

    def __init__(self, sim: Simulator, mac: "AggregatingMac", address: IpAddress,
                 routing_table: Optional[RoutingTable] = None,
                 neighbors: Optional[NeighborTable] = None,
                 name: Optional[str] = None) -> None:
        self.sim = sim
        self.mac = mac
        self.address = IpAddress(address)
        self.routing_table = routing_table if routing_table is not None else RoutingTable()
        self.neighbors = neighbors if neighbors is not None else NeighborTable()
        self.name = name or f"net-{address}"
        self.stats = ForwardingStatistics()
        self._handlers: Dict[str, PacketHandler] = {}
        self._no_route_handler: Optional[NoRouteHandler] = None
        self._forward_observer: Optional[ForwardObserver] = None
        self._journey = sim.journey
        self._journey_node = node_of(self.name, "net")
        sim.metrics.register_collector(self._collect_metrics)
        mac.set_receive_callback(self._on_mac_receive)

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: forwarding counters as per-node gauges."""
        stats = self.stats
        for key in ("sent_local", "forwarded", "delivered_local",
                    "delivered_broadcast", "no_route_drops", "no_route_buffered",
                    "ttl_drops", "unhandled_protocol_drops"):
            registry.set_gauge(f"net.{key}", getattr(stats, key), node=self.name)

    # ------------------------------------------------------------------
    # Upper-layer registration
    # ------------------------------------------------------------------
    def register_handler(self, protocol: str, handler: PacketHandler) -> None:
        """Register the local handler for packets of ``protocol`` ('tcp', 'udp', 'flood', ...)."""
        self._handlers[protocol] = handler

    def set_no_route_handler(self, handler: Optional[NoRouteHandler]) -> None:
        """Install the hook consulted before a packet becomes a no-route drop.

        On-demand routing registers itself here: a packet the handler accepts
        (returns True for) is counted as buffered, not dropped, and the
        handler becomes responsible for re-injecting or discarding it.
        """
        self._no_route_handler = handler

    def set_forward_observer(self, observer: Optional[ForwardObserver]) -> None:
        """Install the observer notified of every successfully routed unicast."""
        self._forward_observer = observer

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Send a locally originated packet towards ``packet.ip.dst``."""
        self.stats.sent_local += 1
        journey = self._journey
        if journey.enabled:
            journey.begin(self.sim.now, self._journey_node, "net", packet,
                          event="origin")
        return self._route_and_enqueue(packet)

    def reinject(self, packet: Packet) -> bool:
        """Route a packet previously consumed by the no-route handler.

        Identical to :meth:`send` except the packet is not counted as locally
        originated again — it already was when it entered the stack.
        """
        journey = self._journey
        if journey.enabled:
            journey.record(self.sim.now, self._journey_node, "net", "reinject",
                           packet)
        return self._route_and_enqueue(packet)

    def _route_and_enqueue(self, packet: Packet) -> bool:
        destination = packet.ip.dst
        if destination == BROADCAST_IP:
            return self.mac.enqueue(packet, BROADCAST_MAC)
        if destination == self.address:
            # Loopback: deliver immediately without touching the MAC.
            self._deliver_local(packet, self.mac.address)
            return True
        try:
            next_hop_ip = self.routing_table.next_hop(destination)
            next_hop_mac = self.neighbors.resolve(next_hop_ip)
        except RoutingError:
            journey = self._journey
            if (self._no_route_handler is not None
                    and self._no_route_handler(packet)):
                self.stats.no_route_buffered += 1
                if journey.enabled:
                    journey.record(self.sim.now, self._journey_node, "net",
                                   "buffer", packet, reason="no_route")
                return True
            self.stats.no_route_drops += 1
            if journey.enabled:
                journey.record(self.sim.now, self._journey_node, "net",
                               "drop", packet, reason="no_route")
            return False
        if self._forward_observer is not None:
            self._forward_observer(packet, next_hop_ip)
        return self.mac.enqueue(packet, next_hop_mac)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _on_mac_receive(self, packet: Packet, source_mac: MacAddress) -> None:
        destination = packet.ip.dst
        journey = self._journey
        if destination == BROADCAST_IP:
            self.stats.delivered_broadcast += 1
            if journey.enabled:
                journey.record(self.sim.now, self._journey_node, "net",
                               "deliver_bcast", packet)
            self._dispatch(packet, source_mac)
            return
        if destination == self.address:
            self._deliver_local(packet, source_mac)
            return
        # Transit traffic: forward towards the destination.
        forwarded = packet.with_decremented_ttl()
        if forwarded.ip.ttl <= 0:
            self.stats.ttl_drops += 1
            if journey.enabled:
                journey.record(self.sim.now, self._journey_node, "net",
                               "drop", forwarded, reason="ttl")
            return
        self.stats.forwarded += 1
        if journey.enabled:
            journey.record(self.sim.now, self._journey_node, "net",
                           "forward", forwarded, ttl=forwarded.ip.ttl)
        self._route_and_enqueue(forwarded)

    def _deliver_local(self, packet: Packet, source_mac: MacAddress) -> None:
        self.stats.delivered_local += 1
        journey = self._journey
        if journey.enabled:
            journey.record(self.sim.now, self._journey_node, "net", "deliver",
                           packet)
        self._dispatch(packet, source_mac)

    def _dispatch(self, packet: Packet, source_mac: MacAddress) -> None:
        protocol = packet.ip.protocol
        handler = self._handlers.get(protocol)
        if handler is None:
            self.stats.unhandled_protocol_drops += 1
            journey = self._journey
            if journey.enabled:
                journey.record(self.sim.now, self._journey_node, "net",
                               "drop", packet, reason="unhandled_protocol")
            return
        handler(packet, source_mac)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ForwardingEngine {self.address} routes={len(self.routing_table)}>"
