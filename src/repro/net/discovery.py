"""HELLO-based neighbor discovery.

The paper's testbed never needs to discover anything: every node is placed
within radio range of every other node and routes are installed statically
(Section 5).  The mobility subsystem broke that assumption — nodes drift out
of range mid-run — so this module supplies the missing liveness primitive: a
:class:`NeighborDiscovery` instance per node broadcasts small, periodically
jittered HELLO beacons **through the real MAC**.  Beacons therefore contend
for the medium, ride inside aggregated frames under the UA/BA policies, and
are lost to collisions and fading exactly like data traffic; a neighbor whose
beacons stop arriving is *expired* after a hold time and a link-down event is
delivered to whoever registered for it (the DSDV control plane in
:mod:`repro.net.dynamic_routing`).

Design notes:

* HELLOs are ordinary broadcast :class:`~repro.net.packet.Packet` objects with
  IP protocol ``"hello"``; the :class:`~repro.net.routing.ForwardingEngine`
  dispatches them to the handler this class registers, so no special-casing
  exists anywhere in the forwarding path.
* Beacon jitter and all other randomness come from a dedicated per-node
  stream (``discovery.<name>``) derived from the simulator's root seed, so
  attaching discovery never perturbs any other component's random sequence
  and same-seed runs stay byte-identical.
* Expiry is event-driven: a single timer is always armed for the earliest
  possible expiry instant, so neighbor-down latency is bounded by the hold
  time itself, not by any polling granularity.
* Any received control packet can refresh liveness (:meth:`heard`): the DSDV
  router calls it for routing updates, matching the common optimisation where
  data-plane evidence of a link substitutes for a missed beacon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.mac.addresses import MacAddress
from repro.net.address import IpAddress
from repro.net.packet import IpHeader, Packet
from repro.net.routing import BROADCAST_IP
from repro.sim.simulator import Simulator
from repro.sim.timer import PeriodicTimer, Timer

#: IP protocol tag carried by HELLO beacons.
HELLO_PROTOCOL = "hello"


@dataclass(frozen=True)
class HelloConfig:
    """Static configuration of one node's neighbor discovery."""

    #: Nominal beacon interval in seconds.
    hello_interval: float = 1.0
    #: Each beacon period is multiplied by ``1 + uniform(-j, +j)`` so nodes
    #: with the same nominal interval never phase-lock their beacons.
    jitter_fraction: float = 0.1
    #: A neighbor is expired after this many nominal intervals of silence
    #: (3.5 tolerates two consecutive lost beacons plus jitter).
    hold_intervals: float = 3.5
    #: HELLO payload size in bytes (sender address + sequence + padding).
    payload_bytes: int = 20

    def __post_init__(self) -> None:
        if self.hello_interval <= 0:
            raise ConfigurationError("hello_interval must be positive")
        if not 0 <= self.jitter_fraction < 1:
            raise ConfigurationError("jitter_fraction must be in [0, 1)")
        if self.hold_intervals <= 1:
            raise ConfigurationError("hold_intervals must exceed one interval")
        if self.payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be non-negative")

    @property
    def hold_time(self) -> float:
        """Silence (seconds) after which a neighbor is declared down."""
        return self.hold_intervals * self.hello_interval


@dataclass
class NeighborEntry:
    """Liveness record for one discovered neighbor."""

    ip: IpAddress
    first_heard: float
    last_heard: float
    hellos_heard: int = 0


#: Callback signature for link events: ``callback(neighbor_ip)``.
NeighborCallback = Callable[[IpAddress], None]


def rejitter(timer: PeriodicTimer, base_period: float, rng,
             jitter_fraction: float) -> None:
    """Re-draw a periodic timer's next period around its nominal value.

    Shared by HELLO beaconing and DSDV advertisements so both protocols
    desynchronise identically: each period is ``base * (1 + uniform(-j, +j))``.
    """
    if jitter_fraction > 0:
        timer.period = base_period * (1.0 + rng.uniform(-jitter_fraction,
                                                        jitter_fraction))


class NeighborDiscovery:
    """Maintains the live neighbor set of one node via HELLO beacons."""

    def __init__(self, sim: Simulator, network, config: Optional[HelloConfig] = None,
                 name: Optional[str] = None) -> None:
        self.sim = sim
        self.network = network
        self.config = config or HelloConfig()
        self.address = IpAddress(network.address)
        self.name = name or f"hello-{self.address}"
        self._rng = sim.random.stream(f"discovery.{self.name}")
        self._entries: Dict[IpAddress, NeighborEntry] = {}
        self._up_callbacks: List[NeighborCallback] = []
        self._down_callbacks: List[NeighborCallback] = []
        self._stop_time: Optional[float] = None
        self._stopped = False
        self._beacon = PeriodicTimer(sim, self.config.hello_interval, self._emit,
                                     priority=Simulator.PRIORITY_NET,
                                     name=f"{self.name}.beacon")
        self._expiry = Timer(sim, self._expire, priority=Simulator.PRIORITY_NET,
                             name=f"{self.name}.expiry")
        # statistics
        self.hellos_sent = 0
        self.hellos_received = 0
        self.neighbor_up_events = 0
        self.neighbor_down_events = 0
        self._metrics = sim.metrics
        sim.metrics.register_collector(self._collect_metrics)
        network.register_handler(HELLO_PROTOCOL, self._on_hello)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, stop_time: Optional[float] = None) -> None:
        """Begin beaconing; the first HELLO is jittered to desynchronise nodes.

        ``stop_time`` bounds beaconing (and expiry sweeps) so runs whose
        traffic drains do not keep the event queue alive to the horizon.
        """
        self._stop_time = stop_time
        self._stopped = False
        self._beacon.start(self._rng.uniform(0.0, self.config.hello_interval))

    def stop(self) -> None:
        """Stop beaconing and liveness processing entirely.

        Also makes :meth:`heard` inert: a packet already in flight when the
        protocol stops must not re-arm the expiry timer, or link-down events
        would keep firing (and the event queue stay alive) up to a hold time
        past the stop.
        """
        self._stopped = True
        self._beacon.stop()
        self._expiry.cancel()

    @property
    def running(self) -> bool:
        """True while beacons are being emitted."""
        return self._beacon.running

    # ------------------------------------------------------------------
    # Event registration
    # ------------------------------------------------------------------
    def on_neighbor_up(self, callback: NeighborCallback) -> None:
        """Register a callback fired when a new neighbor is first heard."""
        self._up_callbacks.append(callback)

    def on_neighbor_down(self, callback: NeighborCallback) -> None:
        """Register a callback fired when a neighbor expires (link down)."""
        self._down_callbacks.append(callback)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def neighbors(self) -> List[IpAddress]:
        """Currently live neighbors, sorted for deterministic iteration."""
        return sorted(self._entries)

    def is_neighbor(self, ip: IpAddress) -> bool:
        """True while ``ip`` is considered alive."""
        return IpAddress(ip) in self._entries

    def entry(self, ip: IpAddress) -> NeighborEntry:
        """The liveness record for ``ip`` (KeyError when unknown)."""
        return self._entries[IpAddress(ip)]

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Beacon emission
    # ------------------------------------------------------------------
    def _emit(self) -> None:
        if self._stop_time is not None and self.sim.now > self._stop_time:
            self.stop()
            return
        packet = Packet(
            ip=IpHeader(src=self.address, dst=BROADCAST_IP,
                        protocol=HELLO_PROTOCOL, ttl=1),
            payload_bytes=self.config.payload_bytes, created_at=self.sim.now,
            annotations={"hello_seq": self.hellos_sent})
        self.hellos_sent += 1
        self.network.send(packet)
        rejitter(self._beacon, self.config.hello_interval, self._rng,
                 self.config.jitter_fraction)

    # ------------------------------------------------------------------
    # Beacon reception and liveness
    # ------------------------------------------------------------------
    def _on_hello(self, packet: Packet, source_mac: MacAddress) -> None:
        self.hellos_received += 1
        self.heard(packet.ip.src)

    def heard(self, ip: IpAddress) -> None:
        """Refresh liveness for ``ip`` (beacon or any control-plane evidence)."""
        if self._stopped:
            return
        ip = IpAddress(ip)
        if ip == self.address:
            return
        entry = self._entries.get(ip)
        if entry is None:
            entry = NeighborEntry(ip=ip, first_heard=self.sim.now,
                                  last_heard=self.sim.now, hellos_heard=1)
            self._entries[ip] = entry
            self.neighbor_up_events += 1
            self.sim.tracer.emit(self.name, "discovery", "neighbor_up", ip=str(ip))
            if self._metrics.enabled:
                self._metrics.inc("discovery.neighbor_events",
                                  node=self.name, transition="up")
            for callback in list(self._up_callbacks):
                callback(ip)
        else:
            entry.last_heard = self.sim.now
            entry.hellos_heard += 1
        self._rearm_expiry()

    def _rearm_expiry(self) -> None:
        if not self._entries:
            self._expiry.cancel()
            return
        earliest = min(entry.last_heard for entry in self._entries.values())
        deadline = earliest + self.config.hold_time
        self._expiry.start(max(0.0, deadline - self.sim.now))

    def _expire(self) -> None:
        now = self.sim.now
        hold = self.config.hold_time
        expired = sorted(ip for ip, entry in self._entries.items()
                         if now - entry.last_heard >= hold - 1e-12)
        for ip in expired:
            del self._entries[ip]
            self.neighbor_down_events += 1
            self.sim.tracer.emit(self.name, "discovery", "neighbor_down", ip=str(ip))
            if self._metrics.enabled:
                self._metrics.inc("discovery.neighbor_events",
                                  node=self.name, transition="down")
            for callback in list(self._down_callbacks):
                callback(ip)
        self._rearm_expiry()

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: HELLO and neighbor totals as gauges."""
        registry.set_gauge("discovery.hellos_sent", self.hellos_sent, node=self.name)
        registry.set_gauge("discovery.hellos_received", self.hellos_received,
                           node=self.name)
        registry.set_gauge("discovery.neighbors", len(self._entries), node=self.name)
        registry.set_gauge("discovery.neighbor_up_events", self.neighbor_up_events,
                           node=self.name)
        registry.set_gauge("discovery.neighbor_down_events",
                           self.neighbor_down_events, node=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NeighborDiscovery {self.name} neighbors={len(self._entries)}>"
