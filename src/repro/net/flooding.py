"""Flooding traffic generator.

Section 6.3 of the paper evaluates broadcast aggregation "in the presence of
flooding": every node generates broadcast frames at a fixed rate, emulating
the route discovery and maintenance floods of protocols such as DSR and AODV.
The generator below produces exactly that workload — fixed-size broadcast
packets at a configurable interval — without modelling any particular routing
protocol's semantics (the nodes do not re-broadcast, matching the paper's
setup where every node hears every other node directly).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.net.address import IpAddress
from repro.net.packet import Packet
from repro.obs.journey import node_of
from repro.sim.simulator import Simulator
from repro.sim.timer import PeriodicTimer


class FloodingSource:
    """Generates fixed-size broadcast control packets at a fixed interval."""

    def __init__(self, sim: Simulator, network, source_ip: IpAddress,
                 interval: float, payload_bytes: int = 64,
                 jitter_fraction: float = 0.1, name: Optional[str] = None) -> None:
        if interval <= 0:
            raise ConfigurationError("flooding interval must be positive")
        if payload_bytes < 0:
            raise ConfigurationError("flooding payload must be non-negative")
        self.sim = sim
        self.network = network
        self.source_ip = IpAddress(source_ip)
        self.interval = interval
        self.payload_bytes = payload_bytes
        self.jitter_fraction = jitter_fraction
        self.name = name or f"flood-{source_ip}"
        self._rng = sim.random.stream(f"flooding.{self.name}")
        self._timer = PeriodicTimer(sim, interval, self._emit,
                                    priority=Simulator.PRIORITY_APP, name=self.name)
        self.packets_sent = 0
        sim.metrics.register_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: generator output as a per-source gauge."""
        registry.set_gauge("flooding.packets_sent", self.packets_sent,
                           node=self.name)

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin flooding; the first packet is jittered to desynchronise nodes."""
        if initial_delay is None:
            initial_delay = self._rng.uniform(0.0, self.interval)
        self._timer.start(initial_delay)

    def stop(self) -> None:
        """Stop generating flood packets."""
        self._timer.stop()

    @property
    def running(self) -> bool:
        """True while the generator is active."""
        return self._timer.running

    def _emit(self) -> None:
        packet = Packet.broadcast_control(
            src=self.source_ip, payload_bytes=self.payload_bytes, created_at=self.sim.now,
            annotations={"flood_index": self.packets_sent},
        )
        self.packets_sent += 1
        journey = self.sim.journey
        if journey.enabled:
            journey.begin(self.sim.now,
                          node_of(getattr(self.network, "name", self.name), "net"),
                          "app", packet, event="send", source=self.name)
        self.network.send(packet)
        # Small jitter on subsequent emissions avoids lock-step collisions
        # between nodes flooding at the same nominal rate.
        if self.jitter_fraction > 0:
            jitter = 1.0 + self._rng.uniform(-self.jitter_fraction, self.jitter_fraction)
            self._timer.period = self.interval * jitter
