"""DSDV-style distance-vector routing.

The paper's forwarding plane (:mod:`repro.net.routing`) assumes routes are
installed once and never change, which is true of the Section 5 testbed but
not of the mobile scenarios.  This module adds the missing control plane: a
seeded, deterministic **Destination-Sequenced Distance Vector** protocol in
the style of Perkins & Bhagwat, layered on the HELLO liveness of
:mod:`repro.net.discovery`.

DSDV sequence-number rules (the loop-freedom invariant)
-------------------------------------------------------

Every route entry carries a *sequence number* originated by the destination
itself:

* each node numbers its **own** destination with **even** sequence numbers,
  incremented by 2 on every periodic advertisement — so fresher information
  about a destination always carries a larger even number;
* when a node detects a **link break**, it advertises the lost routes with
  the broken route's sequence number **plus one** — an **odd** number — and
  an infinite metric.  Odd numbers therefore always denote
  "destination unreachable as of this epoch", and the destination itself
  supersedes the break the next time it advertises (its next even number is
  larger than any break number derived from an older one);
* a received route replaces the current one iff its sequence number is
  **newer**, or is **equal with a strictly smaller metric**.  Ties never
  cause a switch, so transient route flapping cannot form loops.

Because metrics only grow along a path while sequence numbers are pinned by
the origin, a routing loop would require a node to prefer older-or-equal
information with a larger metric — excluded by the update rule above.

Implementation notes:

* :class:`DynamicRoutingTable` implements the full
  :class:`~repro.net.routing.RoutingTable` interface, so the
  :class:`~repro.net.routing.ForwardingEngine`, TCP, UDP and flooding all
  work unmodified on top of it; withdrawn routes raise the same
  :class:`~repro.errors.RoutingError` a missing static route would.
* Updates are broadcast packets (IP protocol ``"dsdv"``) sent through the
  real MAC: they contend, aggregate under the UA/BA policies, and are lost
  like data.  Each update carries the full table (a *full dump*; the
  experiments' tables are small) as metadata annotations, with the packet
  size accounting for a per-entry wire cost.
* Triggered updates fire after a short settling delay when routes change
  (link breaks, new neighbors, adopted fresher routes), so reconvergence is
  bounded by the HELLO hold time plus one settling delay rather than the
  periodic advertisement interval.
* All jitter comes from a per-node stream (``dsdv.<name>``) derived from the
  simulator's root seed; table iteration is in sorted destination order; the
  protocol is therefore byte-deterministic per seed, in-process and across
  campaign pool workers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, RoutingError
from repro.mac.addresses import MacAddress
from repro.net.address import IpAddress
from repro.net.discovery import HelloConfig, NeighborDiscovery, rejitter
from repro.net.packet import IpHeader, Packet
from repro.net.routing import BROADCAST_IP, RoutingTable
from repro.sim.simulator import Simulator
from repro.sim.timer import PeriodicTimer, Timer

#: IP protocol tag carried by DSDV route updates.
DSDV_PROTOCOL = "dsdv"

#: Metric denoting "unreachable" (hop counts are far below this in practice).
INFINITE_METRIC = 16

#: Sequence number used for locally injected (static) entries; any protocol
#: update carries a non-negative sequence number and therefore supersedes it.
STATIC_SEQUENCE = -1


@dataclass(frozen=True)
class RouteEntry:
    """One DSDV routing-table entry."""

    destination: IpAddress
    next_hop: IpAddress
    metric: int
    sequence: int
    installed_at: float = 0.0

    @property
    def valid(self) -> bool:
        """True while the route can actually forward packets."""
        return self.metric < INFINITE_METRIC

    def __str__(self) -> str:
        state = f"{self.metric} hops" if self.valid else "unreachable"
        return (f"{self.destination} via {self.next_hop} ({state}, "
                f"seq {self.sequence})")


class DynamicRoutingTable(RoutingTable):
    """A sequence-numbered routing table, drop-in for :class:`RoutingTable`.

    The forwarding plane only ever calls :meth:`next_hop` / :meth:`has_route`;
    both consider *valid* entries only, so a withdrawn route behaves exactly
    like a route that was never installed.  The control plane installs and
    withdraws entries via :meth:`install`; :meth:`add_route` keeps the static
    interface working by injecting entries with :data:`STATIC_SEQUENCE`.
    """

    def __init__(self) -> None:
        super().__init__()
        self._entries: Dict[IpAddress, RouteEntry] = {}
        #: Monotone change counter (bumped on every install/withdraw that
        #: alters forwarding state); cheap to compare in tests and stats.
        self.revision = 0

    # ------------------------------------------------------------------
    # RoutingTable interface
    # ------------------------------------------------------------------
    def add_route(self, destination: IpAddress, next_hop: IpAddress) -> None:
        """Install a static route (superseded by any protocol update)."""
        self.install(RouteEntry(destination=IpAddress(destination),
                                next_hop=IpAddress(next_hop),
                                metric=1, sequence=STATIC_SEQUENCE))

    def next_hop(self, destination: IpAddress) -> IpAddress:
        destination = IpAddress(destination)
        entry = self._entries.get(destination)
        if entry is not None and entry.valid:
            return entry.next_hop
        if self._default is not None:
            return self._default
        raise RoutingError(f"no route to {destination}")

    def has_route(self, destination: IpAddress) -> bool:
        entry = self._entries.get(IpAddress(destination))
        if entry is not None and entry.valid:
            return True
        return self._default is not None

    @property
    def routes(self) -> Dict[IpAddress, IpAddress]:
        """Valid destination → next-hop pairs (the static-table view)."""
        return {destination: entry.next_hop
                for destination, entry in self._entries.items() if entry.valid}

    def __len__(self) -> int:
        return sum(1 for entry in self._entries.values() if entry.valid)

    # ------------------------------------------------------------------
    # Control-plane interface
    # ------------------------------------------------------------------
    def entry_for(self, destination: IpAddress) -> Optional[RouteEntry]:
        """The stored entry (valid or withdrawn) for ``destination``."""
        return self._entries.get(IpAddress(destination))

    def install(self, entry: RouteEntry) -> None:
        """Store ``entry`` unconditionally (the router applies the DSDV rules)."""
        self._entries[entry.destination] = entry
        self.revision += 1

    def entries(self) -> List[RouteEntry]:
        """All entries in sorted destination order (deterministic iteration)."""
        return [self._entries[destination] for destination in sorted(self._entries)]

    def valid_entries(self) -> List[RouteEntry]:
        """Currently forwarding entries in sorted destination order."""
        return [entry for entry in self.entries() if entry.valid]


@dataclass(frozen=True)
class DsdvConfig:
    """Static configuration of one DSDV router."""

    #: Neighbor discovery (HELLO) parameters.
    hello: HelloConfig = HelloConfig()
    #: Nominal period of full-dump advertisements in seconds.
    advertise_interval: float = 3.0
    #: Advertisement periods are multiplied by ``1 + uniform(-j, +j)``.
    jitter_fraction: float = 0.1
    #: Settling delay before a triggered update is sent, so several
    #: simultaneous changes coalesce into one broadcast.
    triggered_delay: float = 0.1
    #: Wire-size model of an update: fixed header plus this many bytes per
    #: advertised entry (destination + metric + sequence number).
    header_bytes: int = 8
    entry_bytes: int = 12

    def __post_init__(self) -> None:
        if self.advertise_interval <= 0:
            raise ConfigurationError("advertise_interval must be positive")
        if not 0 <= self.jitter_fraction < 1:
            raise ConfigurationError("jitter_fraction must be in [0, 1)")
        if self.triggered_delay < 0:
            raise ConfigurationError("triggered_delay must be non-negative")
        if self.header_bytes < 0 or self.entry_bytes <= 0:
            raise ConfigurationError("update size model must be non-negative")


class DsdvRouter:
    """The DSDV control plane of one node.

    Owns the node's :class:`DynamicRoutingTable` and
    :class:`~repro.net.discovery.NeighborDiscovery`, broadcasts periodic and
    triggered route updates, and applies the sequence-number rules documented
    in the module docstring.
    """

    def __init__(self, sim: Simulator, network, table: DynamicRoutingTable,
                 config: Optional[DsdvConfig] = None,
                 discovery: Optional[NeighborDiscovery] = None,
                 name: Optional[str] = None) -> None:
        self.sim = sim
        self.network = network
        self.table = table
        self.config = config or DsdvConfig()
        self.address = IpAddress(network.address)
        self.name = name or f"dsdv-{self.address}"
        self.discovery = discovery or NeighborDiscovery(
            sim, network, config=self.config.hello, name=f"{self.name}.hello")
        self.discovery.on_neighbor_up(self._on_neighbor_up)
        self.discovery.on_neighbor_down(self._on_neighbor_down)
        self._rng = sim.random.stream(f"dsdv.{self.name}")
        self._own_sequence = 0
        self._stop_time: Optional[float] = None
        self._advert_timer = PeriodicTimer(sim, self.config.advertise_interval,
                                           self._on_periodic,
                                           priority=Simulator.PRIORITY_NET,
                                           name=f"{self.name}.advert")
        self._triggered_timer = Timer(sim, self._on_triggered,
                                      priority=Simulator.PRIORITY_NET,
                                      name=f"{self.name}.triggered")
        #: Route lifecycle log: (time, destination, event) with event one of
        #: ``"installed"`` (first valid route), ``"broken"`` (valid →
        #: unreachable) or ``"restored"`` (unreachable → valid again).  The
        #: experiments derive route-repair latency from broken→restored gaps.
        self.route_log: List[Tuple[float, IpAddress, str]] = []
        # statistics
        self.updates_sent = 0
        self.triggered_updates_sent = 0
        self.updates_received = 0
        self.entries_advertised = 0
        self.route_changes = 0
        self.route_breaks = 0
        self._metrics = sim.metrics
        sim.metrics.register_collector(self._collect_metrics)
        network.register_handler(DSDV_PROTOCOL, self._on_update)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, stop_time: Optional[float] = None) -> None:
        """Start HELLO beaconing and periodic advertisements."""
        self._stop_time = stop_time
        self.discovery.start(stop_time=stop_time)
        self._advert_timer.start(
            self._rng.uniform(0.0, self.config.advertise_interval))

    def stop(self) -> None:
        """Stop all protocol timers."""
        self.discovery.stop()
        self._advert_timer.stop()
        self._triggered_timer.cancel()

    @property
    def running(self) -> bool:
        """True while periodic advertisements are scheduled."""
        return self._advert_timer.running

    # ------------------------------------------------------------------
    # Advertisement transmission
    # ------------------------------------------------------------------
    def _wire_routes(self) -> Tuple[Tuple[int, int, int], ...]:
        """The advertised vector: (destination, sequence, metric) triples."""
        routes = [(self.address.value, self._own_sequence, 0)]
        for entry in self.table.entries():
            if entry.destination == self.address or entry.sequence < 0:
                continue
            routes.append((entry.destination.value, entry.sequence, entry.metric))
        return tuple(routes)

    def _broadcast_update(self, triggered: bool) -> None:
        routes = self._wire_routes()
        payload = self.config.header_bytes + len(routes) * self.config.entry_bytes
        packet = Packet(
            ip=IpHeader(src=self.address, dst=BROADCAST_IP,
                        protocol=DSDV_PROTOCOL, ttl=1),
            payload_bytes=payload, created_at=self.sim.now,
            annotations={"dsdv_routes": routes, "dsdv_triggered": triggered})
        self.updates_sent += 1
        if triggered:
            self.triggered_updates_sent += 1
        self.entries_advertised += len(routes)
        self.sim.tracer.emit(self.name, "dsdv", "update_tx",
                             entries=len(routes), triggered=triggered)
        if self._metrics.enabled:
            self._metrics.inc("dsdv.updates", node=self.name,
                              kind="triggered" if triggered else "periodic")
        self.network.send(packet)

    def _on_periodic(self) -> None:
        if self._stop_time is not None and self.sim.now > self._stop_time:
            self.stop()
            return
        # A fresh even sequence number for our own destination on every
        # periodic advertisement (rule 1 of the module docstring).
        self._own_sequence += 2
        self._broadcast_update(triggered=False)
        rejitter(self._advert_timer, self.config.advertise_interval, self._rng,
                 self.config.jitter_fraction)

    def _schedule_triggered(self) -> None:
        if self._triggered_timer.running or not self.running:
            return
        if self._stop_time is not None and self.sim.now > self._stop_time:
            return
        self._triggered_timer.start(self.config.triggered_delay)

    def _on_triggered(self) -> None:
        self._broadcast_update(triggered=True)

    # ------------------------------------------------------------------
    # Advertisement reception
    # ------------------------------------------------------------------
    def _on_update(self, packet: Packet, source_mac: MacAddress) -> None:
        sender = IpAddress(packet.ip.src)
        if sender == self.address:  # pragma: no cover - broadcasts never loop back
            return
        self.updates_received += 1
        # Receiving an update is proof the link works: refresh liveness so a
        # lost beacon does not expire a neighbor whose updates still arrive.
        self.discovery.heard(sender)
        routes = packet.annotations.get("dsdv_routes", ())
        changed = False
        for destination_value, sequence, metric in routes:
            destination = IpAddress(destination_value)
            if destination == self.address:
                # Someone advertises *us* with a sequence number newer than
                # ours — an odd break number after a false-positive expiry
                # (echoes of our own advertisements carry exactly our current
                # number and are ignored).  Jump past it so our next
                # advertisement supersedes the stale break everywhere.
                if sequence > self._own_sequence:
                    self._own_sequence = sequence + (2 if sequence % 2 == 0 else 1)
                    self._schedule_triggered()
                continue
            changed |= self._consider(destination, sender, sequence, metric)
        if changed:
            self._schedule_triggered()

    def _consider(self, destination: IpAddress, sender: IpAddress,
                  sequence: int, metric: int) -> bool:
        """Apply the DSDV update rule to one advertised route; True if adopted."""
        new_metric = metric + 1 if metric < INFINITE_METRIC else INFINITE_METRIC
        current = self.table.entry_for(destination)
        if current is not None:
            newer = sequence > current.sequence
            better = sequence == current.sequence and new_metric < current.metric
            if not newer and not better:
                return False
            if (not current.valid and new_metric >= INFINITE_METRIC):
                # Already withdrawn; just remember the fresher break epoch.
                self.table.install(replace(current, sequence=sequence))
                return False
        elif new_metric >= INFINITE_METRIC:
            return False  # never heard of it and it is unreachable: ignore
        entry = RouteEntry(destination=destination, next_hop=sender,
                           metric=new_metric, sequence=sequence,
                           installed_at=self.sim.now)
        was_valid = current is not None and current.valid
        self.table.install(entry)
        if entry.valid and not was_valid:
            self.route_changes += 1
            self._log(destination, "installed" if current is None else "restored")
        elif not entry.valid and was_valid:
            self.route_breaks += 1
            self.route_changes += 1
            self._log(destination, "broken")
        elif entry.valid and (entry.next_hop != current.next_hop
                              or entry.metric != current.metric):
            self.route_changes += 1
        else:
            return False  # only the sequence number advanced: nothing to re-advertise
        return True

    # ------------------------------------------------------------------
    # Link events from neighbor discovery
    # ------------------------------------------------------------------
    def _on_neighbor_up(self, neighbor: IpAddress) -> None:
        # A new neighbor needs our table quickly (and we will learn its
        # routes from the triggered update it sends for the same reason).
        self._schedule_triggered()

    def _on_neighbor_down(self, neighbor: IpAddress) -> None:
        broken = False
        for entry in self.table.entries():
            if not entry.valid or entry.next_hop != neighbor:
                continue
            # Rule 2: link-break routes get the old sequence number plus one
            # (odd = unreachable epoch) and an infinite metric.
            self.table.install(replace(
                entry, metric=INFINITE_METRIC,
                sequence=entry.sequence + 1 if entry.sequence >= 0 else 1,
                installed_at=self.sim.now))
            self.route_breaks += 1
            self.route_changes += 1
            self._log(entry.destination, "broken")
            broken = True
        if broken:
            self._schedule_triggered()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def _log(self, destination: IpAddress, event: str) -> None:
        self.route_log.append((self.sim.now, destination, event))

    def repair_latencies(self, destination: IpAddress) -> List[float]:
        """Broken → restored gaps (seconds) observed for ``destination``."""
        destination = IpAddress(destination)
        latencies: List[float] = []
        broken_at: Optional[float] = None
        for time, dest, event in self.route_log:
            if dest != destination:
                continue
            if event == "broken":
                broken_at = time
            elif event in ("restored", "installed") and broken_at is not None:
                latencies.append(time - broken_at)
                broken_at = None
        return latencies

    def summary(self) -> dict:
        """Flat headline statistics (reports and tests)."""
        return {
            "updates_sent": self.updates_sent,
            "triggered_updates_sent": self.triggered_updates_sent,
            "updates_received": self.updates_received,
            "route_changes": self.route_changes,
            "route_breaks": self.route_breaks,
            "valid_routes": len(self.table),
            "neighbors": len(self.discovery),
            "hellos_sent": self.discovery.hellos_sent,
        }

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: the router summary as per-node gauges."""
        for key, value in self.summary().items():
            if isinstance(value, (int, float)):
                registry.set_gauge(f"dsdv.{key}", value, node=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DsdvRouter {self.name} routes={len(self.table)} "
                f"neighbors={len(self.discovery)} seq={self._own_sequence}>")
