"""Network layer: packets, addressing, static + dynamic routing, flooding.

Static scenarios use :class:`RoutingTable` filled by the topology builders;
mobile meshes swap in :class:`DynamicRoutingTable` maintained either
proactively by a :class:`DsdvRouter` (periodic sequence-numbered
advertisements, see :mod:`repro.net.dynamic_routing`) or reactively by an
:class:`AodvRouter` (on-demand RREQ/RREP discovery, see
:mod:`repro.net.on_demand`), both over :class:`NeighborDiscovery` HELLO
beacons.
"""

from repro.net.packet import IpHeader, Packet, TcpHeader, UdpHeader
from repro.net.address import IpAddress
from repro.net.routing import ForwardingEngine, RoutingTable, StaticRoute
from repro.net.flooding import FloodingSource
from repro.net.discovery import HelloConfig, NeighborDiscovery
from repro.net.dynamic_routing import (
    DsdvConfig,
    DsdvRouter,
    DynamicRoutingTable,
    RouteEntry,
)
from repro.net.on_demand import AodvConfig, AodvRouter

__all__ = [
    "Packet",
    "IpHeader",
    "TcpHeader",
    "UdpHeader",
    "IpAddress",
    "RoutingTable",
    "StaticRoute",
    "ForwardingEngine",
    "FloodingSource",
    "HelloConfig",
    "NeighborDiscovery",
    "DsdvConfig",
    "DsdvRouter",
    "DynamicRoutingTable",
    "RouteEntry",
    "AodvConfig",
    "AodvRouter",
]
