"""Network layer: packets, addressing, static + dynamic routing, flooding.

Static scenarios use :class:`RoutingTable` filled by the topology builders;
mobile meshes swap in :class:`DynamicRoutingTable` maintained by a
:class:`DsdvRouter` over :class:`NeighborDiscovery` HELLO beacons (see
:mod:`repro.net.dynamic_routing` for the protocol rules).
"""

from repro.net.packet import IpHeader, Packet, TcpHeader, UdpHeader
from repro.net.address import IpAddress
from repro.net.routing import ForwardingEngine, RoutingTable, StaticRoute
from repro.net.flooding import FloodingSource
from repro.net.discovery import HelloConfig, NeighborDiscovery
from repro.net.dynamic_routing import (
    DsdvConfig,
    DsdvRouter,
    DynamicRoutingTable,
    RouteEntry,
)

__all__ = [
    "Packet",
    "IpHeader",
    "TcpHeader",
    "UdpHeader",
    "IpAddress",
    "RoutingTable",
    "StaticRoute",
    "ForwardingEngine",
    "FloodingSource",
    "HelloConfig",
    "NeighborDiscovery",
    "DsdvConfig",
    "DsdvRouter",
    "DynamicRoutingTable",
    "RouteEntry",
]
