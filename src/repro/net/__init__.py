"""Network layer: packet model, addressing, static routing and flooding."""

from repro.net.packet import IpHeader, Packet, TcpHeader, UdpHeader
from repro.net.address import IpAddress
from repro.net.routing import ForwardingEngine, RoutingTable, StaticRoute
from repro.net.flooding import FloodingSource

__all__ = [
    "Packet",
    "IpHeader",
    "TcpHeader",
    "UdpHeader",
    "IpAddress",
    "RoutingTable",
    "StaticRoute",
    "ForwardingEngine",
    "FloodingSource",
]
