"""AODV-style on-demand (reactive) routing.

The DSDV control plane (:mod:`repro.net.dynamic_routing`) pays a fixed,
always-on beacon cost that is independent of how much of the mesh actually
carries traffic.  This module adds the classic counterpoint: an **Ad hoc
On-demand Distance Vector** router in the style of Perkins, Belding-Royer &
Das that spends control bytes only when a route is actually requested — the
proactive/reactive trade-off the ``rt02`` experiment measures.

Protocol rules (the loop-freedom invariant)
-------------------------------------------

* **Route discovery.**  When a packet has no route, the origin buffers it and
  floods a *route request* (RREQ) carrying a per-origin request id, the
  origin's own monotone sequence number and the freshest *destination
  sequence number* it knows.  Relays suppress duplicates by ``(origin,
  request id)``, install a *reverse route* towards the origin via the node
  they heard the RREQ from, and rebroadcast with the TTL decremented after a
  small seeded jitter.  Discovery uses an **expanding ring**: the first RREQ
  carries a small TTL, and each timeout retries with a larger ring until the
  configured network-diameter TTL has been retried ``rreq_retries`` times —
  only then is the destination declared unreachable and the buffered packets
  dropped (the same :class:`~repro.errors.RoutingError` surface a missing
  static route has).
* **Route reply.**  Only the destination answers (the RFC 3561
  "destination-only" flag): it bumps its own sequence number past the
  requested one and unicasts a *route reply* (RREP) hop by hop along the
  reverse routes.  Every node forwarding the RREP installs the *forward
  route* to the destination.  Routes are adopted iff the carried destination
  sequence number is **newer**, or **equal with a strictly smaller hop
  count** — the same rule that makes DSDV loop-free: metrics only grow along
  a path while sequence numbers are pinned by the destination, so preferring
  older-or-equal information with a larger metric is excluded.
* **Route maintenance.**  Active routes carry a lifetime refreshed by every
  data packet they forward; an expired route is invalidated (infinite metric,
  sequence number bumped) exactly like a withdrawn DSDV route.  A link break
  — delivered by the existing :class:`~repro.net.discovery.NeighborDiscovery`
  HELLO liveness — invalidates all routes over the broken link and broadcasts
  a *route error* (RERR) listing the lost destinations with their bumped
  sequence numbers; upstream nodes that were routing through the sender
  invalidate in turn and propagate their own RERR.

Implementation notes:

* Routes live in the same :class:`~repro.net.dynamic_routing.DynamicRoutingTable`
  DSDV uses, so the :class:`~repro.net.routing.ForwardingEngine`, TCP, UDP
  and flooding run unmodified; the on-demand trigger is the forwarding
  engine's *no-route handler* hook (a packet that would have been a
  ``no_route_drop`` is buffered here instead while discovery runs).
* All control messages (IP protocol ``"aodv"``) travel through the real MAC:
  they contend, aggregate under the UA/BA policies, are lost like data, and
  are broken out in ``mac.stats`` (``routing_*`` counters) so goodput numbers
  stay honest.
* All jitter comes from a per-node stream (``aodv.<name>``) derived from the
  simulator's root seed; table iteration, pending-request and expiry
  processing are in sorted order; the protocol is therefore byte-deterministic
  per seed, in-process and across campaign pool workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.mac.addresses import MacAddress
from repro.net.address import IpAddress
from repro.net.discovery import HelloConfig, NeighborDiscovery
from repro.net.dynamic_routing import (
    INFINITE_METRIC,
    DynamicRoutingTable,
    RouteEntry,
)
from repro.net.packet import IpHeader, Packet
from repro.net.routing import BROADCAST_IP
from repro.obs.journey import node_of
from repro.sim.simulator import Simulator
from repro.sim.timer import Timer

#: IP protocol tag carried by AODV control messages (RREQ/RREP/RERR).
AODV_PROTOCOL = "aodv"

#: Sequence number meaning "origin knows no destination sequence number yet".
UNKNOWN_SEQUENCE = -1


def _is_data(packet: Packet) -> bool:
    """True for real buffered traffic (not a :meth:`AodvRouter.discover` probe)."""
    return not packet.annotations.get("aodv_probe", False)


@dataclass(frozen=True)
class AodvConfig:
    """Static configuration of one AODV router."""

    #: Neighbor discovery (HELLO) parameters — link-break detection only;
    #: AODV never advertises routes proactively.
    hello: HelloConfig = HelloConfig()
    #: Seconds an installed route stays valid without forwarding data.
    active_route_lifetime: float = 6.0
    #: Expanding-ring search: TTL of the first RREQ, the increment applied on
    #: every timeout, and the network-diameter ceiling.
    ring_start_ttl: int = 2
    ring_ttl_increment: int = 2
    ring_max_ttl: int = 7
    #: Extra attempts at the diameter TTL before the destination is declared
    #: unreachable (RFC 3561's RREQ_RETRIES).
    rreq_retries: int = 2
    #: Seconds waited for a RREP per unit of RREQ TTL (the ring traversal
    #: time: one TTL unit of flooding out plus the reply back).
    ring_timeout_per_ttl: float = 0.2
    #: RREQ rebroadcasts are delayed by ``uniform(0, j)`` seconds so relays
    #: hearing the same flood do not retransmit in lockstep.
    rebroadcast_jitter: float = 0.02
    #: Data packets buffered per destination while discovery runs; the oldest
    #: packet is dropped when a new one would exceed the bound.
    buffer_packets: int = 32
    #: Seconds a seen (origin, request id) pair is remembered for duplicate
    #: suppression (RFC 3561's PATH_DISCOVERY_TIME).  Request ids are never
    #: reused, so pruning only bounds memory — it cannot re-admit a flood.
    path_discovery_time: float = 10.0
    #: Wire-size model of the control messages (payload bytes on top of the
    #: IP header the packet model already accounts).
    rreq_bytes: int = 24
    rrep_bytes: int = 20
    rerr_header_bytes: int = 8
    rerr_entry_bytes: int = 8

    def __post_init__(self) -> None:
        if self.active_route_lifetime <= 0:
            raise ConfigurationError("active_route_lifetime must be positive")
        if self.ring_start_ttl < 1:
            raise ConfigurationError("ring_start_ttl must be at least 1")
        if self.ring_ttl_increment < 1:
            raise ConfigurationError("ring_ttl_increment must be at least 1")
        if self.ring_max_ttl < self.ring_start_ttl:
            raise ConfigurationError(
                "ring_max_ttl must be at least ring_start_ttl")
        if self.rreq_retries < 0:
            raise ConfigurationError("rreq_retries must be non-negative")
        if self.ring_timeout_per_ttl <= 0:
            raise ConfigurationError("ring_timeout_per_ttl must be positive")
        if self.rebroadcast_jitter < 0:
            raise ConfigurationError("rebroadcast_jitter must be non-negative")
        if self.buffer_packets < 1:
            raise ConfigurationError("buffer_packets must be at least 1")
        if self.path_discovery_time <= 0:
            raise ConfigurationError("path_discovery_time must be positive")
        if min(self.rreq_bytes, self.rrep_bytes, self.rerr_header_bytes) < 0 \
                or self.rerr_entry_bytes <= 0:
            raise ConfigurationError("control message size model is invalid")


@dataclass
class RouteRequestState:
    """One in-flight expanding-ring discovery at the origin."""

    destination: IpAddress
    ttl: int
    attempts: int = 0
    attempts_at_max: int = 0
    buffered: List[Packet] = field(default_factory=list)
    timer: Optional[Timer] = None


class AodvRouter:
    """The AODV control plane of one node.

    Owns the node's :class:`DynamicRoutingTable` and
    :class:`~repro.net.discovery.NeighborDiscovery`, reacts to no-route
    events from the forwarding engine with expanding-ring route discovery,
    and maintains active-route lifetimes from forwarded data.
    """

    def __init__(self, sim: Simulator, network, table: DynamicRoutingTable,
                 config: Optional[AodvConfig] = None,
                 discovery: Optional[NeighborDiscovery] = None,
                 name: Optional[str] = None) -> None:
        self.sim = sim
        self.network = network
        self.table = table
        self.config = config or AodvConfig()
        self.address = IpAddress(network.address)
        self.name = name or f"aodv-{self.address}"
        self.discovery = discovery or NeighborDiscovery(
            sim, network, config=self.config.hello, name=f"{self.name}.hello")
        self.discovery.on_neighbor_down(self._on_neighbor_down)
        self._rng = sim.random.stream(f"aodv.{self.name}")
        self._own_sequence = 0
        self._rreq_id = 0
        self._stop_time: Optional[float] = None
        self._stopped = True
        #: Duplicate suppression: (origin value, request id) → time first seen.
        self._seen_requests: Dict[Tuple[int, int], float] = {}
        #: In-flight discoveries keyed by destination.
        self._pending: Dict[IpAddress, RouteRequestState] = {}
        #: Active-route expiry instants keyed by destination.
        self._expires: Dict[IpAddress, float] = {}
        self._expiry_timer = Timer(sim, self._on_expiry,
                                   priority=Simulator.PRIORITY_NET,
                                   name=f"{self.name}.expiry")
        #: Route lifecycle log: (time, destination, event) with event one of
        #: ``"installed"``, ``"restored"``, ``"broken"`` or ``"expired"``.
        self.route_log: List[Tuple[float, IpAddress, str]] = []
        # statistics
        self.rreqs_sent = 0
        self.rreqs_forwarded = 0
        self.rreps_sent = 0
        self.rreps_forwarded = 0
        self.rerrs_sent = 0
        self.rerrs_received = 0
        self.duplicate_rreqs_ignored = 0
        self.discoveries_started = 0
        self.discoveries_completed = 0
        self.discoveries_failed = 0
        self.buffered_packets_dropped = 0
        self.route_changes = 0
        self.route_breaks = 0
        self.route_expirations = 0
        self._metrics = sim.metrics
        self._journey = sim.journey
        self._journey_node = node_of(
            getattr(network, "name", str(self.address)), "net")
        sim.metrics.register_collector(self._collect_metrics)
        network.register_handler(AODV_PROTOCOL, self._on_control)
        network.set_no_route_handler(self._on_no_route)
        network.set_forward_observer(self._on_data_forwarded)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, stop_time: Optional[float] = None) -> None:
        """Start HELLO liveness; discovery itself is demand-driven."""
        self._stop_time = stop_time
        self._stopped = False
        self.discovery.start(stop_time=stop_time)
        # Lifetimes recorded before a stop()/start() cycle must still expire.
        self._rearm_expiry()

    def stop(self) -> None:
        """Stop all protocol activity and drop any buffered packets."""
        self._stopped = True
        self.discovery.stop()
        self._expiry_timer.cancel()
        journey = self._journey
        for destination in sorted(self._pending):
            state = self._pending[destination]
            if state.timer is not None:
                state.timer.cancel()
            for packet in state.buffered:
                if _is_data(packet):
                    self.buffered_packets_dropped += 1
                    if journey.enabled:
                        journey.record(self.sim.now, self._journey_node,
                                       "net", "drop", packet,
                                       reason="shutdown")
        self._pending.clear()

    @property
    def running(self) -> bool:
        """True while the control plane reacts to traffic and link events."""
        return not self._stopped

    def _past_stop(self) -> bool:
        return (self._stopped
                or (self._stop_time is not None and self.sim.now > self._stop_time))

    # ------------------------------------------------------------------
    # On-demand trigger (forwarding-engine no-route hook)
    # ------------------------------------------------------------------
    def _on_no_route(self, packet: Packet) -> bool:
        """Buffer a routeless data packet and start/continue discovery."""
        if self._past_stop():
            return False
        if packet.ip.protocol == AODV_PROTOCOL:
            return False  # never discover routes for our own control traffic
        destination = IpAddress(packet.ip.dst)
        state = self._pending.get(destination)
        if state is None:
            state = RouteRequestState(destination=destination,
                                      ttl=self.config.ring_start_ttl)
            state.timer = Timer(self.sim,
                                lambda: self._on_ring_timeout(destination),
                                priority=Simulator.PRIORITY_NET,
                                name=f"{self.name}.ring.{destination}")
            self._pending[destination] = state
            self.discoveries_started += 1
            state.buffered.append(packet)
            self._send_rreq(state)
        else:
            if len(state.buffered) >= self.config.buffer_packets:
                evicted = state.buffered.pop(0)
                self.buffered_packets_dropped += 1
                journey = self._journey
                if journey.enabled and _is_data(evicted):
                    journey.record(self.sim.now, self._journey_node, "net",
                                   "drop", evicted, reason="buffer_full")
            state.buffered.append(packet)
        return True

    def discover(self, destination: IpAddress) -> None:
        """Start a discovery for ``destination`` without offering a packet.

        Useful for demand-driven warm-up in tests and experiments; a no-op
        when a route already exists or a discovery is already pending.
        """
        destination = IpAddress(destination)
        if self._past_stop() or destination in self._pending:
            return
        if self.table.has_route(destination):
            return
        # The probe exists only to enter the request buffer; the annotation
        # keeps it out of the data plane (never re-injected, never counted
        # as a dropped data packet).
        probe = Packet(ip=IpHeader(src=self.address, dst=destination,
                                   protocol="raw"),
                       payload_bytes=0, created_at=self.sim.now,
                       annotations={"aodv_probe": True})
        self._on_no_route(probe)

    # ------------------------------------------------------------------
    # RREQ origination and the expanding ring
    # ------------------------------------------------------------------
    def _send_rreq(self, state: RouteRequestState) -> None:
        self._own_sequence += 1
        self._rreq_id += 1
        known = self.table.entry_for(state.destination)
        destination_sequence = known.sequence if known is not None else UNKNOWN_SEQUENCE
        self._record_request((self.address.value, self._rreq_id))
        packet = Packet(
            ip=IpHeader(src=self.address, dst=BROADCAST_IP,
                        protocol=AODV_PROTOCOL, ttl=state.ttl),
            payload_bytes=self.config.rreq_bytes, created_at=self.sim.now,
            annotations={
                "aodv_type": "rreq",
                "aodv_rreq_id": self._rreq_id,
                "aodv_origin": self.address.value,
                "aodv_origin_seq": self._own_sequence,
                "aodv_dest": state.destination.value,
                "aodv_dest_seq": destination_sequence,
                "aodv_hops": 0,
            })
        self.rreqs_sent += 1
        state.attempts += 1
        if state.ttl >= self.config.ring_max_ttl:
            state.attempts_at_max += 1
        self.sim.tracer.emit(self.name, "aodv", "rreq_tx",
                             dest=str(state.destination), ttl=state.ttl,
                             attempt=state.attempts)
        if self._metrics.enabled:
            self._metrics.inc("aodv.control_tx", node=self.name, kind="rreq")
        self.network.send(packet)
        state.timer.start(self.config.ring_timeout_per_ttl * state.ttl)

    def _on_ring_timeout(self, destination: IpAddress) -> None:
        state = self._pending.get(destination)
        if state is None:
            return
        if self._past_stop():
            self._fail_discovery(state)
            return
        if state.ttl < self.config.ring_max_ttl:
            state.ttl = min(state.ttl + self.config.ring_ttl_increment,
                            self.config.ring_max_ttl)
        elif state.attempts_at_max > self.config.rreq_retries:
            self._fail_discovery(state)
            return
        self._send_rreq(state)

    def _fail_discovery(self, state: RouteRequestState) -> None:
        """Expanding-ring search exhausted: the destination is unreachable."""
        if state.timer is not None:
            state.timer.cancel()
        self._pending.pop(state.destination, None)
        self.discoveries_failed += 1
        dropped = sum(1 for packet in state.buffered if _is_data(packet))
        self.buffered_packets_dropped += dropped
        journey = self._journey
        if journey.enabled:
            for packet in state.buffered:
                if _is_data(packet):
                    journey.record(self.sim.now, self._journey_node, "net",
                                   "drop", packet, reason="rreq_exhausted")
        self.sim.tracer.emit(self.name, "aodv", "discovery_failed",
                             dest=str(state.destination), dropped=dropped)
        state.buffered.clear()

    def _complete_discovery(self, destination: IpAddress) -> None:
        state = self._pending.pop(destination, None)
        if state is None:
            return
        if state.timer is not None:
            state.timer.cancel()
        self.discoveries_completed += 1
        self.sim.tracer.emit(self.name, "aodv", "discovery_complete",
                             dest=str(destination), flushed=len(state.buffered))
        for packet in state.buffered:
            if _is_data(packet):  # warm-up probes never enter the data plane
                self.network.reinject(packet)
        state.buffered.clear()

    # ------------------------------------------------------------------
    # Control-message reception
    # ------------------------------------------------------------------
    def _on_control(self, packet: Packet, source_mac: MacAddress) -> None:
        if self._stopped:
            return
        sender = IpAddress(packet.ip.src)
        if sender == self.address:  # pragma: no cover - broadcasts never loop back
            return
        # Any control packet is proof the link to the sender works.
        self.discovery.heard(sender)
        kind = packet.annotations.get("aodv_type")
        if kind == "rreq":
            self._on_rreq(packet, sender)
        elif kind == "rrep":
            self._on_rrep(packet, sender)
        elif kind == "rerr":
            self._on_rerr(packet, sender)

    # -- RREQ ----------------------------------------------------------
    def _on_rreq(self, packet: Packet, sender: IpAddress) -> None:
        origin = IpAddress(packet.annotations["aodv_origin"])
        request_key = (origin.value, packet.annotations["aodv_rreq_id"])
        self._touch_neighbor_route(sender)
        if origin == self.address:
            return  # a relay rebroadcast our own flood back at us
        if request_key in self._seen_requests:
            self.duplicate_rreqs_ignored += 1
            return
        self._record_request(request_key)
        hops = packet.annotations["aodv_hops"] + 1
        # Reverse route towards the origin, via whoever relayed the RREQ.
        self._consider(origin, sender,
                       sequence=packet.annotations["aodv_origin_seq"],
                       metric=hops)
        destination = IpAddress(packet.annotations["aodv_dest"])
        if destination == self.address:
            # Destination-only replies: bump our sequence number past the
            # freshest value the origin asked about, so the reply supersedes
            # every stale entry (including odd break markers) along the path.
            self._own_sequence = max(self._own_sequence,
                                     packet.annotations["aodv_dest_seq"]) + 1
            self._send_rrep(next_hop=sender, origin=origin,
                            destination_sequence=self._own_sequence, hops=0)
            return
        ttl_remaining = packet.ip.ttl - 1
        if ttl_remaining <= 0:
            return  # the expanding ring ends here
        rebroadcast = Packet(
            ip=IpHeader(src=self.address, dst=BROADCAST_IP,
                        protocol=AODV_PROTOCOL, ttl=ttl_remaining),
            payload_bytes=self.config.rreq_bytes, created_at=self.sim.now,
            annotations={**packet.annotations, "aodv_hops": hops})
        self.rreqs_forwarded += 1
        delay = self._rng.uniform(0.0, self.config.rebroadcast_jitter)
        self.sim.schedule(delay, self._transmit_if_running, rebroadcast,
                          priority=Simulator.PRIORITY_NET)

    def _record_request(self, request_key: Tuple[int, int]) -> None:
        """Remember a request id, pruning entries past the discovery window.

        Request ids are monotone per origin and never reused, so expired
        entries cannot re-admit a duplicate — the sweep only keeps the seen
        set proportional to the discovery rate instead of the run length.
        """
        cutoff = self.sim.now - self.config.path_discovery_time
        expired = [key for key, seen_at in self._seen_requests.items()
                   if seen_at < cutoff]
        for key in expired:
            del self._seen_requests[key]
        self._seen_requests[request_key] = self.sim.now

    def _transmit_if_running(self, packet: Packet) -> None:
        if not self._past_stop():
            self.network.send(packet)

    # -- RREP ----------------------------------------------------------
    def _send_rrep(self, next_hop: IpAddress, origin: IpAddress,
                   destination_sequence: int, hops: int) -> None:
        packet = Packet(
            ip=IpHeader(src=self.address, dst=next_hop,
                        protocol=AODV_PROTOCOL, ttl=1),
            payload_bytes=self.config.rrep_bytes, created_at=self.sim.now,
            annotations={
                "aodv_type": "rrep",
                "aodv_origin": origin.value,
                "aodv_dest": self.address.value,
                "aodv_dest_seq": destination_sequence,
                "aodv_hops": hops,
            })
        self.rreps_sent += 1
        self.sim.tracer.emit(self.name, "aodv", "rrep_tx",
                             origin=str(origin), via=str(next_hop))
        self.network.send(packet)

    def _on_rrep(self, packet: Packet, sender: IpAddress) -> None:
        self._touch_neighbor_route(sender)
        destination = IpAddress(packet.annotations["aodv_dest"])
        hops = packet.annotations["aodv_hops"] + 1
        self._consider(destination, sender,
                       sequence=packet.annotations["aodv_dest_seq"],
                       metric=hops)
        origin = IpAddress(packet.annotations["aodv_origin"])
        if origin == self.address:
            self._complete_discovery(destination)
            return
        reverse = self.table.entry_for(origin)
        if reverse is None or not reverse.valid:
            return  # reverse route gone (expired or broken): the RREP dies here
        forwarded = Packet(
            ip=IpHeader(src=self.address, dst=reverse.next_hop,
                        protocol=AODV_PROTOCOL, ttl=1),
            payload_bytes=self.config.rrep_bytes, created_at=self.sim.now,
            annotations={**packet.annotations, "aodv_hops": hops})
        self.rreps_forwarded += 1
        self.network.send(forwarded)

    # -- RERR ----------------------------------------------------------
    def _broadcast_rerr(self, unreachable: List[Tuple[int, int]]) -> None:
        payload = (self.config.rerr_header_bytes
                   + len(unreachable) * self.config.rerr_entry_bytes)
        packet = Packet(
            ip=IpHeader(src=self.address, dst=BROADCAST_IP,
                        protocol=AODV_PROTOCOL, ttl=1),
            payload_bytes=payload, created_at=self.sim.now,
            annotations={"aodv_type": "rerr",
                         "aodv_unreachable": tuple(unreachable)})
        self.rerrs_sent += 1
        self.sim.tracer.emit(self.name, "aodv", "rerr_tx",
                             destinations=len(unreachable))
        self.network.send(packet)

    def _on_rerr(self, packet: Packet, sender: IpAddress) -> None:
        self.rerrs_received += 1
        propagated: List[Tuple[int, int]] = []
        for destination_value, sequence in packet.annotations["aodv_unreachable"]:
            destination = IpAddress(destination_value)
            entry = self.table.entry_for(destination)
            if entry is None or not entry.valid or entry.next_hop != sender:
                continue  # we were not routing through the sender
            new_sequence = max(sequence, entry.sequence + 1)
            self._invalidate(entry, new_sequence, "broken")
            self.route_breaks += 1
            propagated.append((destination.value, new_sequence))
        if propagated:
            self._broadcast_rerr(propagated)

    # ------------------------------------------------------------------
    # Route table maintenance
    # ------------------------------------------------------------------
    def _consider(self, destination: IpAddress, next_hop: IpAddress,
                  sequence: int, metric: int) -> bool:
        """Adopt a learned route under the sequence-number rule; True if adopted."""
        if destination == self.address:
            return False
        current = self.table.entry_for(destination)
        if current is not None:
            if current.valid:
                newer = sequence > current.sequence
                better = sequence == current.sequence and metric < current.metric
                if not newer and not better:
                    self._refresh(destination)  # fresh evidence the route works
                    return False
            elif sequence < current.sequence:
                return False  # older than the recorded break epoch
        entry = RouteEntry(destination=destination, next_hop=next_hop,
                           metric=metric, sequence=sequence,
                           installed_at=self.sim.now)
        was_valid = current is not None and current.valid
        self.table.install(entry)
        self.route_changes += 1
        if not was_valid:
            self._log(destination, "installed" if current is None else "restored")
        self._refresh(destination)
        return True

    def _touch_neighbor_route(self, neighbor: IpAddress) -> None:
        """Install/refresh the 1-hop route to a node we just heard directly."""
        current = self.table.entry_for(neighbor)
        if current is not None and current.valid and current.metric == 1:
            self._refresh(neighbor)
            return
        sequence = current.sequence if current is not None else 0
        self._consider(neighbor, neighbor, sequence=sequence, metric=1)

    def _on_data_forwarded(self, packet: Packet, next_hop: IpAddress) -> None:
        """Forwarded data keeps the routes it used alive (active-route rule)."""
        if self._stopped:
            return
        self._refresh(IpAddress(packet.ip.dst))
        self._refresh(IpAddress(packet.ip.src))
        self._refresh(IpAddress(next_hop))

    # -- lifetimes -----------------------------------------------------
    def _refresh(self, destination: IpAddress) -> None:
        if self._past_stop():
            return
        entry = self.table.entry_for(destination)
        if entry is None or not entry.valid:
            return
        self._expires[destination] = self.sim.now + self.config.active_route_lifetime
        # Refreshing only pushes deadlines later, so an already-armed timer
        # stays correct: at worst it wakes early, finds nothing expired and
        # re-arms at the new minimum.  Keeping this O(1) matters — it runs
        # three times per forwarded data packet per hop.
        if not self._expiry_timer.running:
            self._rearm_expiry()

    def _rearm_expiry(self) -> None:
        if not self._expires:
            self._expiry_timer.cancel()
            return
        deadline = min(self._expires.values())
        self._expiry_timer.start(max(0.0, deadline - self.sim.now))

    def _on_expiry(self) -> None:
        now = self.sim.now
        expired = sorted(destination for destination, deadline
                         in self._expires.items() if deadline <= now + 1e-12)
        for destination in expired:
            entry = self.table.entry_for(destination)
            if entry is not None and entry.valid:
                self._invalidate(entry, entry.sequence + 1, "expired")
                self.route_expirations += 1
        self._rearm_expiry()

    def _invalidate(self, entry: RouteEntry, sequence: int, event: str) -> None:
        self.table.install(replace(entry, metric=INFINITE_METRIC,
                                   sequence=sequence,
                                   installed_at=self.sim.now))
        self._expires.pop(entry.destination, None)
        self.route_changes += 1
        self._log(entry.destination, event)

    # ------------------------------------------------------------------
    # Link events from neighbor discovery
    # ------------------------------------------------------------------
    def _on_neighbor_down(self, neighbor: IpAddress) -> None:
        if self._stopped:
            return
        lost: List[Tuple[int, int]] = []
        for entry in self.table.entries():
            if not entry.valid or entry.next_hop != neighbor:
                continue
            new_sequence = entry.sequence + 1
            self._invalidate(entry, new_sequence, "broken")
            self.route_breaks += 1
            lost.append((entry.destination.value, new_sequence))
        if lost:
            self._broadcast_rerr(lost)
        self._rearm_expiry()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def _log(self, destination: IpAddress, event: str) -> None:
        self.route_log.append((self.sim.now, destination, event))

    def repair_latencies(self, destination: IpAddress) -> List[float]:
        """Broken/expired → restored gaps (seconds) for ``destination``."""
        destination = IpAddress(destination)
        latencies: List[float] = []
        broken_at: Optional[float] = None
        for time, dest, event in self.route_log:
            if dest != destination:
                continue
            if event in ("broken", "expired"):
                if broken_at is None:
                    broken_at = time
            elif event in ("restored", "installed") and broken_at is not None:
                latencies.append(time - broken_at)
                broken_at = None
        return latencies

    def summary(self) -> dict:
        """Flat headline statistics (reports and tests)."""
        return {
            "rreqs_sent": self.rreqs_sent,
            "rreqs_forwarded": self.rreqs_forwarded,
            "rreps_sent": self.rreps_sent,
            "rreps_forwarded": self.rreps_forwarded,
            "rerrs_sent": self.rerrs_sent,
            "discoveries_started": self.discoveries_started,
            "discoveries_completed": self.discoveries_completed,
            "discoveries_failed": self.discoveries_failed,
            "route_changes": self.route_changes,
            "route_breaks": self.route_breaks,
            "route_expirations": self.route_expirations,
            "valid_routes": len(self.table),
            "neighbors": len(self.discovery),
            "hellos_sent": self.discovery.hellos_sent,
        }

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: the router summary as per-node gauges."""
        for key, value in self.summary().items():
            if isinstance(value, (int, float)):
                registry.set_gauge(f"aodv.{key}", value, node=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AodvRouter {self.name} routes={len(self.table)} "
                f"pending={len(self._pending)} seq={self._own_sequence}>")
