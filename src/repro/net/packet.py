"""The packet model.

Packets are metadata objects, not byte buffers: the simulator only needs
sizes, addresses and the handful of header fields the protocols act on.  A
:class:`Packet` carries an :class:`IpHeader` plus at most one transport
header (:class:`TcpHeader` or :class:`UdpHeader`) and an opaque payload size.

The size accounting reproduces the frame sizes reported in Section 5 of the
paper once MAC encapsulation (see :mod:`repro.mac.frames`) is added:
an MSS-sized (1357 B) TCP segment becomes a 1464 B MAC frame and a pure TCP
ACK becomes a 160 B MAC frame.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Union

from repro.net.address import IpAddress

#: Header sizes in bytes.
IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8

_packet_ids = itertools.count(1)


@dataclass(frozen=True)
class TcpHeader:
    """The TCP header fields the simulation acts on."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags_syn: bool = False
    flags_ack: bool = False
    flags_fin: bool = False
    flags_rst: bool = False
    window: int = 65535
    size_bytes: int = TCP_HEADER_BYTES

    @property
    def is_connection_setup(self) -> bool:
        """True for segments that are part of connection establishment/teardown."""
        return self.flags_syn or self.flags_fin or self.flags_rst

    def describe_flags(self) -> str:
        """Short textual flag summary, e.g. ``"SYN|ACK"``."""
        names = []
        if self.flags_syn:
            names.append("SYN")
        if self.flags_fin:
            names.append("FIN")
        if self.flags_rst:
            names.append("RST")
        if self.flags_ack:
            names.append("ACK")
        return "|".join(names) if names else "-"


@dataclass(frozen=True)
class UdpHeader:
    """The UDP header fields the simulation acts on."""

    src_port: int
    dst_port: int
    size_bytes: int = UDP_HEADER_BYTES


@dataclass(frozen=True)
class IpHeader:
    """The IP header fields the simulation acts on."""

    src: IpAddress
    dst: IpAddress
    protocol: str = "raw"
    ttl: int = 64
    size_bytes: int = IP_HEADER_BYTES


@dataclass
class Packet:
    """A network-layer packet (IP header + optional transport header + payload)."""

    ip: IpHeader
    payload_bytes: int = 0
    tcp: Optional[TcpHeader] = None
    udp: Optional[UdpHeader] = None
    created_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    #: Free-form annotations used by applications and statistics (e.g. the
    #: application-level sequence number of a CBR packet).
    annotations: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        if self.tcp is not None and self.udp is not None:
            raise ValueError("a packet cannot carry both TCP and UDP headers")
        # Sizes are fixed at construction (header objects are frozen and the
        # payload size never changes), but queried once per hop per receiver;
        # precompute instead of re-summing on each access.
        self._size_bytes = (
            self.ip.size_bytes + self.transport_header_bytes + self.payload_bytes)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def transport_header_bytes(self) -> int:
        """Size of the transport header (0 when there is none)."""
        if self.tcp is not None:
            return self.tcp.size_bytes
        if self.udp is not None:
            return self.udp.size_bytes
        return 0

    @property
    def size_bytes(self) -> int:
        """Total network-layer size: IP header + transport header + payload."""
        return self._size_bytes

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def is_tcp(self) -> bool:
        """True when the packet carries a TCP segment."""
        return self.tcp is not None

    @property
    def is_udp(self) -> bool:
        """True when the packet carries a UDP datagram."""
        return self.udp is not None

    @property
    def is_pure_tcp_ack(self) -> bool:
        """True for 'pure' TCP ACKs as defined in Section 4.2.4 of the paper.

        A pure TCP ACK carries no data and is not part of connection set-up or
        tear-down (no SYN/FIN/RST flag).
        """
        return (
            self.tcp is not None
            and self.tcp.flags_ack
            and self.payload_bytes == 0
            and not self.tcp.is_connection_setup
        )

    # ------------------------------------------------------------------
    # Constructors / copies
    # ------------------------------------------------------------------
    @classmethod
    def tcp_segment(cls, src: IpAddress, dst: IpAddress, header: TcpHeader,
                    payload_bytes: int = 0, created_at: float = 0.0,
                    annotations: Optional[Dict[str, Any]] = None) -> "Packet":
        """Build a TCP packet."""
        return cls(ip=IpHeader(src=src, dst=dst, protocol="tcp"), payload_bytes=payload_bytes,
                   tcp=header, created_at=created_at, annotations=dict(annotations or {}))

    @classmethod
    def udp_datagram(cls, src: IpAddress, dst: IpAddress, src_port: int, dst_port: int,
                     payload_bytes: int, created_at: float = 0.0,
                     annotations: Optional[Dict[str, Any]] = None) -> "Packet":
        """Build a UDP packet."""
        return cls(ip=IpHeader(src=src, dst=dst, protocol="udp"), payload_bytes=payload_bytes,
                   udp=UdpHeader(src_port=src_port, dst_port=dst_port),
                   created_at=created_at, annotations=dict(annotations or {}))

    @classmethod
    def broadcast_control(cls, src: IpAddress, payload_bytes: int, created_at: float = 0.0,
                          annotations: Optional[Dict[str, Any]] = None) -> "Packet":
        """Build a flooding/control packet addressed to the IP broadcast address."""
        return cls(ip=IpHeader(src=src, dst=IpAddress("255.255.255.255"), protocol="flood"),
                   payload_bytes=payload_bytes, created_at=created_at,
                   annotations=dict(annotations or {}))

    def copy(self) -> "Packet":
        """A shallow copy with a fresh uid (used when a packet is duplicated)."""
        return Packet(ip=self.ip, payload_bytes=self.payload_bytes, tcp=self.tcp, udp=self.udp,
                      created_at=self.created_at, annotations=dict(self.annotations))

    def with_decremented_ttl(self) -> "Packet":
        """Copy of the packet with TTL reduced by one (same uid)."""
        new_ip = replace(self.ip, ttl=self.ip.ttl - 1)
        packet = Packet(ip=new_ip, payload_bytes=self.payload_bytes, tcp=self.tcp, udp=self.udp,
                        created_at=self.created_at, annotations=dict(self.annotations))
        packet.uid = self.uid
        return packet

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        proto = "tcp" if self.is_tcp else ("udp" if self.is_udp else self.ip.protocol)
        return (f"<Packet #{self.uid} {proto} {self.ip.src}->{self.ip.dst} "
                f"{self.size_bytes}B>")
