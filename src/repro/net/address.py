"""IPv4-style addressing.

Addresses are modelled as 32-bit integers with the familiar dotted-quad
syntax.  The experiments only ever need a handful of host addresses in one
subnet, but the type is a proper value object so routing tables and TCP
connection tuples behave predictably.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Union

from repro.errors import AddressError


@total_ordering
class IpAddress:
    """An IPv4-style address."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[int, str, "IpAddress"]):
        if isinstance(value, IpAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFF:
                raise AddressError(f"IP address integer out of range: {value}")
            self._value = value
        elif isinstance(value, str):
            self._value = self._parse(value)
        else:
            raise AddressError(f"cannot build IpAddress from {value!r}")

    @staticmethod
    def _parse(text: str) -> int:
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed IPv4 address {text!r}")
        value = 0
        for part in parts:
            try:
                octet = int(part)
            except ValueError:
                raise AddressError(f"malformed IPv4 address {text!r}") from None
            if not 0 <= octet <= 255:
                raise AddressError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return value

    @classmethod
    def host(cls, index: int, network: str = "10.0.0.0") -> "IpAddress":
        """Convenience: the ``index``-th host inside ``network`` (index starts at 1)."""
        base = cls(network)
        return cls(base._value + index)

    @property
    def value(self) -> int:
        """The address as a 32-bit integer."""
        return self._value

    def __str__(self) -> str:
        v = self._value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IpAddress('{self}')"

    def __hash__(self) -> int:
        return hash(self._value)

    def __eq__(self, other: object) -> bool:
        # Fast path: address-to-address comparison is the hot case (routing
        # tables, delivery checks); coercion is only for int/str literals.
        if type(other) is IpAddress:
            return self._value == other._value
        if isinstance(other, (IpAddress, int, str)):
            try:
                return self._value == IpAddress(other)._value  # type: ignore[arg-type]
            except AddressError:
                return NotImplemented
        return NotImplemented

    def __lt__(self, other: "IpAddress") -> bool:
        if type(other) is IpAddress:
            return self._value < other._value
        return self._value < IpAddress(other)._value
