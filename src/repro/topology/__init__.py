"""Topology builders: the linear chains and star used in the paper."""

from repro.topology.network import Network
from repro.topology.builders import build_linear_chain, build_star

__all__ = ["Network", "build_linear_chain", "build_star"]
