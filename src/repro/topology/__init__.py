"""Topology builders: the paper's linear chains and star, plus mobile scenarios.

:class:`~repro.topology.mobile.MobileScenario` goes beyond the paper's
stationary testbed by wiring :mod:`repro.mobility` models to networks.
"""

from repro.topology.network import Network
from repro.topology.builders import build_linear_chain, build_star
from repro.topology.mobile import MobileScenario

__all__ = ["MobileScenario", "Network", "build_linear_chain", "build_star"]
