"""City-scale topology layouts (1,000–10,000 nodes).

The paper's topologies top out at a handful of nodes; the ``city01``
experiment family (:mod:`repro.experiments.city01_scale`) needs layouts three
orders of magnitude larger.  Two deterministic placements are provided:

* ``"grid"`` — a square lattice at ``spacing_m`` (default 8 m, the same
  spacing the mesh experiments use: safely inside the ~12.5 m decodability
  limit of the indoor propagation model, so every interior node has 8–12
  usable neighbours and the network is connected at any size);
* ``"clusters"`` — random cluster centres over the same extent with
  Gaussian scatter around each, modelling the uneven density of a real
  deployment.  Positions are drawn from a seeded stream, so a given seed
  always produces the same city.

Both placements emit positions in node-index order, which — via
registration order — fixes the spatial index's candidate ordering and keeps
runs byte-reproducible per seed.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ExperimentError
from repro.node.node import Node
from repro.topology.mobile import MobileScenario

#: Default lattice spacing, shared with the mesh experiments (metres).
CITY_SPACING_M = 8.0

CITY_PLACEMENTS = ("grid", "clusters")


def city_grid_side(node_count: int) -> int:
    """Side length of the smallest square lattice holding ``node_count``."""
    return math.ceil(math.sqrt(node_count))


def city_positions(node_count: int, spacing_m: float = CITY_SPACING_M,
                   placement: str = "grid",
                   cluster_count: Optional[int] = None,
                   cluster_sigma_m: Optional[float] = None,
                   rng=None) -> List[Tuple[float, float]]:
    """Deterministic positions for a city of ``node_count`` nodes.

    ``"grid"`` needs no randomness; ``"clusters"`` draws centres and scatter
    from ``rng`` (any object with ``uniform``/``gauss``, e.g. a simulator
    stream), which the caller must provide so the draws come from a seeded
    source.
    """
    if node_count < 1:
        raise ConfigurationError(f"node_count must be positive, got {node_count}")
    if spacing_m <= 0:
        raise ConfigurationError(f"spacing_m must be positive, got {spacing_m}")
    if placement not in CITY_PLACEMENTS:
        raise ConfigurationError(
            f"placement must be one of {CITY_PLACEMENTS}, got {placement!r}")
    side = city_grid_side(node_count)
    if placement == "grid":
        return [((index % side) * spacing_m, (index // side) * spacing_m)
                for index in range(node_count)]
    if rng is None:
        raise ConfigurationError("cluster placement needs a seeded rng")
    extent = max((side - 1) * spacing_m, spacing_m)
    count = cluster_count if cluster_count is not None else max(1, node_count // 64)
    if count < 1:
        raise ConfigurationError(f"cluster_count must be positive, got {count}")
    sigma = cluster_sigma_m if cluster_sigma_m is not None else 2.0 * spacing_m
    centres = [(rng.uniform(0.0, extent), rng.uniform(0.0, extent))
               for _ in range(count)]
    positions: List[Tuple[float, float]] = []
    for index in range(node_count):
        centre_x, centre_y = centres[index % count]
        positions.append((centre_x + rng.gauss(0.0, sigma),
                          centre_y + rng.gauss(0.0, sigma)))
    return positions


def populate_city(scenario: MobileScenario, node_count: int,
                  spacing_m: float = CITY_SPACING_M, placement: str = "grid",
                  cluster_count: Optional[int] = None,
                  cluster_sigma_m: Optional[float] = None) -> List[Node]:
    """Add a city of ``node_count`` stationary nodes to ``scenario``.

    Cluster placements draw from the simulator's ``city.placement`` stream,
    so the layout replicates per seed and across processes.
    """
    rng = None
    if placement == "clusters":
        rng = scenario.sim.random.stream("city.placement")
    positions = city_positions(node_count, spacing_m=spacing_m,
                               placement=placement, cluster_count=cluster_count,
                               cluster_sigma_m=cluster_sigma_m, rng=rng)
    return [scenario.add_node(position) for position in positions]


def nearby_flow_pairs(node_count: int, flow_count: int, seed: int,
                      max_hops: int = 2) -> List[Tuple[int, int]]:
    """Deterministic (source, destination) index pairs a few lattice hops apart.

    City-scale flows are deliberately *local* — a route a couple of grid hops
    long — so hundreds of them can coexist without every discovery flooding
    the whole city.  Pairs are distinct, drawn from a dedicated
    ``random.Random`` (independent of the simulator's streams, like the rt02
    sampler), and identical across protocol variants of the same seed.
    """
    if flow_count < 1:
        raise ExperimentError(f"flow_count must be positive, got {flow_count}")
    side = city_grid_side(node_count)
    offsets = [(dr, dc)
               for dr in range(-max_hops, max_hops + 1)
               for dc in range(-max_hops, max_hops + 1)
               if 0 < abs(dr) + abs(dc) <= max_hops]
    rng = random.Random(79999 * seed + 13)  # lint: disable=RPR001 -- flow-pair sampling seeded from the replica seed; runs before any simulator exists
    pairs: List[Tuple[int, int]] = []
    seen = set()
    attempts_left = flow_count * 200
    while len(pairs) < flow_count and attempts_left > 0:
        attempts_left -= 1
        source = rng.randrange(1, node_count + 1)
        row, col = divmod(source - 1, side)
        delta_row, delta_col = offsets[rng.randrange(len(offsets))]
        dest_row, dest_col = row + delta_row, col + delta_col
        destination = dest_row * side + dest_col + 1
        if not (0 <= dest_row < side and 0 <= dest_col < side):
            continue
        if destination > node_count or (source, destination) in seen:
            continue
        seen.add((source, destination))
        pairs.append((source, destination))
    if len(pairs) < flow_count:
        raise ExperimentError(
            f"could not place {flow_count} distinct local flows on "
            f"{node_count} nodes (got {len(pairs)})")
    return pairs


def spread_indices(node_count: int, count: int) -> List[int]:
    """``count`` node indices spread evenly over ``1..node_count``."""
    if count < 1 or count > node_count:
        raise ExperimentError(
            f"cannot pick {count} distinct nodes out of {node_count}")
    return [1 + (i * node_count) // count for i in range(count)]


def assert_distinct(indices: Sequence[int]) -> Sequence[int]:
    """Guard: ``spread_indices`` results must never collide."""
    if len(set(indices)) != len(indices):
        raise ExperimentError(f"node index collision in {indices}")
    return indices
