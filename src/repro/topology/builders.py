"""Builders for the paper's topologies.

Section 5: 2-hop and 3-hop linear chains (Figure 5) and a star with two
2-hop TCP sessions through a central relay (Figure 6).  Node spacing is
roughly 2.5 m and every node is within carrier-sense range of every other
node, so routes are installed statically.

Node numbering follows the paper: in a linear chain node 1 is the TCP
server/UDP source and node N the client/sink; in the star, nodes 3 and 4 are
the servers, node 2 is the central relay and node 1 is the client.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

from repro.channel.medium import WirelessChannel
from repro.core.policies import AggregationPolicy
from repro.errors import ConfigurationError
from repro.node.hydra import HydraProfile, default_hydra_profile
from repro.node.node import Node
from repro.sim.simulator import Simulator
from repro.topology.network import Network

#: Node spacing used in the paper's testbed (metres).
PAPER_NODE_SPACING_M = 2.5

PolicySpec = Union[AggregationPolicy, Dict[int, AggregationPolicy]]


def _policy_for(policy: PolicySpec, index: int) -> AggregationPolicy:
    if isinstance(policy, dict):
        try:
            return policy[index]
        except KeyError:
            raise ConfigurationError(f"no aggregation policy given for node {index}") from None
    return policy


def _install_chain_routes(network: Network, indices: Sequence[int]) -> None:
    """Static routes along a chain given in path order."""
    nodes = [network.node(i) for i in indices]
    for position, node in enumerate(nodes):
        for target_position, target in enumerate(nodes):
            if target is node:
                continue
            if target_position > position:
                next_hop = nodes[position + 1]
            else:
                next_hop = nodes[position - 1]
            node.add_route(target.ip, next_hop.ip)


def build_linear_chain(sim: Simulator, hops: int, policy: PolicySpec,
                       profile: Optional[HydraProfile] = None,
                       unicast_rate_mbps: Optional[float] = None,
                       broadcast_rate_mbps: Optional[float] = None,
                       spacing: float = PAPER_NODE_SPACING_M,
                       channel: Optional[WirelessChannel] = None,
                       use_block_ack: bool = False,
                       spatial_index: str = "auto") -> Network:
    """Build the linear topology of Figure 5 with ``hops`` hops (``hops+1`` nodes)."""
    if hops < 1:
        raise ConfigurationError("a chain needs at least one hop")
    profile = profile or default_hydra_profile()
    if unicast_rate_mbps is not None:
        profile = profile.with_rates(unicast_rate_mbps, broadcast_rate_mbps)
    channel = channel or WirelessChannel(sim, spatial_index=spatial_index)
    network = Network(sim, channel)

    node_count = hops + 1
    for index in range(1, node_count + 1):
        position = ((index - 1) * spacing, 0.0)
        node = Node(sim, channel, index=index, position=position,
                    policy=_policy_for(policy, index), profile=profile,
                    neighbors=network.neighbors, use_block_ack=use_block_ack)
        network.add_node(node)

    _install_chain_routes(network, list(range(1, node_count + 1)))
    return network


def build_star(sim: Simulator, policy: PolicySpec,
               profile: Optional[HydraProfile] = None,
               unicast_rate_mbps: Optional[float] = None,
               broadcast_rate_mbps: Optional[float] = None,
               spacing: float = PAPER_NODE_SPACING_M,
               channel: Optional[WirelessChannel] = None,
               use_block_ack: bool = False,
               spatial_index: str = "auto") -> Network:
    """Build the star topology of Figure 6.

    Four nodes: node 2 is the central relay; nodes 3 and 4 are TCP servers,
    node 1 is the client.  Both TCP sessions (3 → 1 and 4 → 1) traverse the
    relay, so at node 2 the TCP data frames share a unicast destination
    (node 1) while the reverse TCP ACKs are destined to two different servers
    — exactly the situation where broadcast aggregation helps and unicast-only
    aggregation cannot (Table 5).
    """
    profile = profile or default_hydra_profile()
    if unicast_rate_mbps is not None:
        profile = profile.with_rates(unicast_rate_mbps, broadcast_rate_mbps)
    channel = channel or WirelessChannel(sim, spatial_index=spatial_index)
    network = Network(sim, channel)

    positions = {
        2: (0.0, 0.0),                                   # central relay
        1: (spacing, 0.0),                               # client
        3: (-spacing * math.cos(math.radians(30)), spacing * math.sin(math.radians(30))),
        4: (-spacing * math.cos(math.radians(30)), -spacing * math.sin(math.radians(30))),
    }
    for index in (1, 2, 3, 4):
        node = Node(sim, channel, index=index, position=positions[index],
                    policy=_policy_for(policy, index), profile=profile,
                    neighbors=network.neighbors, use_block_ack=use_block_ack)
        network.add_node(node)

    centre = network.node(2)
    for leaf_index in (1, 3, 4):
        leaf = network.node(leaf_index)
        # Leaves reach everyone through the centre; the centre is adjacent to all.
        for other_index in (1, 2, 3, 4):
            if other_index == leaf_index:
                continue
            other = network.node(other_index)
            next_hop = other.ip if other_index == 2 else centre.ip
            leaf.add_route(other.ip, next_hop)
        centre.add_route(leaf.ip, leaf.ip)
    return network
