"""A scenario container: simulator, channel and nodes."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.channel.medium import WirelessChannel
from repro.errors import ConfigurationError
from repro.net.routing import NeighborTable
from repro.node.node import Node
from repro.sim.simulator import Simulator


class Network:
    """A set of nodes sharing one wireless channel (one collision domain)."""

    def __init__(self, sim: Simulator, channel: WirelessChannel,
                 neighbors: Optional[NeighborTable] = None) -> None:
        self.sim = sim
        self.channel = channel
        self.neighbors = neighbors or NeighborTable()
        self._nodes: Dict[int, Node] = {}

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register a node and its link-layer address."""
        if node.index in self._nodes:
            raise ConfigurationError(f"node index {node.index} already exists")
        self._nodes[node.index] = node
        self.neighbors.add(node.ip, node.mac_address)
        return node

    def node(self, index: int) -> Node:
        """Return node ``index`` (1-based, as in the paper's figures)."""
        try:
            return self._nodes[index]
        except KeyError:
            raise ConfigurationError(f"no node with index {index}") from None

    @property
    def nodes(self) -> List[Node]:
        """All nodes, ordered by index."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run the underlying simulator."""
        return self.sim.run(until=until)

    def set_unicast_rate(self, rate_mbps: float) -> None:
        """Pin the unicast PHY rate on every node."""
        for node in self.nodes:
            node.set_unicast_rate(rate_mbps)

    def set_broadcast_rate(self, rate_mbps: Optional[float]) -> None:
        """Pin the broadcast-portion PHY rate on every node."""
        for node in self.nodes:
            node.set_broadcast_rate(rate_mbps)

    def total_mac_transmissions(self) -> int:
        """Total DATA transmissions across all nodes (Table 3 / 7)."""
        return sum(node.mac_stats.data_transmissions for node in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Network nodes={len(self._nodes)}>"
