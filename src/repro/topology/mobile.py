"""Mobile-scenario builder.

The paper's topologies (:mod:`repro.topology.builders`) are frozen at build
time: stationary chains and stars with statically installed routes.
:class:`MobileScenario` goes beyond that setup — it wires
:mod:`repro.mobility` models to a :class:`~repro.topology.network.Network`,
so node positions (and with :class:`~repro.channel.propagation.LogNormalShadowing`,
link losses) change while traffic runs.

Typical use::

    sim = Simulator(seed=seed)
    scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                              propagation=LogNormalShadowing(sigma_db=4.0),
                              stop_time=duration)
    anchor = scenario.add_node((10.0, 10.0))                      # stationary
    rover = scenario.add_node((5.0, 5.0),
                              RandomWaypoint(area=(0, 0, 20, 20),
                                             speed_range=(2.0, 2.0)))
    scenario.connect_chain(anchor.index, rover.index)
    network = scenario.network
    sim.run(until=duration)

Nodes added without a model stay stationary at zero overhead (no update
events, identical link-budget floats), which is what lets mobile scenarios
coexist with bit-for-bit reproduction of the paper's stationary experiments.

``routing="dsdv"`` swaps the statically installed routes for the proactive
control plane of :mod:`repro.net.dynamic_routing`: every node runs HELLO
neighbor discovery plus DSDV advertisements (started automatically, bounded
by ``stop_time``), and multi-hop paths repair themselves as nodes move.
``routing="aodv"`` runs the reactive counterpart
(:mod:`repro.net.on_demand`): no proactive advertisements — routes are
discovered by RREQ flooding the first time traffic asks for them and kept
alive only while data flows.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.channel.medium import WirelessChannel
from repro.channel.propagation import PropagationModel
from repro.core.policies import AggregationPolicy
from repro.errors import ConfigurationError
from repro.mobility.models import MobilityModel
from repro.node.hydra import HydraProfile, default_hydra_profile
from repro.node.node import Node, RoutingConfig, validate_routing_mode
from repro.sim.simulator import Simulator
from repro.topology.builders import _install_chain_routes
from repro.topology.network import Network


class MobileScenario:
    """Builds a :class:`Network` whose nodes may carry mobility models.

    Parameters mirror the static builders; ``stop_time`` bounds every model's
    position-update events so runs whose traffic drains do not keep the event
    queue alive to the horizon.
    """

    def __init__(self, sim: Simulator, policy: AggregationPolicy,
                 profile: Optional[HydraProfile] = None,
                 propagation: Optional[PropagationModel] = None,
                 unicast_rate_mbps: Optional[float] = None,
                 broadcast_rate_mbps: Optional[float] = None,
                 use_block_ack: bool = False,
                 channel: Optional[WirelessChannel] = None,
                 stop_time: Optional[float] = None,
                 routing: str = "static",
                 routing_config: Optional[RoutingConfig] = None,
                 spatial_index: str = "auto") -> None:
        validate_routing_mode(routing)
        self.sim = sim
        self.policy = policy
        profile = profile or default_hydra_profile()
        if unicast_rate_mbps is not None:
            profile = profile.with_rates(unicast_rate_mbps, broadcast_rate_mbps)
        self.profile = profile
        self.use_block_ack = use_block_ack
        self.stop_time = stop_time
        self.routing = routing
        self.routing_config = routing_config
        if channel is not None and propagation is not None:
            raise ConfigurationError(
                "pass either an existing channel or a propagation model, not "
                "both: the channel's propagation would silently win")
        self.channel = channel or WirelessChannel(sim, propagation=propagation,
                                                  spatial_index=spatial_index)
        self.network = Network(sim, self.channel)
        self._next_index = 1

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, position: Tuple[float, float],
                 model: Optional[MobilityModel] = None,
                 index: Optional[int] = None,
                 policy: Optional[AggregationPolicy] = None) -> Node:
        """Add one node at ``position``; ``model=None`` keeps it stationary."""
        if index is None:
            index = self._next_index
        node = Node(self.sim, self.channel, index=index, position=position,
                    policy=policy or self.policy, profile=self.profile,
                    neighbors=self.network.neighbors,
                    use_block_ack=self.use_block_ack,
                    routing=self.routing, routing_config=self.routing_config)
        self.network.add_node(node)
        self._next_index = max(self._next_index, index) + 1
        if model is not None:
            node.set_mobility(model, stop_time=self.stop_time)
        node.start_routing(stop_time=self.stop_time)
        return node

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def connect_chain(self, *indices: int) -> None:
        """Install static chain routes along ``indices`` (in path order).

        Under ``routing="static"`` this keeps the paper's assumption: routes
        name the intended forwarding path, and mobility determines whether
        each hop is currently usable.  Under ``routing="dsdv"`` or
        ``routing="aodv"`` routes are discovered, so installing static ones
        is a configuration error.
        """
        self._require_static("connect_chain")
        _install_chain_routes(self.network, list(indices))

    def connect_pair(self, a: int, b: int) -> None:
        """Install direct (single-hop) routes between two nodes."""
        self._require_static("connect_pair")
        node_a, node_b = self.network.node(a), self.network.node(b)
        node_a.add_route(node_b.ip, node_b.ip)
        node_b.add_route(node_a.ip, node_a.ip)

    def _require_static(self, operation: str) -> None:
        if self.routing != "static":
            raise ConfigurationError(
                f"{operation}() installs static routes, but this scenario uses "
                f"routing={self.routing!r}, which discovers routes by itself")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mobile_nodes(self) -> Sequence[Node]:
        """Nodes that carry a mobility model."""
        return [node for node in self.network.nodes if node.mobility is not None]

    @property
    def routers(self) -> Sequence["object"]:
        """The DSDV/AODV routers of all nodes (empty under static routing)."""
        return [node.router for node in self.network.nodes
                if node.router is not None]

    def run(self, until: Optional[float] = None) -> float:
        """Run the underlying simulator."""
        return self.network.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MobileScenario nodes={len(self.network)} "
                f"mobile={len(self.mobile_nodes)}>")


#: Factory deciding each grid slot's mobility:
#: ``factory(row, col, area) -> Optional[MobilityModel]``; ``area`` is the
#: grid's bounding box ``(x_min, y_min, x_max, y_max)``.
GridModelFactory = Callable[[int, int, Tuple[float, float, float, float]],
                            Optional[MobilityModel]]


def populate_grid(scenario: MobileScenario, grid_side: int, spacing_m: float,
                  model_factory: Optional[GridModelFactory] = None) -> List[Node]:
    """Add a ``grid_side`` × ``grid_side`` grid of nodes to ``scenario``.

    Nodes are added in row-major order (so node indices, and therefore all
    derived RNG streams, are deterministic); returns them in that order.
    Shared by the mesh-routing experiments (``mob03``, ``rt02``) so the grid
    geometry and mobility wiring cannot drift between them.
    """
    extent = (grid_side - 1) * spacing_m
    area = (0.0, 0.0, extent, extent)
    nodes: List[Node] = []
    for row in range(grid_side):
        for col in range(grid_side):
            model = model_factory(row, col, area) if model_factory else None
            nodes.append(scenario.add_node((col * spacing_m, row * spacing_m),
                                           model))
    return nodes
