"""repro — a reproduction of "Improving the Performance of Multi-hop Wireless
Networks using Frame Aggregation and Broadcast for TCP ACKs" (Kim, Wright,
Nettles — ACM CoNEXT 2008).

The package contains a from-scratch discrete-event simulation of the Hydra
prototype's wireless stack (PHY, shared channel, 802.11 DCF MAC, static
routing, UDP and NewReno TCP) plus the paper's contribution: transmit-time
frame aggregation of unicast and broadcast subframes with cross-layer
classification of pure TCP ACKs as link-level broadcasts.

Quickstart::

    from repro import Simulator, build_linear_chain, broadcast_aggregation
    from repro.apps import run_file_transfer_pair

    sim = Simulator(seed=1)
    network = build_linear_chain(sim, hops=2, policy=broadcast_aggregation(),
                                 unicast_rate_mbps=1.3)
    sender, receiver = run_file_transfer_pair(network.node(1), network.node(3))
    sim.run(until=60.0)
    print(receiver.throughput_mbps(transfer_start=0.0), "Mbps")
"""

from repro.sim import Simulator
from repro.core import (
    AggregationPolicy,
    Aggregator,
    TcpAckClassifier,
    broadcast_aggregation,
    delayed_broadcast_aggregation,
    no_aggregation,
    unicast_aggregation,
)
from repro.phy import (
    ErrorModel,
    ErrorModelConfig,
    Phy,
    PhyConfig,
    PhyFrame,
    PhyRate,
    PhyTimingConfig,
    hydra_rate_table,
)
from repro.channel import WirelessChannel, hydra_indoor_propagation
from repro.mac import AggregatingMac, MacAddress, MacConfig, MacTimingProfile
from repro.net import ForwardingEngine, IpAddress, Packet, RoutingTable
from repro.transport import TcpConnection, TcpLayer, UdpLayer
from repro.node import HydraProfile, Node, default_hydra_profile
from repro.topology import Network, build_linear_chain, build_star
from repro.stats import ExperimentResult, Series, TableResult

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # simulation engine
    "Simulator",
    # core contribution
    "AggregationPolicy",
    "Aggregator",
    "TcpAckClassifier",
    "no_aggregation",
    "unicast_aggregation",
    "broadcast_aggregation",
    "delayed_broadcast_aggregation",
    # PHY / channel
    "Phy",
    "PhyConfig",
    "PhyFrame",
    "PhyRate",
    "PhyTimingConfig",
    "ErrorModel",
    "ErrorModelConfig",
    "hydra_rate_table",
    "WirelessChannel",
    "hydra_indoor_propagation",
    # MAC
    "AggregatingMac",
    "MacAddress",
    "MacConfig",
    "MacTimingProfile",
    # network / transport
    "Packet",
    "IpAddress",
    "RoutingTable",
    "ForwardingEngine",
    "TcpLayer",
    "TcpConnection",
    "UdpLayer",
    # nodes and topologies
    "Node",
    "HydraProfile",
    "default_hydra_profile",
    "Network",
    "build_linear_chain",
    "build_star",
    # results
    "ExperimentResult",
    "Series",
    "TableResult",
]
