"""Ambient observability session.

Experiments construct their :class:`~repro.sim.simulator.Simulator` instances
deep inside their runners (a ``fig09`` sweep creates one per parameter
point), so observability cannot be threaded through call signatures without
touching every experiment.  Instead, an :class:`ObsSession` is installed as
the process-wide *active session*; ``Simulator.__init__`` calls
:func:`on_simulator_created`, and the session adopts each new simulator as it
appears:

* enables its tracer (bounded by ``max_trace_records``),
* swaps its disabled :data:`~repro.obs.metrics.NULL_METRICS` for a live
  per-simulator :class:`~repro.obs.metrics.MetricsRegistry`,
* attaches the session's shared :class:`~repro.obs.capture.FrameCapture`
  and/or :class:`~repro.obs.profiler.HotPathProfiler`.

Everything adopted only *observes* — no RNG draws, no scheduling — so runs
are byte-identical with a session active or not (enforced by tests).

Use the :func:`observe` context manager::

    with observe(trace=True, metrics=True) as session:
        result = run_fig09(Fig09Params(...))
        session.export_timeline("timeline.json")
        session.export_metrics("metrics.json")
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.capture import FrameCapture
from repro.obs.journey import (
    JourneyRecorder,
    conservation_audit,
    flow_arrows,
    flow_summaries,
    journey_document,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import HotPathProfiler
from repro.obs.timeline import chrome_trace_document, export_chrome_trace


@dataclass(frozen=True)
class ObsConfig:
    """Which observability features an :class:`ObsSession` turns on."""

    trace: bool = False
    metrics: bool = False
    capture: bool = False
    profile: bool = False
    journey: bool = False
    #: Per-simulator tracer storage bound (listeners still see every record).
    max_trace_records: Optional[int] = 500_000
    #: Shared capture storage bound across all simulators of the session.
    max_capture_frames: Optional[int] = 500_000
    #: Per-simulator journey-recorder bound (packets past it are counted,
    #: not followed).
    max_journeys: Optional[int] = 200_000

    @property
    def any_enabled(self) -> bool:
        return (self.trace or self.metrics or self.capture or self.profile
                or self.journey)


class ObsSession:
    """Adopts every simulator created while active and owns the exports."""

    def __init__(self, config: ObsConfig) -> None:
        self.config = config
        #: Adopted simulators, in creation order (deterministic per run).
        self.simulators: List[Any] = []
        self.capture: Optional[FrameCapture] = (
            FrameCapture(max_frames=config.max_capture_frames)
            if config.capture else None)
        self.profiler: Optional[HotPathProfiler] = (
            HotPathProfiler() if config.profile else None)

    # ------------------------------------------------------------------
    # Adoption (called from Simulator.__init__ via the module hook)
    # ------------------------------------------------------------------
    def adopt(self, sim: Any) -> None:
        """Attach the session's instruments to a newly created simulator."""
        self.simulators.append(sim)
        if self.config.trace:
            sim.tracer.enabled = True
            if sim.tracer.max_records is None:
                sim.tracer.max_records = self.config.max_trace_records
        if self.config.metrics:
            sim.metrics = MetricsRegistry(enabled=True)
        if self.config.journey:
            sim.journey = JourneyRecorder(
                enabled=True, max_journeys=self.config.max_journeys)
        if self.capture is not None:
            sim.capture = self.capture
        if self.profiler is not None:
            sim.profiler = self.profiler

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def _trace_groups(self) -> List[Tuple[str, List[Any]]]:
        traced = [sim for sim in self.simulators if sim.tracer.records]
        many = len(traced) > 1
        return [(f"sim{index}/" if many else "", sim.tracer.records)
                for index, sim in enumerate(traced)]

    def _flow_groups(self) -> List[Tuple[str, List[Dict[str, Any]]]]:
        """Journey flow arrows keyed by the same prefixes as trace groups."""
        traced = [sim for sim in self.simulators if sim.tracer.records]
        many = len(traced) > 1
        return [(f"sim{index}/" if many else "", flow_arrows(sim.journey))
                for index, sim in enumerate(traced) if sim.journey.enabled]

    def timeline_document(self) -> Dict[str, Any]:
        """The merged Chrome trace-event document for every adopted run."""
        return chrome_trace_document(self._trace_groups(),
                                     flow_groups=self._flow_groups())

    def export_timeline(self, path: str) -> int:
        """Write the Chrome trace JSON to ``path``; returns the event count."""
        return export_chrome_trace(self._trace_groups(), path,
                                   flow_groups=self._flow_groups())

    def metrics_document(self) -> Dict[str, Any]:
        """Deterministic metrics dump: one snapshot per adopted simulator."""
        return {
            "simulations": [
                {"simulation": index, "metrics": sim.metrics.snapshot()}
                for index, sim in enumerate(self.simulators)
                if sim.metrics.enabled
            ],
        }

    def export_metrics(self, path: str) -> None:
        """Write the metrics document to ``path`` as sorted, indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.metrics_document(), handle, indent=1,
                      sort_keys=True, default=repr)

    def export_capture(self, path: str) -> int:
        """Write the shared frame capture as JSONL; returns the entry count."""
        if self.capture is None:
            raise ValueError("capture is not enabled for this session")
        return self.capture.to_jsonl(path)

    # ------------------------------------------------------------------
    # Journeys
    # ------------------------------------------------------------------
    def journey_recorders(self) -> List[Tuple[int, Any]]:
        """``(simulation index, recorder)`` for every journey-enabled sim."""
        return [(index, sim.journey)
                for index, sim in enumerate(self.simulators)
                if sim.journey.enabled]

    def journey_count(self) -> int:
        """Total number of packet journeys recorded across all simulators."""
        return sum(len(recorder) for _, recorder in self.journey_recorders())

    def journey_documents(self) -> Dict[str, Any]:
        """Full journey dump: one document per journey-enabled simulator."""
        return {
            "simulations": [
                {"simulation": index, **journey_document(recorder)}
                for index, recorder in self.journey_recorders()
            ],
        }

    def export_journeys(self, path: str) -> int:
        """Write the journey documents to ``path``; returns the journey count."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.journey_documents(), handle, indent=1,
                      sort_keys=True, default=repr)
        return self.journey_count()

    def flow_report(self, src: Optional[str] = None,
                    dst: Optional[str] = None) -> List[Dict[str, Any]]:
        """Merged per-flow summaries across every journey-enabled simulator."""
        report: List[Dict[str, Any]] = []
        for index, recorder in self.journey_recorders():
            for summary in flow_summaries(recorder, src=src, dst=dst):
                if len(self.journey_recorders()) > 1:
                    summary = {"simulation": index, **summary}
                report.append(summary)
        return report

    def conservation_report(self) -> Dict[str, Any]:
        """Per-simulator conservation audits plus the overall verdict."""
        audits = [
            {"simulation": index, "audit": conservation_audit(recorder)}
            for index, recorder in self.journey_recorders()
        ]
        return {
            "balanced": all(entry["audit"]["balanced"] for entry in audits),
            "simulations": audits,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ObsSession {self.config} sims={len(self.simulators)}>"


# ----------------------------------------------------------------------
# The ambient active session
# ----------------------------------------------------------------------
_ACTIVE: Optional[ObsSession] = None


def active_session() -> Optional[ObsSession]:
    """The currently installed session, or ``None``."""
    return _ACTIVE


def on_simulator_created(sim: Any) -> None:
    """Hook called by ``Simulator.__init__``; adopts ``sim`` when a session
    is active, otherwise does nothing (one global load and branch)."""
    if _ACTIVE is not None:
        _ACTIVE.adopt(sim)


@contextmanager
def observe(trace: bool = False, metrics: bool = False, capture: bool = False,
            profile: bool = False, journey: bool = False,
            max_trace_records: Optional[int] = 500_000,
            max_capture_frames: Optional[int] = 500_000,
            max_journeys: Optional[int] = 200_000
            ) -> Iterator[ObsSession]:
    """Install an :class:`ObsSession` for the duration of the block.

    Sessions do not nest: installing a second one while another is active
    raises, because both would try to adopt the same simulators.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("an observability session is already active")
    session = ObsSession(ObsConfig(
        trace=trace, metrics=metrics, capture=capture, profile=profile,
        journey=journey,
        max_trace_records=max_trace_records,
        max_capture_frames=max_capture_frames,
        max_journeys=max_journeys))
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = None
