"""Chrome trace-event export for :class:`~repro.sim.trace.Tracer` streams.

Converts trace records into the `Trace Event Format`_ consumed by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``: one *process* track per
node and one *thread* lane per layer (phy, mac, dsdv, ...), so a run reads
like a per-node protocol timeline.

Record mapping:

* paired begin/end records (currently the PHY's ``tx_start``/``tx_end``)
  become complete ``"X"`` duration slices, so transmissions render as bars
  with their real airtime;
* every other record becomes an instant ``"i"`` event with the record's
  fields attached as ``args``;
* ``"M"`` metadata events name the process/thread tracks;
* journey flow descriptors (from :func:`repro.obs.journey.flow_arrows`)
  become ``"s"``/``"t"``/``"f"`` flow events sharing an id, which Perfetto
  renders as arrows connecting one packet's hops across node tracks.

Timestamps are simulated microseconds.  Export order is deterministic: track
ids are assigned by sorted name, and events keep the tracer's emission order
(itself deterministic per seed).

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: ``(category, begin event) -> end event`` pairs folded into "X" slices.
DURATION_PAIRS: Dict[Tuple[str, str], str] = {
    ("phy", "tx_start"): "tx_end",
}

_END_EVENTS = {(category, end): begin
               for (category, begin), end in DURATION_PAIRS.items()}


def _split_source(source: str, category: str) -> Tuple[str, str]:
    """``"node1.phy"`` → ``("node1", "phy")``; undotted sources keep the
    record category as the lane name."""
    head, dot, tail = source.rpartition(".")
    if dot and head:
        return head, tail
    return source, category


def chrome_trace_events(records: Iterable[Any],
                        source_prefix: str = "",
                        flows: Optional[Sequence[Dict[str, Any]]] = None
                        ) -> List[Dict[str, Any]]:
    """Convert trace records into a list of Chrome trace-event dicts.

    ``records`` is any iterable of objects with the
    :class:`~repro.sim.trace.TraceRecord` attributes (``time``, ``source``,
    ``category``, ``event``, ``fields``).  ``source_prefix`` namespaces the
    node tracks (used when merging several simulators into one timeline).
    ``flows`` is an optional list of journey flow descriptors (``{"id",
    "name", "points": [(time, node, lane), ...]}``) rendered as flow arrows.
    """
    events: List[Dict[str, Any]] = []
    # (pid_name, tid_name, category, begin event) -> index of the open slice
    open_slices: Dict[Tuple[str, str, str, str], int] = {}
    track_names: set = set()

    for record in records:
        node, lane = _split_source(record.source, record.category)
        if source_prefix:
            node = f"{source_prefix}{node}"
        track_names.add((node, lane))
        ts = record.time * 1e6
        pair_end = DURATION_PAIRS.get((record.category, record.event))
        if pair_end is not None:
            event: Dict[str, Any] = {
                "name": record.event, "ph": "X", "ts": ts, "dur": 0.0,
                "pid": node, "tid": lane, "cat": record.category,
                "args": dict(record.fields),
            }
            open_slices[(node, lane, record.category, record.event)] = len(events)
            events.append(event)
            continue
        begin = _END_EVENTS.get((record.category, record.event))
        if begin is not None:
            index = open_slices.pop((node, lane, record.category, begin), None)
            if index is not None:
                slice_event = events[index]
                slice_event["dur"] = max(0.0, ts - slice_event["ts"])
                slice_event["name"] = begin.replace("_start", "")
                slice_event["args"].update(record.fields)
                continue
            # Unmatched end (e.g. the begin fell past max_records): degrade
            # to an instant event rather than dropping the information.
        events.append({
            "name": record.event, "ph": "i", "ts": ts, "s": "t",
            "pid": node, "tid": lane, "cat": record.category,
            "args": dict(record.fields),
        })

    for flow in flows or ():
        points = flow["points"]
        last = len(points) - 1
        for index, (time, node, lane) in enumerate(points):
            if source_prefix:
                node = f"{source_prefix}{node}"
            track_names.add((node, lane))
            event = {
                "name": flow["name"],
                "ph": "s" if index == 0 else ("f" if index == last else "t"),
                "ts": time * 1e6, "pid": node, "tid": lane,
                "cat": "journey", "id": flow["id"],
            }
            if index == last:
                event["bp"] = "e"
            events.append(event)

    # Stable numeric ids per track, assigned by sorted name so the export is
    # independent of event arrival order.
    pid_names = sorted({node for node, _ in track_names})
    pid_ids = {name: index + 1 for index, name in enumerate(pid_names)}
    tid_ids = {pair: index + 1 for index, pair in enumerate(sorted(track_names))}
    for event in events:
        node, lane = event["pid"], event["tid"]
        event["pid"] = pid_ids[node]
        event["tid"] = tid_ids[(node, lane)]

    metadata: List[Dict[str, Any]] = []
    for name in pid_names:
        metadata.append({"name": "process_name", "ph": "M", "pid": pid_ids[name],
                         "args": {"name": name}})
    for (node, lane) in sorted(track_names):
        metadata.append({"name": "thread_name", "ph": "M", "pid": pid_ids[node],
                         "tid": tid_ids[(node, lane)], "args": {"name": lane}})
    return metadata + events


def chrome_trace_document(
        record_groups: Sequence[Tuple[str, Iterable[Any]]],
        flow_groups: Optional[Sequence[Tuple[str, Sequence[Dict[str, Any]]]]] = None
        ) -> Dict[str, Any]:
    """Build the full trace JSON document from ``(prefix, records)`` groups.

    A single-simulator run passes one group with an empty prefix; a
    multi-simulator experiment passes one group per simulator (prefixes like
    ``"sim0/"``) and gets every node track of every run in one timeline.
    ``flow_groups`` optionally carries per-prefix journey flow descriptors
    (see :func:`chrome_trace_events`) keyed by the same prefixes.
    """
    flow_map = dict(flow_groups or ())
    events: List[Dict[str, Any]] = []
    for prefix, records in record_groups:
        events.extend(chrome_trace_events(records, source_prefix=prefix,
                                          flows=flow_map.get(prefix)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(
        record_groups: Sequence[Tuple[str, Iterable[Any]]],
        path: str,
        flow_groups: Optional[Sequence[Tuple[str, Sequence[Dict[str, Any]]]]] = None
        ) -> int:
    """Write the timeline JSON to ``path``; returns the trace-event count."""
    document = chrome_trace_document(record_groups, flow_groups=flow_groups)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"), default=repr)
    return len(document["traceEvents"])
