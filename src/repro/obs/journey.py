"""Per-packet journey tracing: flight recorder, waterfalls, conservation audit.

A *journey* is the life of one network-layer packet, identified by its
``Packet.uid`` and followed through every layer it touches: transport send,
routing decision (including buffer-while-discovering), MAC queueing,
aggregation into a specific subframe of a specific A-MPDU attempt, per-attempt
PHY reception outcome, retry chains and a terminal fate — delivered, or a
reason-coded drop (``queue_full``, ``no_route``, ``rreq_exhausted``,
``retry_limit``, ``ttl``, ...).

The :class:`JourneyRecorder` is the hot-path half: a side table keyed by
packet uid (packets are never mutated, so byte-determinism is untouched) that
components append :class:`JourneyEvent` records to.  Every call site sits
behind an ``.enabled`` guard (enforced by lint rule RPR005 for the hot-path
modules), and :data:`NULL_JOURNEY` is the shared disabled instance every
:class:`~repro.sim.simulator.Simulator` starts with, so the disabled cost is
one attribute load and a branch per site.

The analysis half runs off the hot path, after the simulation:

* :func:`journey_outcome` replays one journey's events through a custody
  state machine (who is responsible for the packet right now?) and derives
  the per-node ledger entries plus the journey's fate;
* :func:`conservation_audit` folds every journey's outcome into a per-node
  ledger and asserts ``entered = delivered + transferred + Σ drops(reason) +
  in-flight`` — a packet that vanished without an exit event is a *leak* and
  fails the audit;
* :func:`journey_waterfall` decomposes a delivered unicast journey's
  end-to-end latency hop by hop into forwarding, queue wait, aggregation
  wait, retry wait and airtime — telescoping sums, so attribution is exact;
* :func:`flow_summaries` groups journeys into (src, dst, protocol) flows
  with fate counts and mean waterfall components;
* :func:`flow_arrows` emits the point lists the timeline exporter turns
  into Perfetto flow arrows.

Custody model
-------------

Each node holds *custody* of a journey from an **enter** event until an
**exit** event:

=============================  =======================================
enter                          ``net.origin`` (locally originated),
                               ``mac.deliver`` (received from the air)
exit: delivered                ``net.deliver``, ``net.deliver_bcast``
exit: transferred              ``mac.acked`` (link-level ACK received),
                               ``mac.sent_unacked`` (broadcast portion
                               transmitted; no ACK expected)
exit: dropped                  ``net.drop``/``mac.drop`` with a ``reason``
valid in-flight positions      ``mac.enqueue``, ``mac.aggregate``,
                               ``mac.tx``, ``mac.retry``, ``net.buffer``
=============================  =======================================

A transport-layer drop (``udp.drop``/``tcp.drop``) arrives *after* the
network layer counted the packet delivered and reclassifies that delivery.
Any journey whose custody is still open at audit time on an event that is
not a valid in-flight position is a leak.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Journey",
    "JourneyEvent",
    "JourneyRecorder",
    "NULL_JOURNEY",
    "conservation_audit",
    "flow_arrows",
    "flow_summaries",
    "format_flow_report",
    "journey_document",
    "journey_outcome",
    "journey_waterfall",
    "node_of",
]

#: The IP broadcast address as the string journeys carry.
_BROADCAST_DST = "255.255.255.255"


def node_of(name: str, layer: str) -> str:
    """Node identity of a component named ``"<node>.<layer>"``.

    ``node_of("node1.mac", "mac")`` → ``"node1"``.  Components whose names do
    not follow the convention (hand-wired tests) keep their full name, which
    is still consistent per component.
    """
    suffix = "." + layer
    if name.endswith(suffix):
        return name[: -len(suffix)]
    return name


class JourneyEvent:
    """One hop-level observation on a journey."""

    __slots__ = ("time", "node", "layer", "event", "fields")

    def __init__(self, time: float, node: str, layer: str, event: str,
                 fields: Optional[Dict[str, Any]]) -> None:
        self.time = time
        self.node = node
        self.layer = layer
        self.event = event
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"t": self.time, "node": self.node,
                                 "layer": self.layer, "event": self.event}
        if self.fields:
            entry["fields"] = dict(self.fields)
        return entry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<JourneyEvent t={self.time:.6f} {self.node} "
                f"{self.layer}.{self.event}>")


class Journey:
    """The recorded life of one packet."""

    __slots__ = ("journey_id", "src", "dst", "protocol", "payload_bytes",
                 "origin_time", "events")

    def __init__(self, journey_id: int, src: str, dst: str, protocol: str,
                 payload_bytes: int, origin_time: float) -> None:
        self.journey_id = journey_id
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.payload_bytes = payload_bytes
        self.origin_time = origin_time
        self.events: List[JourneyEvent] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Journey #{self.journey_id} {self.src}->{self.dst} "
                f"{self.protocol} events={len(self.events)}>")


class JourneyRecorder:
    """Flight recorder for packet journeys (the per-simulator instrument).

    Journey ids are assigned in ``begin()`` order, which is deterministic per
    seed, so exports are reproducible.  ``max_journeys`` bounds memory; once
    reached, new packets are counted in ``dropped`` and silently skipped
    (``record()`` on an untracked uid is a no-op), which the audit reports as
    truncation rather than failing.
    """

    __slots__ = ("enabled", "max_journeys", "dropped", "journeys", "_by_uid")

    def __init__(self, enabled: bool = False,
                 max_journeys: Optional[int] = 200_000) -> None:
        self.enabled = enabled
        self.max_journeys = max_journeys
        self.dropped = 0
        self.journeys: List[Journey] = []
        self._by_uid: Dict[int, Journey] = {}

    def __len__(self) -> int:
        return len(self.journeys)

    def begin(self, now: float, node: str, layer: str, packet: Any,
              event: str = "send", **fields: Any) -> None:
        """Open a journey for ``packet`` (idempotent) and record ``event``.

        Called at the packet's first appearance — the transport send or, for
        packets originated below the transport layer, the network-layer
        origin.  A later ``begin`` on an already-open journey just records.
        """
        uid = packet.uid
        journey = self._by_uid.get(uid)
        if journey is None:
            if (self.max_journeys is not None
                    and len(self.journeys) >= self.max_journeys):
                self.dropped += 1
                return
            ip = packet.ip
            journey = Journey(
                journey_id=len(self.journeys) + 1,
                src=str(ip.src), dst=str(ip.dst), protocol=ip.protocol,
                payload_bytes=packet.payload_bytes, origin_time=now)
            self.journeys.append(journey)
            self._by_uid[uid] = journey
        journey.events.append(
            JourneyEvent(now, node, layer, event, fields or None))

    def record(self, now: float, node: str, layer: str, event: str,
               packet: Any, **fields: Any) -> None:
        """Append one event to ``packet``'s journey; no-op when untracked."""
        journey = self._by_uid.get(packet.uid)
        if journey is None:
            return
        journey.events.append(
            JourneyEvent(now, node, layer, event, fields or None))


#: The shared disabled recorder installed on every simulator by default.
#: Never enable or record into this instance.
NULL_JOURNEY = JourneyRecorder(enabled=False, max_journeys=0)


# ----------------------------------------------------------------------
# Custody replay: per-journey outcome
# ----------------------------------------------------------------------
#: enter event -> which ledger column it credits.
_ENTER_EVENTS: Dict[Tuple[str, str], str] = {
    ("net", "origin"): "originated",
    ("mac", "deliver"): "received",
}
_DELIVER_EXITS = {("net", "deliver"), ("net", "deliver_bcast")}
_TRANSFER_EXITS = {("mac", "acked"), ("mac", "sent_unacked")}
_DROP_EVENTS = {("net", "drop"), ("mac", "drop")}
_RECLASSIFY_DROPS = {("udp", "drop"), ("tcp", "drop")}
_IN_FLIGHT_POSITIONS = {("mac", "enqueue"), ("mac", "aggregate"),
                        ("mac", "tx"), ("mac", "retry"), ("net", "buffer")}


class JourneyOutcome:
    """Ledger contributions and derived fate of one journey."""

    __slots__ = ("originated", "received", "delivered", "transferred",
                 "drops", "in_flight", "leaks", "fate", "fate_reason")

    def __init__(self) -> None:
        self.originated: Counter = Counter()        # node -> count
        self.received: Counter = Counter()          # node -> count
        self.delivered: Counter = Counter()         # node -> count
        self.transferred: Counter = Counter()       # node -> count
        self.drops: Counter = Counter()             # (node, reason) -> count
        self.in_flight: Dict[str, str] = {}         # node -> "layer.event"
        self.leaks: Dict[str, str] = {}             # node -> "layer.event"
        self.fate = "untracked"
        self.fate_reason: Optional[str] = None


def journey_outcome(journey: Journey) -> JourneyOutcome:
    """Replay ``journey`` through the custody state machine."""
    out = JourneyOutcome()
    open_custody: Dict[str, Tuple[str, str]] = {}
    last_drop_reason: Optional[str] = None
    for ev in journey.events:
        key = (ev.layer, ev.event)
        node = ev.node
        column = _ENTER_EVENTS.get(key)
        if column is not None:
            getattr(out, column)[node] += 1
            open_custody[node] = key
        elif key in _DELIVER_EXITS:
            open_custody.pop(node, None)
            out.delivered[node] += 1
        elif key in _TRANSFER_EXITS:
            open_custody.pop(node, None)
            out.transferred[node] += 1
        elif key in _DROP_EVENTS:
            reason = (ev.fields or {}).get("reason", "unspecified")
            last_drop_reason = reason
            if node in open_custody:
                del open_custody[node]
            else:
                # A drop after local delivery (e.g. no handler registered for
                # the protocol): reclassify the delivery.  A genuinely
                # spurious drop pushes the counter negative, which the audit
                # reports as an imbalance instead of hiding it.
                out.delivered[node] -= 1
            out.drops[(node, reason)] += 1
        elif key in _RECLASSIFY_DROPS:
            reason = (ev.fields or {}).get("reason", "unspecified")
            last_drop_reason = reason
            out.delivered[node] -= 1
            out.drops[(node, reason)] += 1
        elif node in open_custody:
            open_custody[node] = key

    for node, key in open_custody.items():
        label = f"{key[0]}.{key[1]}"
        if key in _IN_FLIGHT_POSITIONS:
            out.in_flight[node] = label
        else:
            out.leaks[node] = label

    delivered_total = sum(out.delivered.values())
    if out.leaks:
        out.fate = "leaked"
    elif out.in_flight:
        out.fate = "in_flight"
    elif delivered_total > 0:
        out.fate = "delivered"
    elif out.drops:
        out.fate = "dropped"
        out.fate_reason = last_drop_reason
    elif sum(out.transferred.values()) > 0:
        # Transmitted without acknowledgement (a broadcast) and decoded by
        # nobody: physically lost on the air, fully accounted at the sender.
        out.fate = "lost_on_air"
    return out


# ----------------------------------------------------------------------
# Conservation audit
# ----------------------------------------------------------------------
def conservation_audit(recorder: JourneyRecorder) -> Dict[str, Any]:
    """Per-node packet-conservation ledger over every recorded journey.

    For every node the identity ``originated + received == delivered +
    transferred + Σ drops(reason) + in_flight`` must hold, and no journey may
    leak (custody open on an event that is not a valid in-flight position).
    The returned document has ``balanced`` (the hard pass/fail bit), per-node
    ledgers, totals, and the violation list.
    """
    ledgers: Dict[str, Dict[str, Any]] = {}
    violations: List[Dict[str, Any]] = []

    def ledger(node: str) -> Dict[str, Any]:
        entry = ledgers.get(node)
        if entry is None:
            entry = {"originated": 0, "received": 0, "delivered": 0,
                     "transferred": 0, "drops": {}, "in_flight": {},
                     "leaked": 0}
            ledgers[node] = entry
        return entry

    for journey in recorder.journeys:
        outcome = journey_outcome(journey)
        for node, count in outcome.originated.items():
            ledger(node)["originated"] += count
        for node, count in outcome.received.items():
            ledger(node)["received"] += count
        for node, count in outcome.delivered.items():
            ledger(node)["delivered"] += count
        for node, count in outcome.transferred.items():
            ledger(node)["transferred"] += count
        for (node, reason), count in outcome.drops.items():
            drops = ledger(node)["drops"]
            drops[reason] = drops.get(reason, 0) + count
        for node, position in outcome.in_flight.items():
            in_flight = ledger(node)["in_flight"]
            in_flight[position] = in_flight.get(position, 0) + 1
        for node, position in outcome.leaks.items():
            ledger(node)["leaked"] += 1
            violations.append({
                "kind": "leak", "journey": journey.journey_id, "node": node,
                "last_event": position,
                "flow": f"{journey.src}->{journey.dst}"})

    totals = {"originated": 0, "received": 0, "delivered": 0,
              "transferred": 0, "dropped": 0, "in_flight": 0, "leaked": 0}
    for node in sorted(ledgers):
        entry = ledgers[node]
        dropped = sum(entry["drops"].values())
        in_flight = sum(entry["in_flight"].values())
        entered = entry["originated"] + entry["received"]
        exited = entry["delivered"] + entry["transferred"] + dropped
        entry["balanced"] = (
            entered == exited + in_flight + entry["leaked"]
            and entry["leaked"] == 0
            and entry["delivered"] >= 0
            and all(count >= 0 for count in entry["drops"].values()))
        if not entry["balanced"] and entry["leaked"] == 0:
            violations.append({
                "kind": "imbalance", "node": node,
                "entered": entered,
                "accounted": exited + in_flight + entry["leaked"]})
        totals["originated"] += entry["originated"]
        totals["received"] += entry["received"]
        totals["delivered"] += entry["delivered"]
        totals["transferred"] += entry["transferred"]
        totals["dropped"] += dropped
        totals["in_flight"] += in_flight
        totals["leaked"] += entry["leaked"]

    return {
        "balanced": not violations,
        "journeys": len(recorder.journeys),
        "truncated": recorder.dropped,
        "nodes": {node: ledgers[node] for node in sorted(ledgers)},
        "totals": totals,
        "violations": violations,
    }


# ----------------------------------------------------------------------
# Latency waterfalls
# ----------------------------------------------------------------------
_WATERFALL_COMPONENTS = ("forwarding", "queue", "aggregation", "retries",
                        "airtime")


def journey_waterfall(journey: Journey) -> Optional[Dict[str, Any]]:
    """Hop-by-hop latency decomposition of a delivered unicast journey.

    Per hop: ``forwarding`` (enter → MAC enqueue, including any
    buffer-while-discovering wait), ``queue`` (enqueue → first aggregation),
    ``aggregation`` (first aggregation → first transmission, i.e. RTS/CTS
    and inter-frame spacing), ``retries`` (first → last transmission) and
    ``airtime`` (last transmission → custody at the next node).  Hop
    boundaries share the same event timestamp, so the components telescope
    and attribution over the end-to-end latency is exact.

    Returns ``None`` for journeys that were not delivered or are broadcast
    (a broadcast journey is a tree, not a chain).
    """
    if journey.dst == _BROADCAST_DST:
        return None
    hops: List[Dict[str, Any]] = []
    current: Optional[Dict[str, Any]] = None
    final_exit: Optional[float] = None
    for ev in journey.events:
        key = (ev.layer, ev.event)
        if key in _ENTER_EVENTS:
            if current is not None:
                current["exit"] = ev.time
                hops.append(current)
            current = {"node": ev.node, "enter": ev.time, "enqueue": None,
                       "first_aggregate": None, "first_tx": None,
                       "last_tx": None, "retry_count": 0, "exit": None}
            continue
        if current is None or ev.node != current["node"]:
            continue
        if key == ("mac", "enqueue") and current["enqueue"] is None:
            current["enqueue"] = ev.time
        elif key == ("mac", "aggregate") and current["first_aggregate"] is None:
            current["first_aggregate"] = ev.time
        elif key == ("mac", "tx"):
            if current["first_tx"] is None:
                current["first_tx"] = ev.time
            current["last_tx"] = ev.time
        elif key == ("mac", "retry"):
            current["retry_count"] += 1
        elif key == ("net", "deliver"):
            current["exit"] = ev.time
            hops.append(current)
            final_exit = ev.time
            current = None
    if final_exit is None:
        return None

    components = {name: 0.0 for name in _WATERFALL_COMPONENTS}
    hop_entries: List[Dict[str, Any]] = []
    for hop in hops:
        enter, exit_time = hop["enter"], hop["exit"]
        enqueue = hop["enqueue"]
        if enqueue is None:
            # Loopback delivery or the terminal node: no MAC involvement.
            parts = {"forwarding": exit_time - enter, "queue": 0.0,
                     "aggregation": 0.0, "retries": 0.0, "airtime": 0.0}
        else:
            first_aggregate = hop["first_aggregate"]
            first_tx = hop["first_tx"]
            last_tx = hop["last_tx"]
            if first_aggregate is None:
                first_aggregate = first_tx if first_tx is not None else exit_time
            if first_tx is None:
                first_tx = last_tx = exit_time
            parts = {
                "forwarding": enqueue - enter,
                "queue": first_aggregate - enqueue,
                "aggregation": first_tx - first_aggregate,
                "retries": last_tx - first_tx,
                "airtime": exit_time - last_tx,
            }
        for name in _WATERFALL_COMPONENTS:
            components[name] += parts[name]
        if exit_time > enter or enqueue is not None:
            hop_entries.append({
                "node": hop["node"], "enter": enter, "exit": exit_time,
                "retry_count": hop["retry_count"], **parts})

    total = final_exit - journey.origin_time
    attributed = sum(components.values())
    return {
        "total": total,
        "attributed": attributed,
        "attribution": attributed / total if total > 0 else 1.0,
        "components": components,
        "hops": hop_entries,
    }


# ----------------------------------------------------------------------
# Flow grouping
# ----------------------------------------------------------------------
def flow_summaries(recorder: JourneyRecorder,
                   src: Optional[str] = None,
                   dst: Optional[str] = None) -> List[Dict[str, Any]]:
    """Per-(src, dst, protocol) fate counts and mean waterfall components."""
    flows: Dict[Tuple[str, str, str], Dict[str, Any]] = {}
    for journey in recorder.journeys:
        if src is not None and journey.src != src:
            continue
        if dst is not None and journey.dst != dst:
            continue
        key = (journey.src, journey.dst, journey.protocol)
        flow = flows.get(key)
        if flow is None:
            flow = {"src": key[0], "dst": key[1], "protocol": key[2],
                    "journeys": 0, "fates": {}, "drop_reasons": {},
                    "latencies": [], "components": Counter(),
                    "attributions": [], "hops": {}}
            flows[key] = flow
        flow["journeys"] += 1
        outcome = journey_outcome(journey)
        flow["fates"][outcome.fate] = flow["fates"].get(outcome.fate, 0) + 1
        if outcome.fate == "dropped" and outcome.fate_reason is not None:
            reasons = flow["drop_reasons"]
            reasons[outcome.fate_reason] = (
                reasons.get(outcome.fate_reason, 0) + 1)
        if outcome.fate != "delivered":
            continue
        waterfall = journey_waterfall(journey)
        if waterfall is None:
            continue
        flow["latencies"].append(waterfall["total"])
        flow["attributions"].append(waterfall["attribution"])
        for name, value in waterfall["components"].items():
            flow["components"][name] += value
        for index, hop in enumerate(waterfall["hops"]):
            hop_key = (index, hop["node"])
            entry = flow["hops"].get(hop_key)
            if entry is None:
                entry = {"count": 0, "retry_count": 0,
                         **{name: 0.0 for name in _WATERFALL_COMPONENTS}}
                flow["hops"][hop_key] = entry
            entry["count"] += 1
            entry["retry_count"] += hop["retry_count"]
            for name in _WATERFALL_COMPONENTS:
                entry[name] += hop[name]

    summaries: List[Dict[str, Any]] = []
    for key in sorted(flows):
        flow = flows[key]
        latencies = flow["latencies"]
        measured = len(latencies)
        summary: Dict[str, Any] = {
            "src": flow["src"], "dst": flow["dst"],
            "protocol": flow["protocol"], "journeys": flow["journeys"],
            "fates": dict(sorted(flow["fates"].items())),
            "drop_reasons": dict(sorted(flow["drop_reasons"].items())),
            "measured": measured,
        }
        if measured:
            summary["latency"] = {
                "mean": sum(latencies) / measured,
                "min": min(latencies), "max": max(latencies)}
            summary["attribution"] = (
                sum(flow["attributions"]) / measured)
            summary["components"] = {
                name: flow["components"][name] / measured
                for name in _WATERFALL_COMPONENTS}
            summary["hops"] = [
                {"hop": index + 1, "node": node,
                 "count": entry["count"],
                 "mean_retries": entry["retry_count"] / entry["count"],
                 **{name: entry[name] / entry["count"]
                    for name in _WATERFALL_COMPONENTS}}
                for (index, node), entry in sorted(flow["hops"].items())]
        summaries.append(summary)
    return summaries


def format_flow_report(summaries: Sequence[Dict[str, Any]]) -> str:
    """Human-readable hop-by-hop breakdown of flow summaries (CLI output)."""
    if not summaries:
        return "no matching journeys"

    def ms(value: float) -> str:
        return f"{value * 1e3:.2f} ms"

    lines: List[str] = []
    for flow in summaries:
        fates = ", ".join(f"{fate} {count}"
                          for fate, count in flow["fates"].items())
        if flow["drop_reasons"]:
            reasons = ", ".join(f"{reason} {count}" for reason, count
                                in flow["drop_reasons"].items())
            fates += f" [{reasons}]"
        lines.append(f"flow {flow['src']} -> {flow['dst']} "
                     f"({flow['protocol']}): {flow['journeys']} journey(s); "
                     f"{fates}")
        if not flow["measured"]:
            continue
        latency = flow["latency"]
        lines.append(
            f"  end-to-end latency mean {ms(latency['mean'])} "
            f"(min {ms(latency['min'])}, max {ms(latency['max'])}), "
            f"attribution {flow['attribution'] * 100:.1f}%")
        components = flow["components"]
        lines.append("  mean decomposition: " + " | ".join(
            f"{name} {ms(components[name])}"
            for name in _WATERFALL_COMPONENTS))
        for hop in flow.get("hops", []):
            lines.append(
                f"  hop {hop['hop']} {hop['node']}: " + ", ".join(
                    f"{name} {ms(hop[name])}"
                    for name in _WATERFALL_COMPONENTS)
                + f", mean retries {hop['mean_retries']:.2f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
def journey_document(recorder: JourneyRecorder,
                     include_events: bool = True) -> Dict[str, Any]:
    """The full JSON-ready journey document for one simulator."""
    journeys: List[Dict[str, Any]] = []
    for journey in recorder.journeys:
        outcome = journey_outcome(journey)
        entry: Dict[str, Any] = {
            "id": journey.journey_id,
            "src": journey.src, "dst": journey.dst,
            "protocol": journey.protocol,
            "payload_bytes": journey.payload_bytes,
            "origin": journey.origin_time,
            "fate": outcome.fate,
        }
        if outcome.fate_reason is not None:
            entry["fate_reason"] = outcome.fate_reason
        if outcome.drops:
            entry["drops"] = [
                {"node": node, "reason": reason, "count": count}
                for (node, reason), count in sorted(outcome.drops.items())]
        delivered = sum(outcome.delivered.values())
        if delivered:
            entry["delivered"] = delivered
        if outcome.in_flight:
            entry["in_flight"] = dict(sorted(outcome.in_flight.items()))
        if outcome.leaks:
            entry["leaks"] = dict(sorted(outcome.leaks.items()))
        waterfall = journey_waterfall(journey)
        if waterfall is not None:
            entry["waterfall"] = waterfall
        if include_events:
            entry["events"] = [ev.to_dict() for ev in journey.events]
        journeys.append(entry)
    return {
        "journeys": journeys,
        "flows": flow_summaries(recorder),
        "audit": conservation_audit(recorder),
    }


def flow_arrows(recorder: JourneyRecorder,
                max_arrows: Optional[int] = 2000) -> List[Dict[str, Any]]:
    """Flow-arrow point lists for the timeline exporter.

    One arrow per delivered (or in-flight) unicast journey with at least two
    custody points: origin → each MAC delivery → final network delivery.
    """
    arrows: List[Dict[str, Any]] = []
    for journey in recorder.journeys:
        if journey.dst == _BROADCAST_DST:
            continue
        points: List[Tuple[float, str, str]] = []
        for ev in journey.events:
            key = (ev.layer, ev.event)
            if key in _ENTER_EVENTS or key == ("net", "deliver"):
                points.append((ev.time, ev.node, ev.layer))
        if len(points) < 2:
            continue
        arrows.append({
            "id": journey.journey_id,
            "name": f"journey {journey.journey_id} "
                    f"{journey.src}->{journey.dst}",
            "points": points,
        })
        if max_arrows is not None and len(arrows) >= max_arrows:
            break
    return arrows
