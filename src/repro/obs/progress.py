"""Live campaign progress reporting.

:class:`~repro.campaign.runner.CampaignRunner` accepts an *observer* with
three optional callbacks — ``batch_started(batch)``, ``job_started(job)``
and ``job_finished(outcome)`` — invoked from the coordinating process as
jobs are submitted and complete.  :class:`ProgressReporter` is the CLI's
observer: it prints one line per job event with a running ``[done/total]``
counter, the per-job events/s measured by the worker's own
:class:`~repro.sim.telemetry.SimTelemetry` (carried back in the job result),
and an ETA extrapolated from the mean elapsed time of finished jobs divided
by the worker count.

The reporter only formats; it never touches simulation state, so it cannot
perturb determinism.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional


def _format_rate(events: int, seconds: float) -> str:
    if seconds <= 0.0 or events <= 0:
        return ""
    rate = events / seconds
    if rate >= 1e6:
        return f"{rate / 1e6:.1f}M ev/s"
    if rate >= 1e3:
        return f"{rate / 1e3:.0f}k ev/s"
    return f"{rate:.0f} ev/s"


def _format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class ProgressReporter:
    """Streams per-job campaign status lines to ``emit`` (print by default)."""

    def __init__(self, emit: Optional[Callable[[str], None]] = None,
                 workers: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.emit = emit if emit is not None else print
        self.workers = max(1, workers)
        self._clock = clock
        self.total = 0
        self.done = 0
        self.status_counts: Dict[str, int] = {}
        self.events = 0
        self.sim_seconds = 0.0
        self._elapsed_sum = 0.0
        self._elapsed_count = 0
        self._batch_started_at = 0.0

    # ------------------------------------------------------------------
    # Observer protocol (called by CampaignRunner)
    # ------------------------------------------------------------------
    def batch_started(self, batch: Any) -> None:
        """A batch of jobs is about to run."""
        self.total += len(batch)
        self._batch_started_at = self._clock()
        self.emit(f"running {len(batch)} job(s) on {self.workers} worker(s)")

    def job_started(self, job: Any) -> None:
        """A job left the queue and began executing."""
        self.emit(f"[{self.done}/{self.total}] {job.describe()}: started")

    def job_finished(self, outcome: Any) -> None:
        """A job completed (ran, cached, deduped, error or timeout)."""
        self.done += 1
        status = outcome.status
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        parts = [f"[{self.done}/{self.total}] {outcome.job.describe()}: {status}"]
        if status == "ran":
            self._elapsed_sum += outcome.elapsed
            self._elapsed_count += 1
            detail = f"in {outcome.elapsed:.2f}s"
            events = getattr(outcome, "events", 0)
            if events:
                self.events += events
                self.sim_seconds += getattr(outcome, "sim_seconds", 0.0)
                rate = _format_rate(events, outcome.elapsed)
                detail += f" ({events:,} events" + (f", {rate}" if rate else "") + ")"
            parts.append(detail)
        elif status in ("error", "timeout") and outcome.error:
            parts.append(f"({outcome.error.splitlines()[-1]})")
        eta = self.eta_seconds()
        if eta is not None and self.done < self.total:
            parts.append(f"| ETA {_format_eta(eta)}")
        self.emit(" ".join(parts))

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    def eta_seconds(self) -> Optional[float]:
        """Remaining wall-clock estimate, or ``None`` before any job ran.

        Cached/deduped jobs are excluded from the mean — they finish in
        microseconds and would make the estimate wildly optimistic.
        """
        if not self._elapsed_count:
            return None
        remaining = self.total - self.done
        mean = self._elapsed_sum / self._elapsed_count
        return remaining * mean / self.workers

    def summary_line(self) -> str:
        """One-line recap: status mix plus aggregate worker throughput."""
        mix = ", ".join(f"{count} {status}" for status, count
                        in sorted(self.status_counts.items()))
        line = f"{self.done}/{self.total} job(s): {mix or 'none'}"
        if self.events:
            wall = self._clock() - self._batch_started_at
            rate = _format_rate(self.events, wall)
            line += (f"; {self.events:,} events / {self.sim_seconds:.1f} "
                     f"sim-s" + (f" ({rate})" if rate else ""))
        return line
