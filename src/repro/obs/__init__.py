"""Observability: metrics, timeline/pcap export, profiling, live progress.

The package is deliberately layered so the simulator core can depend on it
without cycles: nothing here imports from ``repro.sim`` (or any protocol
layer) at runtime.  ``repro.obs.cli`` pulls in the experiment registry and
is therefore *not* re-exported — import it explicitly.

* :mod:`repro.obs.metrics` — hierarchical Counter/Gauge/Histogram registry
  with label sets and deterministic snapshots;
* :mod:`repro.obs.timeline` — Chrome trace-event (Perfetto) export of
  :class:`~repro.sim.trace.Tracer` streams;
* :mod:`repro.obs.capture` — JSONL frame capture at the PHY/MAC boundary;
* :mod:`repro.obs.journey` — per-packet journey tracing with latency
  waterfalls and the packet-conservation audit;
* :mod:`repro.obs.profiler` — wall-clock-by-category hot-path profiler;
* :mod:`repro.obs.session` — the ambient :func:`~repro.obs.session.observe`
  context manager that wires all of the above into every simulator created
  inside it;
* :mod:`repro.obs.progress` — live per-job campaign progress reporting.
"""

from repro.obs.capture import FrameCapture
from repro.obs.journey import (
    NULL_JOURNEY,
    JourneyRecorder,
    conservation_audit,
    flow_summaries,
    journey_waterfall,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.profiler import HotPathProfiler
from repro.obs.progress import ProgressReporter
from repro.obs.session import ObsConfig, ObsSession, active_session, observe
from repro.obs.timeline import chrome_trace_document, export_chrome_trace

__all__ = [
    "FrameCapture",
    "HotPathProfiler",
    "JourneyRecorder",
    "MetricsRegistry",
    "NULL_JOURNEY",
    "NULL_METRICS",
    "ObsConfig",
    "ObsSession",
    "ProgressReporter",
    "active_session",
    "chrome_trace_document",
    "conservation_audit",
    "export_chrome_trace",
    "flow_summaries",
    "journey_waterfall",
    "observe",
]
