"""Command-line interface: ``python -m repro.obs run <experiment>``.

Runs one registered experiment with an observability session active and
writes whichever exports were requested::

    python -m repro.obs run fig09 --seed 1 \
        --trace-out timeline.json \
        --metrics-out metrics.json \
        --capture-out frames.jsonl \
        --journey-out journeys.json --flow 10.0.0.1,10.0.0.3 \
        --profile

``timeline.json`` opens directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Each export is enabled only when its output path is
given, so an un-flagged run observes nothing.  ``--journey-out`` also runs
the packet-conservation audit and exits 1 when any node's ledger does not
balance (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.registry import get_registry
from repro.errors import ReproError
from repro.obs.journey import format_flow_report
from repro.obs.session import observe


def _parse_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        name, separator, raw = pair.partition("=")
        if not separator or not name:
            raise SystemExit(f"--set expects name=value, got {pair!r}")
        try:
            overrides[name] = ast.literal_eval(raw)
        except (SyntaxError, ValueError):
            overrides[name] = raw
    return overrides


def _cmd_run(args: argparse.Namespace) -> int:
    spec = get_registry().get(args.experiment_id)
    params = spec.resolve_params(_parse_overrides(args.set or []),
                                 fast=not args.full)
    wants_trace = args.trace_out is not None
    wants_metrics = args.metrics_out is not None
    wants_capture = args.capture_out is not None
    wants_journey = args.journey_out is not None
    if not (wants_trace or wants_metrics or wants_capture or wants_journey
            or args.profile):
        print("error: nothing to observe — pass --trace-out, --metrics-out, "
              "--capture-out, --journey-out and/or --profile", file=sys.stderr)
        return 2
    flow_filter = None
    if args.flow is not None:
        src, separator, dst = args.flow.partition(",")
        if not separator or not src or not dst:
            print(f"error: --flow expects SRC,DST, got {args.flow!r}",
                  file=sys.stderr)
            return 2
        flow_filter = (src.strip(), dst.strip())

    print(f"observing {args.experiment_id}[seed={args.seed}] "
          f"({'full' if args.full else 'fast'} parameters)")
    with observe(trace=wants_trace, metrics=wants_metrics,
                 capture=wants_capture, profile=args.profile,
                 journey=wants_journey,
                 max_trace_records=args.max_trace_records) as session:
        result = spec.run(seed=args.seed, **dict(params))

    print(f"{len(session.simulators)} simulator(s) observed")
    if wants_trace:
        count = session.export_timeline(args.trace_out)
        print(f"timeline: {count} trace event(s) -> {args.trace_out} "
              f"(open in https://ui.perfetto.dev)")
    if wants_metrics:
        session.export_metrics(args.metrics_out)
        print(f"metrics: {len(session.simulators)} snapshot(s) -> {args.metrics_out}")
    if wants_capture:
        count = session.export_capture(args.capture_out)
        dropped = session.capture.dropped if session.capture else 0
        note = f" ({dropped} dropped past --max-capture-frames)" if dropped else ""
        print(f"capture: {count} frame(s) -> {args.capture_out}{note}")
    exit_code = 0
    if wants_journey:
        count = session.export_journeys(args.journey_out)
        print(f"journeys: {count} packet journey(s) -> {args.journey_out}")
        if flow_filter is not None:
            print()
            print(format_flow_report(session.flow_report(src=flow_filter[0],
                                                         dst=flow_filter[1])))
            print()
        audit = session.conservation_report()
        if audit["balanced"]:
            totals = [entry["audit"]["totals"]
                      for entry in audit["simulations"]]
            delivered = sum(t["delivered"] for t in totals)
            dropped = sum(t["dropped"] for t in totals)
            in_flight = sum(t["in_flight"] for t in totals)
            print(f"conservation audit: balanced on every node "
                  f"(delivered {delivered}, dropped {dropped}, "
                  f"in flight {in_flight})")
        else:
            exit_code = 1
            print("conservation audit: FAILED — packets are unaccounted for",
                  file=sys.stderr)
            for entry in audit["simulations"]:
                for violation in entry["audit"]["violations"][:20]:
                    print(f"  sim{entry['simulation']}: {violation}",
                          file=sys.stderr)
    if args.profile and session.profiler is not None:
        print()
        print(session.profiler.to_text())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=1, default=repr)
        print(f"results written to {args.out}")
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run one experiment with observability exports enabled.")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run an experiment with trace/metrics/capture export")
    run_parser.add_argument("experiment_id", help="registry id, e.g. fig09")
    run_parser.add_argument("--seed", type=int, default=1,
                            help="simulation seed (default 1)")
    run_parser.add_argument("--full", action="store_true",
                            help="use the paper's full parameters instead of "
                                 "FAST_PARAMS")
    run_parser.add_argument("--set", action="append", metavar="NAME=VALUE",
                            help="override one run() parameter (repeatable)")
    run_parser.add_argument("--trace-out", default=None, metavar="PATH",
                            help="write a Chrome trace-event timeline here "
                                 "(Perfetto-compatible JSON)")
    run_parser.add_argument("--metrics-out", default=None, metavar="PATH",
                            help="write per-simulator metrics snapshots here "
                                 "(JSON)")
    run_parser.add_argument("--capture-out", default=None, metavar="PATH",
                            help="write the PHY/MAC frame capture here (JSONL)")
    run_parser.add_argument("--journey-out", default=None, metavar="PATH",
                            help="write per-packet journeys, flow waterfalls "
                                 "and the conservation audit here (JSON); "
                                 "exits 1 if the audit finds unaccounted "
                                 "packets")
    run_parser.add_argument("--flow", default=None, metavar="SRC,DST",
                            help="with --journey-out: print the hop-by-hop "
                                 "latency breakdown for one flow, e.g. "
                                 "10.0.0.1,10.0.0.3")
    run_parser.add_argument("--profile", action="store_true",
                            help="print the hot-path 'where time goes' table")
    run_parser.add_argument("--max-trace-records", type=int, default=500_000,
                            help="per-simulator tracer storage bound "
                                 "(default 500000)")
    run_parser.add_argument("--out", default=None, metavar="PATH",
                            help="also write the experiment result JSON here")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return {"run": _cmd_run}[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
