"""Hot-path profiler: where does the wall-clock go, by event category?

The scheduler loop is the simulator's only hot path, and every unit of work
it does is an event callback.  :class:`HotPathProfiler` times each callback
with :func:`time.perf_counter` and aggregates wall-clock into **categories**
derived from the callback's defining module (``repro.mac.dcf`` → ``mac``),
refined by class name for the larger layers (``mac/AggregatingMac``).  Time
spent popping the heap and dispatching — everything in the loop that is not
a callback — lands in the named ``scheduler`` category, so the table
attributes ~100% of the measured loop time to named rows.

Attaching a profiler switches :meth:`repro.sim.simulator.Simulator.run` to a
separate profiled loop; the normal loop is untouched, so profiling costs
nothing when off.  Categorisation is cached per function object, keeping the
per-event overhead to two ``perf_counter`` calls and a dict hit.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Tuple

#: Category for loop overhead (heap pops, dispatch) not inside any callback.
SCHEDULER_CATEGORY = "scheduler"

#: Module prefixes collapsed to a layer name; longest match wins.
_LAYER_PREFIXES = (
    ("repro.phy", "phy"),
    ("repro.channel", "channel"),
    ("repro.mac", "mac"),
    ("repro.net", "net"),
    ("repro.transport", "transport"),
    ("repro.apps", "apps"),
    ("repro.mobility", "mobility"),
    ("repro.experiments", "experiments"),
    ("repro.sim", "sim"),
)


def categorize(callback: Callable[..., Any]) -> str:
    """Category for a callback: ``<layer>/<Class>`` or ``<layer>``.

    Bound methods are resolved through ``__func__`` so every instance of a
    class shares one category (and one cache entry on the function object).
    """
    func = getattr(callback, "__func__", callback)
    module = getattr(func, "__module__", "") or ""
    qualname = getattr(func, "__qualname__", "") or ""
    layer = None
    for prefix, name in _LAYER_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            layer = name
            break
    if layer is None:
        layer = module.split(".")[0] if module else "unknown"
    cls = qualname.split(".")[0] if "." in qualname else ""
    if cls and cls[0].isupper():
        return f"{layer}/{cls}"
    return layer


class HotPathProfiler:
    """Aggregates event-callback wall-clock by category.

    One profiler may span several simulators (an experiment sweep attaches
    the same instance to each run it creates), accumulating a single table.
    """

    def __init__(self) -> None:
        # category -> [event count, total seconds]
        self._categories: Dict[str, List[float]] = {}
        self._category_cache: Dict[Any, str] = {}
        #: Wall-clock spent inside ``Simulator.run`` across all profiled runs.
        self.loop_seconds = 0.0
        #: Total events dispatched across all profiled runs.
        self.events = 0

    def category_for(self, callback: Callable[..., Any]) -> str:
        """Cached :func:`categorize` keyed by the underlying function object."""
        func = getattr(callback, "__func__", callback)
        found = self._category_cache.get(func)
        if found is None:
            found = self._category_cache[func] = categorize(callback)
        return found

    def record(self, category: str, seconds: float) -> None:
        """Add one timed callback to ``category``."""
        entry = self._categories.get(category)
        if entry is None:
            entry = self._categories[category] = [0, 0.0]
        entry[0] += 1
        entry[1] += seconds
        self.events += 1

    def record_loop(self, seconds: float, callback_seconds: float) -> None:
        """Account one ``run()`` invocation: total loop time and the part
        already attributed to callbacks; the difference is scheduler overhead."""
        self.loop_seconds += seconds
        overhead = max(0.0, seconds - callback_seconds)
        entry = self._categories.get(SCHEDULER_CATEGORY)
        if entry is None:
            entry = self._categories[SCHEDULER_CATEGORY] = [0, 0.0]
        entry[1] += overhead

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-compatible dump, categories sorted by descending time."""
        total = sum(seconds for _, seconds in self._categories.values())
        rows = [
            {
                "category": category,
                "events": int(count),
                "seconds": seconds,
                "fraction": (seconds / total) if total else 0.0,
            }
            for category, (count, seconds) in sorted(
                self._categories.items(), key=lambda item: (-item[1][1], item[0]))
        ]
        attributed = (total / self.loop_seconds) if self.loop_seconds else 1.0
        return {
            "loop_seconds": self.loop_seconds,
            "events": self.events,
            "attributed_fraction": min(1.0, attributed),
            "categories": rows,
        }

    def to_text(self) -> str:
        """The "where time goes" table, widest consumers first."""
        snap = self.snapshot()
        lines = ["where time goes (wall-clock by event category)",
                 f"{'category':<28} {'events':>10} {'seconds':>10} {'share':>7}",
                 "-" * 58]
        for row in snap["categories"]:
            lines.append(f"{row['category']:<28} {row['events']:>10} "
                         f"{row['seconds']:>10.4f} {row['fraction']:>6.1%}")
        lines.append("-" * 58)
        rate = (snap["events"] / snap["loop_seconds"]) if snap["loop_seconds"] else 0.0
        lines.append(f"{'total':<28} {snap['events']:>10} "
                     f"{snap['loop_seconds']:>10.4f} "
                     f"({rate:,.0f} events/s, "
                     f"{snap['attributed_fraction']:.1%} attributed)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HotPathProfiler events={self.events} "
                f"loop_seconds={self.loop_seconds:.4f}>")


#: Re-exported so the simulator's profiled loop and tests share one clock.
perf_counter = time.perf_counter
