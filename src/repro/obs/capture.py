"""Frame capture at the PHY/MAC boundary (a "pcap" for the simulated air).

A :class:`FrameCapture` records one JSON-compatible entry per frame event —
transmissions as the PHY puts them on the air and receptions as they finish
decoding — with the fields a protocol debugger actually needs: addresses,
rates, sizes, retry counts and the collision/capture outcome.  Entries
serialize as JSON Lines (one object per line), the same shape whether
streamed to disk or inspected in memory.

The capture is attached to a simulator (``sim.capture``); the PHY hot paths
guard on ``sim.capture is not None`` exactly like the tracer guard, so the
cost when capture is off is one attribute load and branch.  Capturing only
*reads* protocol state — no RNG, no scheduling — so results are byte-identical
with capture on or off.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterator, List, Optional


def _mbps(rate: Any) -> Optional[float]:
    bps = getattr(rate, "data_rate_bps", None)
    if bps is None:
        return None
    return round(bps / 1e6, 3)


def _subframe_entry(subframe: Any, portion: str) -> Dict[str, Any]:
    packet = getattr(subframe, "packet", None)
    entry: Dict[str, Any] = {
        "portion": portion,
        "src": str(getattr(subframe, "src", "?")),
        "dst": str(getattr(subframe, "dst", "?")),
        "seq": getattr(subframe, "sequence", None),
        "bytes": subframe.size_bytes,
        "retries": getattr(subframe, "retries", 0),
    }
    if packet is not None:
        entry["proto"] = packet.ip.protocol
    return entry


class FrameCapture:
    """Collects per-frame capture entries from every PHY of a run."""

    def __init__(self, max_frames: Optional[int] = None) -> None:
        self.max_frames = max_frames
        self.entries: List[Dict[str, Any]] = []
        #: Entries not stored because ``max_frames`` was reached.
        self.dropped = 0

    # ------------------------------------------------------------------
    # Recording (called from the PHY hot path when capture is attached)
    # ------------------------------------------------------------------
    def _store(self, entry: Dict[str, Any]) -> None:
        if self.max_frames is not None and len(self.entries) >= self.max_frames:
            self.dropped += 1
            return
        self.entries.append(entry)

    def record_tx(self, time: float, phy: Any, frame: Any, duration: float) -> None:
        """Record a frame the local PHY just put on the air."""
        self._store(self._frame_entry(time, phy, frame, direction="tx",
                                      airtime=duration))

    def record_rx(self, time: float, phy: Any, result: Any) -> None:
        """Record a finished reception (``result`` is a ``ReceptionResult``)."""
        entry = self._frame_entry(time, phy, result.frame, direction="rx")
        entry["snr_db"] = round(result.snr_db, 2)
        entry["collided"] = result.collided
        entry["captured"] = not result.collided
        entry["decoded"] = result.any_ok
        if result.broadcast_ok:
            entry["broadcast_crc_ok"] = list(result.broadcast_ok)
        if result.unicast_ok:
            entry["unicast_crc_ok"] = list(result.unicast_ok)
        if result.frame.kind.is_control:
            entry["control_ok"] = result.control_ok
        self._store(entry)

    def _frame_entry(self, time: float, phy: Any, frame: Any, direction: str,
                     airtime: Optional[float] = None) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "t": round(time, 9),
            "node": phy.name,
            "dir": direction,
            "kind": frame.kind.value,
            "bytes": frame.total_bytes,
            "rate_mbps": _mbps(frame.unicast_rate),
        }
        if airtime is not None:
            entry["airtime"] = round(airtime, 9)
        if frame.kind.is_control:
            control = frame.control
            entry["control"] = {
                "dst": str(getattr(control, "dst", "?")),
                **({"src": str(control.src)} if hasattr(control, "src") else {}),
            }
        else:
            if frame.broadcast_rate is not None:
                entry["broadcast_rate_mbps"] = _mbps(frame.broadcast_rate)
            entry["subframes"] = (
                [_subframe_entry(sf, "bcast") for sf in frame.broadcast_subframes]
                + [_subframe_entry(sf, "ucast") for sf in frame.unicast_subframes])
        return entry

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def iter_jsonl(self) -> Iterator[str]:
        """One compact JSON document per stored entry, in capture order."""
        for entry in self.entries:
            yield json.dumps(entry, separators=(",", ":"), default=repr)

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write the capture as JSON Lines; returns the entry count."""
        for line in self.iter_jsonl():
            stream.write(line)
            stream.write("\n")
        return len(self.entries)

    def to_jsonl(self, path: str) -> int:
        """Write the capture to ``path``; returns the entry count."""
        with open(path, "w", encoding="utf-8") as handle:
            return self.write_jsonl(handle)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FrameCapture frames={len(self.entries)} dropped={self.dropped}>"
