"""Hierarchical metrics registry.

One :class:`MetricsRegistry` holds every metric of one simulator run.  Three
instrument kinds cover the repo's needs:

* :class:`Counter` — a monotonically increasing count (frames transmitted,
  exchanges failed);
* :class:`Gauge` — a point-in-time value (queue depth, totals harvested from
  an existing statistics object at snapshot time); and
* :class:`Histogram` — a fixed-bucket distribution (SNR, retries per
  exchange, frame airtime).

Metrics are identified by a dotted hierarchical name (``"phy.rx_frames"``)
plus a **label set** (``node="node3.phy", outcome="collided"``), so one
logical metric fans out per node / per layer / per outcome without ad-hoc
dict-of-dict counters.

Two cost tiers keep the hot path honest:

* **Disabled** (the default — every simulator starts with the shared
  :data:`NULL_METRICS` registry): instrument sites guard on
  ``registry.enabled``, which costs one attribute load and branch, exactly
  like the existing tracer guards.  Nothing is allocated and nothing is
  stored.
* **Enabled**: incrementing resolves the instrument through one dict lookup
  keyed by ``(name, sorted labels)``.

Besides live instruments, layers may register **collectors** — callbacks run
at snapshot time that harvest an existing statistics object (e.g.
:class:`~repro.mac.stats.MacStatistics`) into gauges.  Collectors give full
per-node/per-layer export depth with zero per-event cost.

Snapshots are **deterministically ordered** (sorted by name, then by the
sorted label items), so two runs of the same seed serialize byte-identically
and snapshots can be compared with ``==``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (``+Inf`` is implicit).  Chosen to
#: be useful for the repo's common distributions (dB values, counts, small
#: durations); pass explicit ``bounds`` for anything else.
DEFAULT_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

#: A resolved metric key: the dotted name plus the sorted label items.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _labels_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative; not checked on the hot path)."""
        self.value += amount


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = value

    def add(self, amount: float) -> None:
        """Adjust the gauge by ``amount`` (for up/down quantities)."""
        self.value += amount


class Histogram:
    """A fixed-bucket distribution with total count and sum."""

    __slots__ = ("bounds", "bucket_counts", "count", "total")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0


class _NullCounter:
    """Shared no-op counter handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002 - intentional no-op
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: ARG002
        pass

    def add(self, amount: float) -> None:  # noqa: ARG002
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: ARG002
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()

#: Signature of a snapshot-time collector: it receives the registry and sets
#: gauges (or increments counters) from state it already maintains.
Collector = Callable[["MetricsRegistry"], None]


class MetricsRegistry:
    """Registry of named, labelled instruments with deterministic export.

    Instrument sites should guard with :attr:`enabled` before resolving an
    instrument so the disabled path stays near-free::

        metrics = self.sim.metrics
        if metrics.enabled:
            metrics.inc("phy.tx_frames", node=self.name, kind="data")
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}
        self._collectors: List[Collector] = []

    # ------------------------------------------------------------------
    # Instrument resolution
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        if not self.enabled:
            return _NULL_COUNTER
        key = (name, _labels_key(labels))
        found = self._counters.get(key)
        if found is None:
            found = self._counters[key] = Counter()
        return found

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        if not self.enabled:
            return _NULL_GAUGE
        key = (name, _labels_key(labels))
        found = self._gauges.get(key)
        if found is None:
            found = self._gauges[key] = Gauge()
        return found

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use.

        ``bounds`` applies only at creation; later calls with different
        bounds reuse the existing instrument unchanged.
        """
        if not self.enabled:
            return _NULL_HISTOGRAM
        key = (name, _labels_key(labels))
        found = self._histograms.get(key)
        if found is None:
            found = self._histograms[key] = Histogram(bounds)
        return found

    # ------------------------------------------------------------------
    # One-shot helpers (resolve + record)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        """Increment the counter ``(name, labels)`` by ``amount``."""
        if self.enabled:
            self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``(name, labels)`` to ``value``."""
        if self.enabled:
            self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BUCKETS, **labels: Any) -> None:
        """Record ``value`` in the histogram ``(name, labels)``."""
        if self.enabled:
            self.histogram(name, bounds, **labels).observe(value)

    # ------------------------------------------------------------------
    # Collectors
    # ------------------------------------------------------------------
    def register_collector(self, collector: Collector) -> None:
        """Run ``collector(registry)`` at every snapshot (no-op when disabled).

        Collectors let a layer export statistics it already maintains (the
        MAC's :class:`~repro.mac.stats.MacStatistics`, the forwarding
        engine's counters) without paying anything on the hot path.
        """
        if self.enabled:
            self._collectors.append(collector)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Deterministically ordered JSON-compatible dump of every metric.

        Collectors run first (in registration order — construction order,
        which is deterministic) so harvested gauges are current.
        """
        for collector in self._collectors:
            collector(self)
        return {
            "counters": [
                {"name": name, "labels": dict(labels), "value": counter.value}
                for (name, labels), counter in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": gauge.value}
                for (name, labels), gauge in sorted(self._gauges.items())
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "count": histogram.count,
                    "sum": histogram.total,
                    "buckets": [
                        {"le": bound, "count": count}
                        for bound, count in zip(
                            list(histogram.bounds) + ["+Inf"],
                            histogram.bucket_counts)
                    ],
                }
                for (name, labels), histogram in sorted(self._histograms.items())
            ],
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"<MetricsRegistry {state} instruments={len(self)}>"


#: The shared disabled registry every :class:`~repro.sim.simulator.Simulator`
#: starts with.  It never stores anything, so sharing one instance
#: process-wide is safe.
NULL_METRICS = MetricsRegistry(enabled=False)
