"""Block acknowledgement extension.

Section 7 of the paper lists a block-ACK scheme (as in 802.11n) as future
work: instead of discarding the whole unicast portion when a single subframe
CRC fails, the receiver reports exactly which subframes arrived and the
sender retransmits only the missing ones.  This module provides the
scoreboard/bitmap bookkeeping; :class:`repro.mac.dcf.AggregatingMac` uses it
when ``MacConfig.use_block_ack`` is enabled, and an ablation benchmark
compares it against the paper's all-or-nothing baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mac.addresses import MacAddress
    from repro.mac.frames import MacSubframe


@dataclass
class BlockAck:
    """A block acknowledgement: which subframe sequence numbers were received."""

    dst: "MacAddress"
    received_sequences: frozenset
    #: Size on air: a compressed block ACK is larger than a normal ACK.
    size_bytes: int = 32

    @classmethod
    def for_outcome(cls, dst: "MacAddress", passed: Iterable[int]) -> "BlockAck":
        """Build a block ACK acknowledging the sequences in ``passed``."""
        return cls(dst=dst, received_sequences=frozenset(passed))

    def acknowledges(self, sequence: int) -> bool:
        """True when ``sequence`` was received correctly."""
        return sequence in self.received_sequences


@dataclass
class BlockAckScoreboard:
    """Sender-side record of which subframes of the last aggregate were ACKed."""

    outstanding: Dict[int, "MacSubframe"] = field(default_factory=dict)

    def register(self, subframes: Sequence["MacSubframe"]) -> None:
        """Record the unicast subframes of the aggregate just transmitted."""
        self.outstanding = {sf.sequence: sf for sf in subframes}

    def apply(self, block_ack: BlockAck) -> List["MacSubframe"]:
        """Apply a received block ACK; returns the subframes still unacknowledged."""
        missing = [sf for seq, sf in self.outstanding.items()
                   if not block_ack.acknowledges(seq)]
        self.outstanding = {sf.sequence: sf for sf in missing}
        return missing

    def fail_all(self) -> List["MacSubframe"]:
        """No block ACK arrived at all: every outstanding subframe needs retransmission."""
        return list(self.outstanding.values())

    @property
    def empty(self) -> bool:
        """True when nothing is awaiting acknowledgement."""
        return not self.outstanding
