"""The paper's primary contribution: frame aggregation with broadcast TCP ACKs.

This package contains the pieces that Sections 3 and 4 of the paper add on
top of a stock 802.11 DCF MAC:

* :mod:`repro.core.policies` — the aggregation configurations evaluated in the
  paper (no aggregation, unicast aggregation, broadcast aggregation and
  delayed broadcast aggregation) plus the knobs the experiments sweep
  (maximum aggregation size, fixed broadcast rate, forward aggregation on/off);
* :mod:`repro.core.classifier` — the Click-style classifier that diverts
  "pure" TCP ACKs into the broadcast queue;
* :mod:`repro.core.aggregator` — the transmit-side assembly of aggregated
  physical frames (broadcast portion first, then unicast subframes for one
  destination, within the size budget);
* :mod:`repro.core.deaggregation` — the receive-side rules (per-broadcast-
  subframe CRC and pass-up, all-or-nothing acceptance of the unicast portion,
  address filtering of overheard TCP ACKs);
* :mod:`repro.core.block_ack` — the block-ACK extension sketched as future
  work in Section 7, used by the ablation benchmarks.
"""

from repro.core.policies import (
    AggregationPolicy,
    broadcast_aggregation,
    delayed_broadcast_aggregation,
    no_aggregation,
    unicast_aggregation,
)
from repro.core.classifier import TcpAckClassifier
from repro.core.aggregator import AggregateBuild, Aggregator
from repro.core.deaggregation import DeaggregationResult, process_received_aggregate
from repro.core.block_ack import BlockAck, BlockAckScoreboard

__all__ = [
    "AggregationPolicy",
    "no_aggregation",
    "unicast_aggregation",
    "broadcast_aggregation",
    "delayed_broadcast_aggregation",
    "TcpAckClassifier",
    "Aggregator",
    "AggregateBuild",
    "process_received_aggregate",
    "DeaggregationResult",
    "BlockAck",
    "BlockAckScoreboard",
]
