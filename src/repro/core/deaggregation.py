"""Receive-side processing of aggregated frames.

Section 4.2.2 of the paper: the receiving MAC first processes the broadcast
subframes — each one that passes its CRC is handed to the next layer
immediately, so broadcast subframes do not suffer from being aggregated with
unicast traffic — and then the unicast subframes, which are accepted
*all-or-nothing*: if every CRC passes and the destination matches, the whole
unicast portion goes up and a single link-level ACK is returned; otherwise
everything is discarded and no ACK is sent.

Section 3.3: TCP ACKs ride in the broadcast portion but keep unicast MAC
addresses.  A node that overhears such a subframe and is not the addressed
next hop must drop it at the MAC — passing it up would make IP forward a
duplicate ACK along the path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.phy.frame import ReceptionResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mac.addresses import MacAddress
    from repro.mac.frames import MacSubframe


class DuplicateDetector:
    """Per-sender cache of recently seen MAC sequence numbers.

    Link-level retransmissions can deliver the same unicast subframe twice
    (the ACK, not the data, may have been lost); the detector filters the
    second copy before it reaches the network layer.
    """

    def __init__(self, cache_size: int = 128) -> None:
        self.cache_size = cache_size
        self._seen: Dict["MacAddress", "OrderedDict[int, None]"] = {}
        self.duplicates = 0

    def is_duplicate(self, src: "MacAddress", sequence: int) -> bool:
        """Record ``(src, sequence)`` and report whether it was already seen."""
        cache = self._seen.setdefault(src, OrderedDict())
        if sequence in cache:
            self.duplicates += 1
            return True
        cache[sequence] = None
        while len(cache) > self.cache_size:
            cache.popitem(last=False)
        return False


@dataclass
class DeaggregationResult:
    """What the MAC should do with a received aggregated frame."""

    #: Subframes to hand to the network layer (broadcast portion, CRC-passed,
    #: addressed to us or to the broadcast address).
    broadcast_deliveries: List["MacSubframe"] = field(default_factory=list)
    #: Unicast subframes to hand up (all-or-nothing; empty if any CRC failed
    #: or the portion is not addressed to us).
    unicast_deliveries: List["MacSubframe"] = field(default_factory=list)
    #: True when a link-level ACK must be sent back to the transmitter.
    send_ack: bool = False
    #: MAC address to send the ACK to (source of the unicast portion).
    ack_destination: Optional["MacAddress"] = None
    #: Overheard broadcast-portion subframes with unicast addresses that were
    #: dropped at the MAC (classified TCP ACKs passing by).
    overheard_dropped: int = 0
    #: Duplicate unicast subframes filtered by the duplicate detector.
    duplicates_filtered: int = 0
    #: NAV reservation to honour when the unicast portion is addressed to
    #: someone else (taken from the first unicast subframe's duration field).
    nav_duration: float = 0.0
    #: Per-subframe sequence numbers that passed the CRC, for the optional
    #: block-ACK extension.
    unicast_crc_passed: List[int] = field(default_factory=list)
    unicast_crc_failed: List[int] = field(default_factory=list)


def process_received_aggregate(result: ReceptionResult, my_address: "MacAddress",
                               duplicates: Optional[DuplicateDetector] = None,
                               block_ack_enabled: bool = False) -> DeaggregationResult:
    """Apply the paper's receive rules to a decoded aggregate."""
    output = DeaggregationResult()
    frame = result.frame

    # ------------------------------------------------------------------
    # Broadcast portion: per-subframe CRC, address filter, immediate pass-up.
    # ------------------------------------------------------------------
    for subframe, crc_ok in zip(frame.broadcast_subframes, result.broadcast_ok):
        if not crc_ok:
            continue
        if subframe.dst.is_broadcast or subframe.dst == my_address:
            output.broadcast_deliveries.append(subframe)
        else:
            output.overheard_dropped += 1

    # ------------------------------------------------------------------
    # Unicast portion.
    # ------------------------------------------------------------------
    unicast = list(frame.unicast_subframes)
    if not unicast:
        return output

    addressed_to_me = unicast[0].dst == my_address
    if not addressed_to_me:
        output.nav_duration = unicast[0].duration
        return output

    for subframe, crc_ok in zip(unicast, result.unicast_ok):
        if crc_ok:
            output.unicast_crc_passed.append(subframe.sequence)
        else:
            output.unicast_crc_failed.append(subframe.sequence)

    if block_ack_enabled:
        accepted = [sf for sf, ok in zip(unicast, result.unicast_ok) if ok]
        output.send_ack = bool(accepted) or bool(output.unicast_crc_failed)
    else:
        if not result.all_unicast_ok:
            # One bad CRC discards the whole unicast portion and suppresses the ACK.
            return output
        accepted = unicast
        output.send_ack = True

    output.ack_destination = unicast[0].src
    for subframe in accepted:
        if duplicates is not None and duplicates.is_duplicate(subframe.src, subframe.sequence):
            output.duplicates_filtered += 1
            continue
        output.unicast_deliveries.append(subframe)
    return output
