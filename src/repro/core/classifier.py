"""Cross-layer packet classification.

The Hydra implementation uses Click's packet classifiers to sort "pure" TCP
ACK segments out of the unicast traffic and place them in the broadcast queue
(Section 4.2.4).  A pure TCP ACK carries no payload and is not part of
connection set-up or tear-down; anything else (data segments, SYN/FIN/RST
segments, UDP, routing control traffic) keeps its normal queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.packet import Packet


@dataclass
class TcpAckClassifier:
    """Decides which transmit queue a packet belongs in.

    The classifier is deliberately stateless about flows — exactly like a
    Click classifier element it looks only at the headers of the packet in
    hand — but it keeps counters so experiments can report how much traffic
    was diverted.
    """

    #: Master switch; a disabled classifier sends everything down the
    #: normal unicast/broadcast split.
    enabled: bool = True
    counters: Dict[str, int] = field(default_factory=dict)

    def is_pure_tcp_ack(self, packet: "Packet") -> bool:
        """True when ``packet`` is a pure TCP ACK (no data, not SYN/FIN/RST)."""
        return packet.is_pure_tcp_ack

    def belongs_in_broadcast_queue(self, packet: "Packet", link_broadcast: bool) -> bool:
        """Queue decision for ``packet``.

        Parameters
        ----------
        packet:
            The network packet being enqueued.
        link_broadcast:
            True when the packet is addressed to the link-layer broadcast
            address (flooding/control traffic); such packets always use the
            broadcast queue regardless of classification.
        """
        if link_broadcast:
            self._count("link_broadcast")
            return True
        if self.enabled and self.is_pure_tcp_ack(packet):
            self._count("classified_tcp_ack")
            return True
        self._count("unicast")
        return False

    def _count(self, key: str) -> None:
        self.counters[key] = self.counters.get(key, 0) + 1

    @property
    def classified_ack_count(self) -> int:
        """Number of pure TCP ACKs diverted to the broadcast queue so far."""
        return self.counters.get("classified_tcp_ack", 0)
