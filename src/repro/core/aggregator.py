"""Transmit-side frame aggregation.

When the DCF acquires the floor, the MAC asks the :class:`Aggregator` to
assemble the next physical frame from its two transmit queues (Section 4.2.3
of the paper):

1. the broadcast queue is drained first (flooding frames and classified pure
   TCP ACKs), putting the broadcast subframes closest to the PHY training
   sequences where they are least exposed to channel aging;
2. then unicast subframes destined to the *same receiver* as the head of the
   unicast queue are gathered;
3. the total is bounded by the policy's maximum aggregation size.

A retransmission preserves the unicast portion of the failed aggregate (those
subframes still need their link-level ACK) — the broadcast portion is never
retransmitted because it was already sent unacknowledged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.core.policies import AggregationPolicy
from repro.errors import AggregationError
from repro.phy.frame import PhyFrame
from repro.phy.rates import PhyRate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mac.addresses import MacAddress
    from repro.mac.frames import MacSubframe
    from repro.mac.queues import TransmitQueues


@dataclass
class AggregateBuild:
    """The result of one aggregation pass: the contents of the next frame."""

    broadcast_subframes: List["MacSubframe"] = field(default_factory=list)
    unicast_subframes: List["MacSubframe"] = field(default_factory=list)
    destination: Optional["MacAddress"] = None

    @property
    def empty(self) -> bool:
        """True when there is nothing to transmit."""
        return not self.broadcast_subframes and not self.unicast_subframes

    @property
    def has_unicast(self) -> bool:
        """True when the frame needs a link-level ACK."""
        return bool(self.unicast_subframes)

    @property
    def broadcast_bytes(self) -> int:
        """Size of the broadcast portion."""
        return sum(sf.size_bytes for sf in self.broadcast_subframes)

    @property
    def unicast_bytes(self) -> int:
        """Size of the unicast portion."""
        return sum(sf.size_bytes for sf in self.unicast_subframes)

    @property
    def total_bytes(self) -> int:
        """Total MAC bytes in the aggregate."""
        return self.broadcast_bytes + self.unicast_bytes

    @property
    def subframe_count(self) -> int:
        """Number of subframes in the aggregate."""
        return len(self.broadcast_subframes) + len(self.unicast_subframes)

    def to_phy_frame(self, unicast_rate: PhyRate,
                     broadcast_rate: Optional[PhyRate] = None) -> PhyFrame:
        """Convert the build into a :class:`~repro.phy.frame.PhyFrame`."""
        if self.empty:
            raise AggregationError("cannot build a PHY frame from an empty aggregate")
        return PhyFrame.data(
            broadcast_subframes=self.broadcast_subframes,
            unicast_subframes=self.unicast_subframes,
            unicast_rate=unicast_rate,
            broadcast_rate=broadcast_rate,
        )

    def without_broadcast_portion(self) -> "AggregateBuild":
        """Copy of the build keeping only the unicast portion (retransmissions)."""
        return AggregateBuild(
            broadcast_subframes=[],
            unicast_subframes=list(self.unicast_subframes),
            destination=self.destination,
        )


class Aggregator:
    """Builds aggregated frames according to an :class:`AggregationPolicy`."""

    def __init__(self, policy: AggregationPolicy) -> None:
        self.policy = policy
        self.builds = 0
        self.subframes_aggregated = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def build(self, queues: "TransmitQueues",
              preserved_unicast: Optional[List["MacSubframe"]] = None) -> AggregateBuild:
        """Assemble the next aggregate, removing the chosen subframes from ``queues``.

        ``preserved_unicast`` carries the unicast portion of a failed exchange
        that must be retransmitted; it is reused verbatim (no new unicast
        subframes are added to it) and only a fresh broadcast portion may be
        prepended, if the policy mixes broadcast and unicast traffic.
        """
        policy = self.policy
        build = AggregateBuild()
        budget = policy.max_aggregate_bytes

        if preserved_unicast:
            build.unicast_subframes = list(preserved_unicast)
            build.destination = preserved_unicast[0].dst
            budget -= build.unicast_bytes
            if policy.mixes_broadcast_and_unicast:
                self._fill_broadcast(build, queues, budget)
            self._finish(build)
            return build

        # --- broadcast portion first (Section 4.2.3) -------------------
        if queues.broadcast_count:
            self._fill_broadcast(build, queues, budget)
            budget = policy.max_aggregate_bytes - build.total_bytes
            if not policy.mixes_broadcast_and_unicast:
                # NA/UA: broadcast traffic travels alone.
                self._finish(build)
                return build

        # --- unicast portion -------------------------------------------
        destination = queues.head_unicast_destination()
        if destination is not None:
            max_subframes = policy.max_unicast_subframes
            taken_bytes = 0

            def fits(subframe: "MacSubframe", _build=build) -> bool:
                nonlocal taken_bytes
                # A frame cannot be fragmented, so an otherwise-empty aggregate
                # always accepts its first subframe even if that subframe alone
                # exceeds the budget.
                if (not _build.unicast_subframes and not _build.broadcast_subframes
                        and taken_bytes == 0):
                    taken_bytes += subframe.size_bytes
                    return True
                if taken_bytes + subframe.size_bytes <= budget:
                    taken_bytes += subframe.size_bytes
                    return True
                return False

            build.unicast_subframes = queues.take_unicast_for(destination, max_subframes, fits)
            build.destination = destination if build.unicast_subframes else None

        self._finish(build)
        return build

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fill_broadcast(self, build: AggregateBuild, queues: "TransmitQueues",
                        budget: int) -> None:
        limit = self.policy.max_broadcast_subframes
        while queues.broadcast_count and len(build.broadcast_subframes) < limit:
            head = queues.peek_broadcast()[0]
            first = not build.broadcast_subframes and not build.unicast_subframes
            if not first and build.total_bytes + head.size_bytes > self.policy.max_aggregate_bytes:
                break
            if first or head.size_bytes <= budget - sum(
                    sf.size_bytes for sf in build.broadcast_subframes):
                build.broadcast_subframes.append(queues.pop_broadcast_head())
            else:
                break

    def _finish(self, build: AggregateBuild) -> None:
        if not build.empty:
            self.builds += 1
            self.subframes_aggregated += build.subframe_count
