"""Aggregation policies.

An :class:`AggregationPolicy` bundles every knob the paper's evaluation
turns:

* **NA** (no aggregation) — one subframe per transmission, TCP ACKs treated
  like any other unicast packet;
* **UA** (unicast aggregation, Section 3.1) — several unicast subframes for
  the same destination share one transmission and one link-level ACK;
* **BA** (broadcast aggregation + TCP ACK classification, Sections 3.2/3.3) —
  broadcast subframes (including classified pure TCP ACKs) are prepended to
  the unicast portion and are not acknowledged;
* **DBA** (delayed BA, Section 6.4.3) — relay nodes additionally wait until a
  minimum number of frames is queued before contending for the floor.

The remaining fields cover the experiment-specific variations: the maximum
aggregation size swept in Figure 7, the pinned broadcast rate of Figure 10
and the forward-aggregation switch of Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import kilobytes, milliseconds

#: The maximum aggregation size the paper selects after the Figure 7 sweep.
DEFAULT_MAX_AGGREGATE_BYTES = kilobytes(5)


@dataclass(frozen=True)
class AggregationPolicy:
    """Complete aggregation configuration for one MAC."""

    name: str
    #: Allow multiple unicast subframes (same destination) per transmission.
    aggregate_unicast: bool = True
    #: Allow broadcast subframes to be aggregated with each other and
    #: prepended to the unicast portion of a frame.
    aggregate_broadcast: bool = True
    #: Divert pure TCP ACKs into the broadcast queue (Section 3.3).
    classify_tcp_acks_as_broadcast: bool = True
    #: Allow aggregation of packets flowing in the same direction
    #: (Section 6.4.4); when False at most one unicast and one broadcast
    #: subframe ride in each frame, so any benefit comes purely from
    #: combining TCP data with reverse-direction ACKs.
    forward_aggregation: bool = True
    #: Maximum total size of an aggregated frame (broadcast + unicast bytes).
    max_aggregate_bytes: int = DEFAULT_MAX_AGGREGATE_BYTES
    #: Minimum number of queued subframes before the MAC contends for the
    #: floor (1 = transmit as soon as anything is queued; 3 = the paper's DBA).
    min_frames_before_transmit: int = 1
    #: Safety valve for the delayed policy: transmit whatever is queued after
    #: this long even if the minimum frame count was not reached.
    delayed_flush_timeout: float = milliseconds(30.0)
    #: Fixed PHY rate for the broadcast portion in Mbps; ``None`` transmits
    #: broadcasts at the same rate as the unicast portion (Figure 10 vs 11).
    broadcast_rate_mbps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_aggregate_bytes < MIN_REASONABLE_AGGREGATE_BYTES:
            raise ConfigurationError(
                f"max_aggregate_bytes={self.max_aggregate_bytes} cannot hold a full-size subframe"
            )
        if self.min_frames_before_transmit < 1:
            raise ConfigurationError("min_frames_before_transmit must be >= 1")
        if self.delayed_flush_timeout <= 0:
            raise ConfigurationError("delayed_flush_timeout must be positive")

    # ------------------------------------------------------------------
    # Derived limits used by the aggregator
    # ------------------------------------------------------------------
    @property
    def max_unicast_subframes(self) -> int:
        """Cap on unicast subframes per aggregate implied by the policy flags."""
        if not self.aggregate_unicast or not self.forward_aggregation:
            return 1
        return 10_000

    @property
    def max_broadcast_subframes(self) -> int:
        """Cap on broadcast subframes per aggregate implied by the policy flags."""
        if not self.aggregate_broadcast:
            return 1
        if not self.forward_aggregation:
            return 1
        return 10_000

    @property
    def mixes_broadcast_and_unicast(self) -> bool:
        """True when broadcast subframes may share a frame with unicast subframes."""
        return self.aggregate_broadcast

    @property
    def is_delayed(self) -> bool:
        """True for delayed-aggregation (DBA-style) policies."""
        return self.min_frames_before_transmit > 1

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_max_aggregate_bytes(self, max_bytes: int) -> "AggregationPolicy":
        """Copy of the policy with a different aggregation size budget."""
        return replace(self, max_aggregate_bytes=max_bytes)

    def with_broadcast_rate(self, rate_mbps: Optional[float]) -> "AggregationPolicy":
        """Copy of the policy with a pinned broadcast-portion rate."""
        return replace(self, broadcast_rate_mbps=rate_mbps)

    def without_forward_aggregation(self) -> "AggregationPolicy":
        """Copy of the policy with forward aggregation disabled (Figure 14)."""
        return replace(self, name=f"{self.name}-noFwd", forward_aggregation=False)


#: A subframe can never be smaller than this, so a budget below it is a bug.
MIN_REASONABLE_AGGREGATE_BYTES = 200


def no_aggregation(max_aggregate_bytes: int = DEFAULT_MAX_AGGREGATE_BYTES) -> AggregationPolicy:
    """The paper's NA baseline: one subframe per transmission."""
    return AggregationPolicy(
        name="NA",
        aggregate_unicast=False,
        aggregate_broadcast=False,
        classify_tcp_acks_as_broadcast=False,
        max_aggregate_bytes=max_aggregate_bytes,
    )


def unicast_aggregation(max_aggregate_bytes: int = DEFAULT_MAX_AGGREGATE_BYTES) -> AggregationPolicy:
    """UA: aggregate unicast subframes only; TCP ACKs stay unicast."""
    return AggregationPolicy(
        name="UA",
        aggregate_unicast=True,
        aggregate_broadcast=False,
        classify_tcp_acks_as_broadcast=False,
        max_aggregate_bytes=max_aggregate_bytes,
    )


def broadcast_aggregation(max_aggregate_bytes: int = DEFAULT_MAX_AGGREGATE_BYTES,
                          broadcast_rate_mbps: Optional[float] = None) -> AggregationPolicy:
    """BA: unicast + broadcast aggregation with TCP ACKs classified as broadcasts."""
    return AggregationPolicy(
        name="BA",
        aggregate_unicast=True,
        aggregate_broadcast=True,
        classify_tcp_acks_as_broadcast=True,
        max_aggregate_bytes=max_aggregate_bytes,
        broadcast_rate_mbps=broadcast_rate_mbps,
    )


def delayed_broadcast_aggregation(min_frames: int = 3,
                                  max_aggregate_bytes: int = DEFAULT_MAX_AGGREGATE_BYTES,
                                  flush_timeout: float = milliseconds(30.0)) -> AggregationPolicy:
    """DBA: BA plus a minimum queue occupancy before contending for the floor."""
    return AggregationPolicy(
        name="DBA",
        aggregate_unicast=True,
        aggregate_broadcast=True,
        classify_tcp_acks_as_broadcast=True,
        max_aggregate_bytes=max_aggregate_bytes,
        min_frames_before_transmit=min_frames,
        delayed_flush_timeout=flush_timeout,
    )
