"""Event objects used by the discrete-event scheduler.

An :class:`Event` is a record of *when* a callback should fire and with which
arguments.  :class:`EventHandle` is the user-facing token returned by
:meth:`repro.sim.simulator.Simulator.schedule`; it supports cancellation and
introspection without exposing the scheduler internals.

Both classes use ``__slots__``: the simulator allocates one event per
scheduled callback (hundreds of thousands per experiment), so per-instance
dict overhead dominated allocation cost before the slots layout.  The
scheduler's heap orders events through C-level tuple comparison of
``(time, priority, sequence)`` keys (see :mod:`repro.sim.scheduler`);
:meth:`Event.__lt__` implements the same ordering for any code that compares
events directly.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Tuple


#: Monotone counter used to break ties between events scheduled for the same
#: simulated time.  Ties are broken in scheduling order (FIFO), which keeps
#: protocol state machines deterministic.
_sequence = itertools.count()


#: Return the next global event sequence number.  Bound directly to the
#: counter's C-level ``__next__`` — this runs once per scheduled event, and a
#: Python wrapper function doubled its cost.
next_sequence = _sequence.__next__


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, sequence)``; the callback and its
    arguments do not participate in the ordering.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "args",
                 "cancelled", "dequeued", "fired")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        cancelled: bool = False,
        dequeued: bool = False,
        fired: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.args = args
        #: True once cancelled; the scheduler will skip the event.
        self.cancelled = cancelled
        #: True once the scheduler has removed the event from its queue (the
        #: only other way out is cancellation).  Cancelling a dequeued event
        #: must be a no-op or the scheduler's live-event count goes negative.
        self.dequeued = dequeued
        self.fired = fired

    def __lt__(self, other: "Event") -> bool:
        return ((self.time, self.priority, self.sequence)
                < (other.time, other.priority, other.sequence))

    def cancel(self) -> None:
        """Mark the event as cancelled; the scheduler will skip it."""
        self.cancelled = True

    def fire(self) -> Any:
        """Invoke the callback (the scheduler calls this, not user code)."""
        self.fired = True
        return self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event t={self.time:.6f} prio={self.priority} {state}>"


class EventHandle:
    """Opaque handle for a scheduled event.

    The handle remains valid after the event has fired; :attr:`active` then
    becomes ``False``.  Cancelling through the handle routes back to the
    owning scheduler so its live-event count stays exact.
    """

    __slots__ = ("_event", "_scheduler")

    def __init__(self, event: Event, scheduler: Any = None):
        self._event = event
        self._scheduler = scheduler

    @property
    def time(self) -> float:
        """Simulated time at which the event is (or was) scheduled to fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True if the event was cancelled before firing."""
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has been invoked."""
        return self._event.fired

    @property
    def active(self) -> bool:
        """True while the event is still queued (not popped, not cancelled)."""
        return not self._event.dequeued and not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event if it is still queued (idempotent)."""
        if self._scheduler is not None:
            self._scheduler.cancel(self)
        elif self.active:
            self._event.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<EventHandle t={self._event.time:.6f} {state}>"
