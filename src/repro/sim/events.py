"""Event objects used by the discrete-event scheduler.

An :class:`Event` is an immutable record of *when* a callback should fire and
with which arguments.  :class:`EventHandle` is the user-facing token returned
by :meth:`repro.sim.simulator.Simulator.schedule`; it supports cancellation
and introspection without exposing the scheduler internals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


#: Monotone counter used to break ties between events scheduled for the same
#: simulated time.  Ties are broken in scheduling order (FIFO), which keeps
#: protocol state machines deterministic.
_sequence = itertools.count()


def next_sequence() -> int:
    """Return the next global event sequence number."""
    return next(_sequence)


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, sequence)``; the callback and its
    arguments do not participate in the ordering.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[..., Any] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    #: True once the scheduler has removed the event from its queue (the only
    #: other way out is cancellation).  Cancelling a dequeued event must be a
    #: no-op or the scheduler's live-event count goes negative.
    dequeued: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; the scheduler will skip it."""
        self.cancelled = True

    def fire(self) -> Any:
        """Invoke the callback (the scheduler calls this, not user code)."""
        self.fired = True
        return self.callback(*self.args)


class EventHandle:
    """Opaque handle for a scheduled event.

    The handle remains valid after the event has fired; :attr:`active` then
    becomes ``False``.  Cancelling through the handle routes back to the
    owning scheduler so its live-event count stays exact.
    """

    __slots__ = ("_event", "_scheduler")

    def __init__(self, event: Event, scheduler: Any = None):
        self._event = event
        self._scheduler = scheduler

    @property
    def time(self) -> float:
        """Simulated time at which the event is (or was) scheduled to fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True if the event was cancelled before firing."""
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has been invoked."""
        return self._event.fired

    @property
    def active(self) -> bool:
        """True while the event is still queued (not popped, not cancelled)."""
        return not self._event.dequeued and not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event if it is still queued (idempotent)."""
        if self._scheduler is not None:
            self._scheduler.cancel(self)
        elif self.active:
            self._event.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<EventHandle t={self._event.time:.6f} {state}>"
