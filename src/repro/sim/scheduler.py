"""Binary-heap event scheduler.

The heap stores ``(time, priority, sequence, event)`` tuples, so heap
sifting compares in C (floats/ints) and never calls a Python ``__lt__`` —
``sequence`` is globally unique, which guarantees the :class:`Event` in the
last slot is never reached by a comparison.

Cancellation is lazy — cancelled events stay in the heap and are discarded
when they surface — but no longer unbounded: restart-heavy workloads (TCP
RTO backoff, HELLO jitter, AODV ring timeouts) cancel far more events than
they pop, and before compaction the heap grew without limit.  The scheduler
counts cancelled entries still buried in the heap and rebuilds the heap
without them once they are the majority (and above a floor that keeps tiny
heaps free of compaction overhead), bounding heap size at roughly twice the
live-event count.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.sim.events import Event, EventHandle, next_sequence


class Scheduler:
    """Priority queue of pending simulation events."""

    __slots__ = ("_heap", "_pending", "_cancelled_in_heap")

    #: Compaction floor: never rebuild heaps with fewer buried cancellations.
    COMPACT_MIN_CANCELLED = 64
    #: Rebuild once cancelled entries make up at least half the heap.
    COMPACT_FRACTION = 0.5

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._pending = 0
        self._cancelled_in_heap = 0

    def __len__(self) -> int:
        """Number of *live* (not cancelled) events still queued."""
        return self._pending

    @property
    def empty(self) -> bool:
        """True when no live events remain."""
        return self._pending == 0

    @property
    def heap_size(self) -> int:
        """Total heap entries, live *and* lazily-cancelled (introspection)."""
        return len(self._heap)

    @property
    def cancelled_in_heap(self) -> int:
        """Cancelled events still buried in the heap (introspection)."""
        return self._cancelled_in_heap

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> EventHandle:
        """Queue ``callback(*args)`` to run at simulated ``time``.

        ``priority`` breaks ties at equal times (lower runs first); equal
        priorities run in scheduling order.
        """
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        time = float(time)
        priority = int(priority)
        sequence = next_sequence()
        event = Event(time, priority, sequence, callback, tuple(args))
        heapq.heappush(self._heap, (time, priority, sequence, event))
        self._pending += 1
        return EventHandle(event, self)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (no-op if already fired).

        ``EventHandle.cancel`` routes here too, so the live-event count is
        decremented exactly once per cancellation regardless of the path.
        """
        event = handle._event
        if event.dequeued or event.cancelled:
            return
        event.cancelled = True
        self._pending -= 1
        self._cancelled_in_heap += 1
        if (self._cancelled_in_heap >= self.COMPACT_MIN_CANCELLED
                and self._cancelled_in_heap
                >= self.COMPACT_FRACTION * len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without the lazily-cancelled entries."""
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` when empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)[3]
        event.dequeued = True
        self._pending -= 1
        return event

    def pop_next(self, until: Optional[float] = None) -> Optional[Event]:
        """Fused peek-and-pop for the run loop.

        Returns the next live event, or ``None`` when the queue is empty *or*
        the next live event lies strictly beyond ``until`` (in which case it
        stays queued).
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap and heap[0][3].cancelled:
            heappop(heap)
            self._cancelled_in_heap -= 1
        if not heap or (until is not None and heap[0][0] > until):
            return None
        event = heappop(heap)[3]
        event.dequeued = True
        self._pending -= 1
        return event

    def clear(self) -> None:
        """Drop every pending event.

        Each dropped event is marked cancelled so that handles issued for it
        go inactive; cancelling such a handle afterwards is a no-op instead of
        driving the live-event count negative.
        """
        for entry in self._heap:
            entry[3].cancelled = True
        self._heap.clear()
        self._pending = 0
        self._cancelled_in_heap = 0

    def _discard_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
