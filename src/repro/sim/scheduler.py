"""Binary-heap event scheduler.

The scheduler is deliberately small: a heap of :class:`~repro.sim.events.Event`
objects ordered by ``(time, priority, sequence)``.  Cancellation is lazy —
cancelled events stay in the heap and are discarded when popped — which keeps
both operations O(log n) without bookkeeping.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.sim.events import Event, EventHandle, next_sequence


class Scheduler:
    """Priority queue of pending simulation events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._pending = 0

    def __len__(self) -> int:
        """Number of *live* (not cancelled) events still queued."""
        return self._pending

    @property
    def empty(self) -> bool:
        """True when no live events remain."""
        return self._pending == 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> EventHandle:
        """Queue ``callback(*args)`` to run at simulated ``time``.

        ``priority`` breaks ties at equal times (lower runs first); equal
        priorities run in scheduling order.
        """
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        event = Event(
            time=float(time),
            priority=int(priority),
            sequence=next_sequence(),
            callback=callback,
            args=tuple(args),
        )
        heapq.heappush(self._heap, event)
        self._pending += 1
        return EventHandle(event, self)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (no-op if already fired).

        ``EventHandle.cancel`` routes here too, so the live-event count is
        decremented exactly once per cancellation regardless of the path.
        """
        if handle.active:
            handle._event.cancel()
            self._pending -= 1

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` when empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        event.dequeued = True
        self._pending -= 1
        return event

    def clear(self) -> None:
        """Drop every pending event.

        Each dropped event is marked cancelled so that handles issued for it
        go inactive; cancelling such a handle afterwards is a no-op instead of
        driving the live-event count negative.
        """
        for event in self._heap:
            event.cancel()
        self._heap.clear()
        self._pending = 0

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
