"""Reproducible random-number streams.

Each component (every node's MAC backoff, every PHY error draw, every traffic
source) gets its *own* ``random.Random`` stream derived deterministically from
the simulator's root seed and a stable string label.  This makes runs
reproducible and — more importantly for experiments — makes a change in one
component's random consumption not perturb every other component.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of named, deterministic ``random.Random`` streams."""

    __slots__ = ("root_seed", "_streams")

    def __init__(self, root_seed: int = 1) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, label: str) -> random.Random:
        """Return the stream for ``label``, creating it on first use.

        The same ``(root_seed, label)`` pair always yields the same sequence.
        """
        if label not in self._streams:
            self._streams[label] = random.Random(self._derive_seed(label))
        return self._streams[label]

    def fork(self, label: str) -> "RandomStreams":
        """Return a new :class:`RandomStreams` whose root is derived from ``label``."""
        return RandomStreams(self._derive_seed(label))

    def _derive_seed(self, label: str) -> int:
        digest = hashlib.sha256(f"{self.root_seed}:{label}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def __contains__(self, label: str) -> bool:
        return label in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams root={self.root_seed} streams={len(self._streams)}>"
