"""The simulation clock and run loop.

:class:`Simulator` owns a :class:`~repro.sim.scheduler.Scheduler`, the current
simulated time, the root random-number streams and the tracer.  Every other
component in the library holds a reference to a ``Simulator`` and interacts
with time exclusively through it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.journey import NULL_JOURNEY
from repro.obs.metrics import NULL_METRICS
from repro.obs.profiler import perf_counter
from repro.obs.session import on_simulator_created
from repro.sim.events import EventHandle
from repro.sim.randomness import RandomStreams
from repro.sim.scheduler import Scheduler
from repro.sim.telemetry import TELEMETRY
from repro.sim.trace import Tracer


class Simulator:
    """Discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all random streams derived from this simulator.
    trace_enabled:
        When true, components may emit :class:`~repro.sim.trace.TraceRecord`
        entries through :attr:`tracer`; tracing is off by default because the
        experiments generate millions of events.
    """

    #: Event priorities.  Lower values fire first at equal times.  PHY events
    #: fire before MAC events which fire before application events so that a
    #: frame that finishes reception at time *t* is processed before a timer
    #: that expires at the same instant.
    __slots__ = ("_now", "_scheduler", "_running", "_stopped", "random",
                 "tracer", "_events_processed", "metrics", "capture",
                 "profiler", "journey")

    PRIORITY_PHY = 0
    PRIORITY_MAC = 10
    PRIORITY_NET = 20
    PRIORITY_APP = 30
    PRIORITY_DEFAULT = 50

    def __init__(self, seed: int = 1, trace_enabled: bool = False) -> None:
        self._now = 0.0
        self._scheduler = Scheduler()
        self._running = False
        self._stopped = False
        self.random = RandomStreams(seed)
        self.tracer = Tracer(self, enabled=trace_enabled)
        self._events_processed = 0
        #: Metrics registry; the shared disabled one unless an observability
        #: session (``repro.obs.session.observe``) swaps in a live registry.
        #: Instrument sites guard on ``metrics.enabled``.
        self.metrics = NULL_METRICS
        #: Optional :class:`~repro.obs.capture.FrameCapture`; PHY hot paths
        #: guard on ``sim.capture is not None``.
        self.capture = None
        #: Optional :class:`~repro.obs.profiler.HotPathProfiler`; when set,
        #: :meth:`run` switches to the profiled loop.
        self.profiler = None
        #: Per-packet journey recorder; the shared disabled one unless an
        #: observability session swaps in a live recorder.  Instrument sites
        #: guard on ``journey.enabled``.
        self.journey = NULL_JOURNEY
        # Adopt this simulator into the active observability session, if any.
        on_simulator_created(self)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._scheduler)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._scheduler.push(self._now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        return self._scheduler.push(time, callback, args, priority)

    def cancel(self, handle: Optional[EventHandle]) -> None:
        """Cancel a pending event; ``None`` and already-fired handles are ignored."""
        if handle is not None:
            self._scheduler.cancel(handle)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or ``stop()``.

        Returns the simulated time at which the run loop exited.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        if self.profiler is not None:
            return self._run_profiled(until, max_events)
        self._running = True
        self._stopped = False
        processed_this_run = 0
        started_at = self._now
        scheduler = self._scheduler
        pop_next = scheduler.pop_next
        try:
            while not self._stopped:
                event = pop_next(until)
                if event is None:
                    if until is not None and not scheduler.empty:
                        # Horizon reached with live events still beyond it.
                        self._now = until
                    break
                self._now = event.time
                event.fired = True
                event.callback(*event.args)
                self._events_processed += 1
                processed_this_run += 1
                if max_events is not None and processed_this_run >= max_events:
                    break
            if until is not None and not self._stopped and scheduler.empty:
                # Queue drained before the horizon: advance the clock to it.
                self._now = max(self._now, until)
        finally:
            self._running = False
            TELEMETRY.record_run(processed_this_run, self._now - started_at)
        return self._now

    def _run_profiled(self, until: Optional[float],
                      max_events: Optional[int]) -> float:
        """:meth:`run` with per-callback :func:`perf_counter` timing.

        A separate loop so the unprofiled path pays nothing; the logic must
        mirror :meth:`run` exactly.  Callback wall-clock is attributed to the
        profiler's category for the callback; the remainder of the loop time
        (heap pops, dispatch) lands in its ``scheduler`` category.
        """
        profiler = self.profiler
        self._running = True
        self._stopped = False
        processed_this_run = 0
        started_at = self._now
        scheduler = self._scheduler
        pop_next = scheduler.pop_next
        callback_seconds = 0.0
        loop_started = perf_counter()
        try:
            while not self._stopped:
                event = pop_next(until)
                if event is None:
                    if until is not None and not scheduler.empty:
                        self._now = until
                    break
                self._now = event.time
                event.fired = True
                callback = event.callback
                before = perf_counter()
                callback(*event.args)
                elapsed = perf_counter() - before
                callback_seconds += elapsed
                profiler.record(profiler.category_for(callback), elapsed)
                self._events_processed += 1
                processed_this_run += 1
                if max_events is not None and processed_this_run >= max_events:
                    break
            if until is not None and not self._stopped and scheduler.empty:
                self._now = max(self._now, until)
        finally:
            profiler.record_loop(perf_counter() - loop_started, callback_seconds)
            self._running = False
            TELEMETRY.record_run(processed_this_run, self._now - started_at)
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        Random streams are *not* re-seeded; construct a new simulator for a
        fully fresh run.
        """
        self._scheduler.clear()
        self._now = 0.0
        self._stopped = False
        self._events_processed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self._now:.6f}s pending={self.pending_events} "
            f"processed={self._events_processed}>"
        )
