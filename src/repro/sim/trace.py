"""Event tracing.

The tracer is a cheap, optional sink for structured trace records emitted by
protocol layers (frame transmissions, MAC state transitions, TCP events).  It
is disabled by default; experiments enable it selectively when debugging or
when a statistic needs the raw event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


@dataclass(slots=True)
class TraceRecord:
    """A single trace entry."""

    time: float
    source: str
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"{self.time * 1e3:10.3f}ms [{self.source}] {self.category}.{self.event} {extras}"


class Tracer:
    """Collects :class:`TraceRecord` entries and dispatches them to listeners."""

    __slots__ = ("_sim", "enabled", "max_records", "records", "dropped", "_listeners")

    def __init__(self, sim: "Simulator", enabled: bool = False, max_records: Optional[int] = None) -> None:
        self._sim = sim
        self.enabled = enabled
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        #: Records emitted after :attr:`records` reached ``max_records`` and
        #: therefore not stored.  Listeners saw them regardless; a non-zero
        #: value means stored records are a truncated prefix of the stream.
        self.dropped = 0
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callable invoked for every emitted record.

        Listener contract: listeners fire for **every** emit while the tracer
        is enabled — including records dropped from storage because
        ``max_records`` was reached — in emission order, synchronously, from
        inside the emitting event.  A listener that needs the full stream is
        therefore unaffected by the storage bound; a listener must not assume
        the record it receives is also in :attr:`records`.
        """
        self._listeners.append(listener)

    def emit(self, source: str, category: str, event: str, **fields: Any) -> None:
        """Record a trace event if tracing is enabled.

        Storage is bounded by ``max_records``; once full, further records
        increment :attr:`dropped` instead of growing :attr:`records`, but are
        still dispatched to listeners (see :meth:`add_listener`).
        """
        if not self.enabled:
            return
        record = TraceRecord(
            time=self._sim.now, source=source, category=category, event=event, fields=fields
        )
        if self.max_records is None or len(self.records) < self.max_records:
            self.records.append(record)
        else:
            self.dropped += 1
        for listener in self._listeners:
            listener(record)

    def filter(self, category: Optional[str] = None, event: Optional[str] = None,
               source: Optional[str] = None) -> List[TraceRecord]:
        """Return stored records matching the given category/event/source."""
        result = []
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            if source is not None and record.source != source:
                continue
            result.append(record)
        return result

    def clear(self) -> None:
        """Drop all stored records and reset the overflow counter."""
        self.records.clear()
        self.dropped = 0
