"""Discrete-event simulation engine.

This package provides the minimal machinery the rest of the library is built
on: a priority-queue scheduler (:class:`~repro.sim.scheduler.Scheduler`), the
simulation clock and run loop (:class:`~repro.sim.simulator.Simulator`),
restartable timers (:class:`~repro.sim.timer.Timer`), reproducible random
streams (:class:`~repro.sim.randomness.RandomStreams`), a trace/logging hook
(:class:`~repro.sim.trace.Tracer`) and simple time-series monitors
(:mod:`repro.sim.monitor`).
"""

from repro.sim.events import Event, EventHandle
from repro.sim.scheduler import Scheduler
from repro.sim.simulator import Simulator
from repro.sim.telemetry import TELEMETRY, SimTelemetry
from repro.sim.timer import Timer
from repro.sim.randomness import RandomStreams
from repro.sim.trace import TraceRecord, Tracer
from repro.sim.monitor import CounterMonitor, TimeSeriesMonitor, TimeWeightedMonitor

__all__ = [
    "Event",
    "EventHandle",
    "Scheduler",
    "Simulator",
    "SimTelemetry",
    "TELEMETRY",
    "Timer",
    "RandomStreams",
    "Tracer",
    "TraceRecord",
    "CounterMonitor",
    "TimeSeriesMonitor",
    "TimeWeightedMonitor",
]
