"""Measurement monitors.

Three small helpers used throughout the statistics layer:

* :class:`CounterMonitor` — named integer/float counters.
* :class:`TimeSeriesMonitor` — records ``(time, value)`` samples and computes
  simple summary statistics.
* :class:`TimeWeightedMonitor` — tracks a piecewise-constant quantity (queue
  length, channel busy state) and integrates it over time so that averages
  are weighted by how long each value persisted.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.sim.simulator import Simulator


class CounterMonitor:
    """A bag of named counters."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at zero on first use)."""
        self._counts[name] = self._counts.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Copy of all counters."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()


class TimeSeriesMonitor:
    """Records explicit ``(time, value)`` observations."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str = "series") -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append an observation."""
        self.samples.append((time, value))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.samples)

    @property
    def values(self) -> List[float]:
        """The observed values, in recording order."""
        return [v for _, v in self.samples]

    def mean(self) -> float:
        """Arithmetic mean of the observed values (0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(self.values) / len(self.samples)

    def total(self) -> float:
        """Sum of the observed values."""
        return sum(self.values)

    def minimum(self) -> float:
        """Smallest observed value (NaN when empty)."""
        return min(self.values) if self.samples else math.nan

    def maximum(self) -> float:
        """Largest observed value (NaN when empty)."""
        return max(self.values) if self.samples else math.nan

    def stddev(self) -> float:
        """Population standard deviation of the observed values."""
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / len(self.samples))


class TimeWeightedMonitor:
    """Integrates a piecewise-constant value over simulated time."""

    __slots__ = ("name", "_sim", "_value", "_last_change", "_weighted_sum",
                 "_start_time")

    def __init__(self, sim: Simulator, initial: float = 0.0, name: str = "level") -> None:
        self.name = name
        self._sim = sim
        self._value = initial
        self._last_change = sim.now
        self._weighted_sum = 0.0
        self._start_time = sim.now

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def set(self, value: float) -> None:
        """Change the level, accumulating the time spent at the previous one."""
        now = self._sim.now
        self._weighted_sum += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def adjust(self, delta: float) -> None:
        """Add ``delta`` to the current level."""
        self.set(self._value + delta)

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted average of the level since construction."""
        end = self._sim.now if until is None else until
        elapsed = end - self._start_time
        if elapsed <= 0:
            return self._value
        total = self._weighted_sum + self._value * (end - self._last_change)
        return total / elapsed
