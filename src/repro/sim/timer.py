"""Restartable one-shot timers.

Protocol code (MAC retransmission timeouts, TCP RTO, DBA flush timers, CBR
sources) needs timers that can be started, restarted and cancelled without the
caller tracking :class:`~repro.sim.events.EventHandle` objects by hand.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import EventHandle
from repro.sim.simulator import Simulator


class Timer:
    """A cancellable, restartable one-shot timer.

    The callback is invoked with no arguments when the timer expires.  Calling
    :meth:`start` while the timer is running restarts it (the previous
    expiration is cancelled).
    """

    __slots__ = ("_sim", "_callback", "_priority", "_handle", "name",
                 "expirations")

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], Any],
        priority: int = Simulator.PRIORITY_DEFAULT,
        name: str = "timer",
    ) -> None:
        if not callable(callback):
            raise SimulationError("timer callback must be callable")
        self._sim = sim
        self._callback = callback
        self._priority = priority
        self._handle: Optional[EventHandle] = None
        self.name = name
        self.expirations = 0

    @property
    def running(self) -> bool:
        """True while an expiration is pending."""
        return self._handle is not None and self._handle.active

    @property
    def expiry_time(self) -> Optional[float]:
        """Absolute simulated time of the pending expiration, if any."""
        if self.running:
            return self._handle.time
        return None

    def start(self, delay: float) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        sim = self._sim
        handle = self._handle
        if handle is not None:
            sim.cancel(handle)
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # Push straight onto the scheduler: timers are restarted on nearly
        # every frame (backoff, response timeouts), making this one of the
        # hottest scheduling call sites.
        self._handle = sim._scheduler.push(sim.now + delay, self._fire, (),
                                           self._priority)

    def cancel(self) -> None:
        """Disarm the timer if it is running (idempotent)."""
        if self._handle is not None:
            self._sim.cancel(self._handle)
            self._handle = None

    def remaining(self) -> float:
        """Seconds until expiration (0.0 when not running)."""
        if not self.running:
            return 0.0
        return max(0.0, self._handle.time - self._sim.now)

    def _fire(self) -> None:
        self._handle = None
        self.expirations += 1
        self._callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"expires@{self._handle.time:.6f}" if self.running else "idle"
        return f"<Timer {self.name} {state}>"


class PeriodicTimer:
    """A timer that re-arms itself with a fixed period until stopped."""

    __slots__ = ("_period", "_callback", "_timer", "_stopped", "ticks")

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        priority: int = Simulator.PRIORITY_DEFAULT,
        name: str = "periodic",
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._period = period
        self._callback = callback
        self._timer = Timer(sim, self._tick, priority=priority, name=name)
        self._stopped = False
        self.ticks = 0

    @property
    def period(self) -> float:
        """Current period in seconds."""
        return self._period

    @period.setter
    def period(self, value: float) -> None:
        if value <= 0:
            raise SimulationError(f"period must be positive, got {value}")
        self._period = value

    @property
    def running(self) -> bool:
        """True while ticks are scheduled."""
        return self._timer.running

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Start ticking; the first tick fires after ``initial_delay`` (default: one period)."""
        delay = self._period if initial_delay is None else initial_delay
        self._stopped = False
        self._timer.start(delay)

    def stop(self) -> None:
        """Stop ticking (idempotent, also honoured when called mid-callback)."""
        self._stopped = True
        self._timer.cancel()

    def _tick(self) -> None:
        self.ticks += 1
        self._callback()
        # The callback may have stopped the timer (the flag, not the
        # underlying one-shot, records that) or restarted it itself; only
        # re-arm when neither happened.
        timer = self._timer
        if not self._stopped and not timer.running:
            # Direct re-arm: _fire already cleared the handle, so the cancel
            # half of Timer.start is dead weight on this per-tick path.
            sim = timer._sim
            timer._handle = sim._scheduler.push(
                sim.now + self._period, timer._fire, (), timer._priority)
