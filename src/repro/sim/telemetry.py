"""Process-wide simulation throughput counters.

The bench harness (:mod:`repro.bench`) needs to know how many events a
benchmark executed and how much simulated time it covered, but the simulators
involved are created deep inside the experiment runners.  Rather than thread a
collector through every scenario builder, :meth:`repro.sim.simulator.Simulator.run`
adds its per-run totals to one module-level accumulator on exit; harness code
snapshots the accumulator before and after a measured call and subtracts.

The accounting costs one attribute update per ``run()`` *call* (not per
event), so it is always on.
"""

from __future__ import annotations

from typing import Tuple


class SimTelemetry:
    """Accumulated event/time totals across every :class:`Simulator` run."""

    __slots__ = ("events", "sim_seconds", "runs")

    def __init__(self) -> None:
        self.events = 0
        self.sim_seconds = 0.0
        self.runs = 0

    def record_run(self, events: int, sim_seconds: float) -> None:
        """Add one ``Simulator.run()`` invocation's totals."""
        self.events += events
        self.sim_seconds += sim_seconds
        self.runs += 1

    def record_remote(self, events: int, sim_seconds: float, runs: int = 0) -> None:
        """Fold in totals measured in *another* process.

        Campaign pool workers accumulate into their own process's
        ``TELEMETRY``, which dies with the worker; the runner carries each
        job's deltas back in the job result and credits them here so the
        parent's totals cover the whole campaign regardless of ``--jobs``.
        """
        self.events += events
        self.sim_seconds += sim_seconds
        self.runs += runs

    def snapshot(self) -> Tuple[int, float, int]:
        """Current ``(events, sim_seconds, runs)`` totals."""
        return (self.events, self.sim_seconds, self.runs)

    def reset(self) -> None:
        """Zero the counters (unit tests)."""
        self.events = 0
        self.sim_seconds = 0.0
        self.runs = 0


#: The process-wide accumulator written by every simulator in this process.
TELEMETRY = SimTelemetry()
