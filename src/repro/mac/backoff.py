"""Binary-exponential backoff state.

The DCF state machine owns *when* slots are counted down (it must freeze the
counter while the medium is busy); this class owns the contention-window
arithmetic: drawing a uniform slot count, doubling on failure and resetting
on success.
"""

from __future__ import annotations

import random

from repro.mac.timing import MacTimingProfile


class BackoffController:
    """Contention window and slot-count management for one MAC."""

    __slots__ = ("timing", "_rng", "_cw", "slots_remaining", "draws")

    def __init__(self, timing: MacTimingProfile, rng: random.Random) -> None:
        self.timing = timing
        self._rng = rng
        self._cw = timing.cw_min
        self.slots_remaining = 0
        self.draws = 0

    @property
    def contention_window(self) -> int:
        """Current contention window size."""
        return self._cw

    def draw(self) -> int:
        """Draw a fresh backoff count uniformly from ``[0, cw)``."""
        self.slots_remaining = self._rng.randrange(self._cw)
        self.draws += 1
        return self.slots_remaining

    def consume(self, slots: int) -> None:
        """Record that ``slots`` backoff slots elapsed while the medium was idle."""
        self.slots_remaining = max(0, self.slots_remaining - slots)

    @property
    def expired(self) -> bool:
        """True once the backoff counter reaches zero."""
        return self.slots_remaining == 0

    def on_failure(self) -> None:
        """Double the contention window (bounded by ``cw_max``)."""
        self._cw = min(self._cw * 2, self.timing.cw_max)

    def on_success(self) -> None:
        """Reset the contention window to ``cw_min``."""
        self._cw = self.timing.cw_min

    def reset(self) -> None:
        """Reset both the contention window and any pending slot count."""
        self._cw = self.timing.cw_min
        self.slots_remaining = 0
