"""MAC timing parameters.

The Hydra MAC is the 802.11 DCF; its interframe spaces and slot time are much
larger than commodity 802.11 silicon because the whole MAC/PHY pipeline runs
in software on a general-purpose host behind a USB radio.  The defaults in
:data:`HYDRA_MAC_TIMING` are calibrated so that the fixed per-exchange
overhead of the *no aggregation* configuration lands in the 2.4–2.7 ms range,
which reproduces the time-overhead column of Table 4 in the paper (22.4 % at
0.65 Mbps rising to ~52 % at 2.6 Mbps for ~765 B average frames).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import microseconds


@dataclass(slots=True)
class MacTimingProfile:
    """Interframe spaces, slot time and contention-window parameters."""

    slot_time: float = microseconds(60.0)
    sifs: float = microseconds(60.0)
    cw_min: int = 16
    cw_max: int = 1024
    #: Retry limit for the unicast portion of a frame (RTS failures and
    #: missing ACKs both count against it).
    retry_limit: int = 7
    #: Extra guard time added to control-response timeouts.
    timeout_guard: float = microseconds(30.0)

    def __post_init__(self) -> None:
        if self.slot_time <= 0 or self.sifs <= 0:
            raise ConfigurationError("slot_time and sifs must be positive")
        if self.cw_min < 1 or self.cw_max < self.cw_min:
            raise ConfigurationError("contention window bounds are inconsistent")
        if self.retry_limit < 0:
            raise ConfigurationError("retry_limit must be non-negative")

    @property
    def difs(self) -> float:
        """DCF interframe space: SIFS + 2 slots."""
        return self.sifs + 2.0 * self.slot_time

    @property
    def eifs(self) -> float:
        """Extended interframe space used after a reception error (simplified)."""
        return self.difs + self.sifs

    def average_backoff(self) -> float:
        """Mean initial backoff duration (used for documentation/calibration)."""
        return (self.cw_min - 1) / 2.0 * self.slot_time

    def response_timeout(self, response_airtime: float) -> float:
        """Timeout for an expected SIFS-separated response (CTS or ACK)."""
        return self.sifs + response_airtime + self.timeout_guard


#: Timing profile of the Hydra prototype MAC.
HYDRA_MAC_TIMING = MacTimingProfile()
