"""MAC transmit queues.

The paper's MAC keeps two queues (Section 4.2.3): one for broadcasts and one
for unicasts.  Pure TCP ACKs are placed in the broadcast queue by the
classifier even though they carry unicast destination addresses.  The
aggregator drains the broadcast queue first and then gathers unicast frames
addressed to the destination of the head of the unicast queue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from repro.mac.addresses import MacAddress
from repro.mac.frames import MacSubframe


class TransmitQueues:
    """The broadcast and unicast transmit queues of one MAC."""

    __slots__ = ("capacity", "_broadcast", "_unicast", "drops_broadcast",
                 "drops_unicast", "enqueued_broadcast", "enqueued_unicast")

    def __init__(self, capacity: int = 50) -> None:
        self.capacity = capacity
        self._broadcast: Deque[MacSubframe] = deque()
        self._unicast: Deque[MacSubframe] = deque()
        self.drops_broadcast = 0
        self.drops_unicast = 0
        self.enqueued_broadcast = 0
        self.enqueued_unicast = 0

    # ------------------------------------------------------------------
    # Enqueue
    # ------------------------------------------------------------------
    def enqueue_broadcast(self, subframe: MacSubframe) -> bool:
        """Append to the broadcast queue; returns False (and drops) when full."""
        if len(self._broadcast) >= self.capacity:
            self.drops_broadcast += 1
            return False
        subframe.transmit_in_broadcast_portion = True
        self._broadcast.append(subframe)
        self.enqueued_broadcast += 1
        return True

    def enqueue_unicast(self, subframe: MacSubframe) -> bool:
        """Append to the unicast queue; returns False (and drops) when full."""
        if len(self._unicast) >= self.capacity:
            self.drops_unicast += 1
            return False
        subframe.transmit_in_broadcast_portion = False
        self._unicast.append(subframe)
        self.enqueued_unicast += 1
        return True

    def requeue_unicast_front(self, subframes: Iterable[MacSubframe]) -> None:
        """Put unicast subframes back at the head of the queue (retransmission path)."""
        for subframe in reversed(list(subframes)):
            self._unicast.appendleft(subframe)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def broadcast_count(self) -> int:
        """Number of subframes waiting in the broadcast queue."""
        return len(self._broadcast)

    @property
    def unicast_count(self) -> int:
        """Number of subframes waiting in the unicast queue."""
        return len(self._unicast)

    @property
    def total_count(self) -> int:
        """Total queued subframes across both queues."""
        return len(self._broadcast) + len(self._unicast)

    @property
    def empty(self) -> bool:
        """True when both queues are empty."""
        return not self._broadcast and not self._unicast

    def head_unicast_destination(self) -> Optional[MacAddress]:
        """Destination of the first unicast subframe (None when empty)."""
        if not self._unicast:
            return None
        return self._unicast[0].dst

    def peek_broadcast(self) -> List[MacSubframe]:
        """Snapshot of the broadcast queue (front first)."""
        return list(self._broadcast)

    def peek_unicast(self) -> List[MacSubframe]:
        """Snapshot of the unicast queue (front first)."""
        return list(self._unicast)

    # ------------------------------------------------------------------
    # Dequeue (used by the aggregator)
    # ------------------------------------------------------------------
    def pop_broadcast_head(self) -> Optional[MacSubframe]:
        """Remove and return the first broadcast subframe."""
        if not self._broadcast:
            return None
        return self._broadcast.popleft()

    def remove_unicast(self, subframe: MacSubframe) -> None:
        """Remove a specific subframe from the unicast queue."""
        try:
            self._unicast.remove(subframe)
        except ValueError:  # pragma: no cover - defensive
            pass

    def take_unicast_for(self, destination: MacAddress, max_subframes: int,
                         fits) -> List[MacSubframe]:
        """Remove and return unicast subframes for ``destination``.

        Scans the queue in order, taking subframes whose destination matches
        and for which the callable ``fits(subframe)`` returns True, up to
        ``max_subframes``.  Non-matching subframes stay queued in order.
        """
        taken: List[MacSubframe] = []
        remaining: Deque[MacSubframe] = deque()
        unicast = self._unicast
        while unicast:
            if len(taken) >= max_subframes:
                # Limit reached: nothing further can be taken, so splice the
                # rest over wholesale instead of testing item by item.
                remaining.extend(unicast)
                break
            subframe = unicast.popleft()
            if subframe.dst == destination and fits(subframe):
                taken.append(subframe)
            else:
                remaining.append(subframe)
        self._unicast = remaining
        return taken

    def clear(self) -> None:
        """Drop everything in both queues."""
        self._broadcast.clear()
        self._unicast.clear()
