"""MAC frame formats and size accounting.

The MAC subframe format follows Figure 4 of the paper: frame control,
duration, three addresses, a 2-byte length field, the MPDU payload, an FCS
and PAD octets.  On the Hydra prototype the full link-layer encapsulation of
an MSS-sized (1357 B) TCP segment produces a 1464 B MAC frame and a pure TCP
ACK produces a 160 B MAC frame (Section 5); the constants below reproduce
those sizes exactly:

* ``SUBFRAME_OVERHEAD_BYTES = 67`` — MAC header (24 B), length field, FCS,
  LLC/SNAP encapsulation and alignment padding, measured end to end;
* ``MIN_SUBFRAME_BYTES = 160`` — small subframes (pure TCP ACKs are
  20 B TCP + 20 B IP + 67 B = 107 B) are padded up to the prototype's minimum
  subframe size.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.mac.addresses import BROADCAST_MAC, MacAddress
from repro.net.packet import Packet

#: Link-layer encapsulation overhead added to every network packet.
SUBFRAME_OVERHEAD_BYTES = 67
#: Minimum size of a MAC subframe (smaller payloads are padded).
MIN_SUBFRAME_BYTES = 160
#: Control frame sizes (bytes), as in 802.11.
RTS_FRAME_BYTES = 20
CTS_FRAME_BYTES = 14
ACK_FRAME_BYTES = 14

_sequence_numbers = itertools.count(1)


@dataclass(slots=True)
class MacSubframe:
    """One MAC subframe inside an aggregated physical frame.

    ``transmit_in_broadcast_portion`` records the queue the subframe was
    assigned to: pure TCP ACKs keep their unicast destination address but are
    carried (unacknowledged) in the broadcast portion of the frame
    (Section 3.3).
    """

    src: MacAddress
    dst: MacAddress
    packet: Packet
    sequence: int = field(default_factory=lambda: next(_sequence_numbers))
    duration: float = 0.0
    transmit_in_broadcast_portion: bool = False
    retries: int = 0
    enqueued_at: float = 0.0

    # Lazily-computed on-air size; the wrapped packet's size never changes.
    # A real (slotted) field rather than a shadowed class attribute, kept out
    # of repr/compare so it stays an invisible memo.
    _size_bytes_cache: Optional[int] = field(default=None, repr=False, compare=False)

    @property
    def size_bytes(self) -> int:
        """On-air size of the subframe (header + payload + FCS + padding)."""
        size = self._size_bytes_cache
        if size is None:
            size = max(self.packet.size_bytes + SUBFRAME_OVERHEAD_BYTES,
                       MIN_SUBFRAME_BYTES)
            self._size_bytes_cache = size
        return size

    @property
    def overhead_bytes(self) -> int:
        """Bytes that are MAC encapsulation rather than network payload."""
        return self.size_bytes - self.packet.size_bytes

    @property
    def is_link_broadcast(self) -> bool:
        """True when the destination is the broadcast MAC address."""
        return self.dst.is_broadcast

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        queue = "bcast" if self.transmit_in_broadcast_portion else "ucast"
        return (f"<MacSubframe seq={self.sequence} {self.src}->{self.dst} "
                f"{self.size_bytes}B {queue}>")


@dataclass(slots=True)
class RtsFrame:
    """Request-to-send control frame."""

    src: MacAddress
    dst: MacAddress
    duration: float = 0.0
    size_bytes: int = RTS_FRAME_BYTES


@dataclass(slots=True)
class CtsFrame:
    """Clear-to-send control frame (addressed to the RTS originator)."""

    dst: MacAddress
    duration: float = 0.0
    size_bytes: int = CTS_FRAME_BYTES


@dataclass(slots=True)
class AckFrame:
    """Link-level acknowledgement for the unicast portion of an aggregate."""

    dst: MacAddress
    #: Sequence number of the last unicast subframe being acknowledged, kept
    #: for tracing; the ACK acknowledges the whole unicast portion.
    acked_sequence: Optional[int] = None
    size_bytes: int = ACK_FRAME_BYTES


def subframe_for_packet(packet: Packet, src: MacAddress, dst: MacAddress,
                        broadcast_portion: bool = False, now: float = 0.0) -> MacSubframe:
    """Wrap a network packet into a MAC subframe."""
    return MacSubframe(
        src=src,
        dst=dst,
        packet=packet,
        transmit_in_broadcast_portion=broadcast_portion or dst.is_broadcast,
        enqueued_at=now,
    )
