"""The aggregating DCF MAC.

This is the Hydra MAC of Section 4 of the paper: IEEE 802.11 DCF with an
RTS/CTS exchange, extended with

* two transmit queues (broadcast and unicast) and a classifier that places
  pure TCP ACKs in the broadcast queue,
* transmit-time aggregation (the frame is assembled when the DCF acquires the
  floor),
* receive-side per-subframe CRC processing with all-or-nothing acceptance of
  the unicast portion and a single link-level ACK,
* address filtering of overheard broadcast-portion subframes that carry
  unicast addresses (classified TCP ACKs), and
* an optional block-ACK extension (future work in the paper, used by the
  ablation benchmarks).

The implementation is event driven: the PHY reports carrier busy/idle
transitions, frame receptions and transmit completions; the MAC reacts and
keeps explicit state (idle / contending / waiting for CTS / waiting for ACK).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.aggregator import AggregateBuild, Aggregator
from repro.core.block_ack import BlockAck, BlockAckScoreboard
from repro.core.classifier import TcpAckClassifier
from repro.core.deaggregation import DuplicateDetector, process_received_aggregate
from repro.core.policies import AggregationPolicy, broadcast_aggregation
from repro.errors import MacError
from repro.mac.addresses import BROADCAST_MAC, MacAddress
from repro.mac.backoff import BackoffController
from repro.mac.frames import (
    AckFrame,
    CtsFrame,
    MacSubframe,
    RtsFrame,
    subframe_for_packet,
)
from repro.mac.nav import NetworkAllocationVector
from repro.mac.queues import TransmitQueues
from repro.mac.stats import MacStatistics
from repro.mac.timing import HYDRA_MAC_TIMING, MacTimingProfile
from repro.net.packet import Packet
from repro.obs.journey import node_of
from repro.phy.device import Phy
from repro.phy.frame import FrameKind, PhyFrame, ReceptionResult
from repro.phy.link_adaptation import FixedRate, RateController
from repro.phy.rates import HYDRA_SISO_RATES, PhyRate
from repro.sim.simulator import Simulator
from repro.sim.timer import Timer

#: Callback signature for packets delivered to the network layer:
#: ``callback(packet, source_mac)``.
ReceiveCallback = Callable[[Packet, MacAddress], None]


class MacState(enum.Enum):
    """Coarse state of the DCF state machine."""

    IDLE = "idle"
    CONTEND = "contend"
    WAIT_CTS = "wait_cts"
    WAIT_ACK = "wait_ack"


@dataclass(slots=True)
class MacConfig:
    """Static configuration of one MAC instance."""

    address: MacAddress
    unicast_rate: PhyRate
    #: Rate for the broadcast portion; ``None`` means "same as unicast"
    #: unless the aggregation policy pins a rate (Figure 10).
    broadcast_rate: Optional[PhyRate] = None
    #: Rate for control frames (RTS/CTS/ACK); Hydra sends them at the base rate.
    basic_rate: PhyRate = HYDRA_SISO_RATES[0]
    timing: MacTimingProfile = field(default_factory=lambda: HYDRA_MAC_TIMING)
    use_rts_cts: bool = True
    #: Unicast portions at least this large use the RTS/CTS exchange.
    rts_threshold_bytes: int = 0
    queue_capacity: int = 50
    use_block_ack: bool = False
    dedup_cache_size: int = 128


class AggregatingMac:
    """802.11 DCF MAC with the paper's aggregation extensions."""

    __slots__ = ("sim", "phy", "config", "policy", "name", "address",
                 "timing", "queues", "classifier", "aggregator",
                 "duplicates", "stats", "rate_controller", "scoreboard",
                 "backoff", "nav", "state", "_current", "_pending_retry",
                 "_retry_count", "_flush_forced", "_drawn_slots",
                 "_backoff_resumed_at", "_access_timer", "_response_timer",
                 "_flush_timer", "_receive_callback", "_metrics",
                 "_journey", "_journey_node", "_exchange_seq")

    def __init__(
        self,
        sim: Simulator,
        phy: Phy,
        config: MacConfig,
        policy: Optional[AggregationPolicy] = None,
        rate_controller: Optional[RateController] = None,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.phy = phy
        self.config = config
        self.policy = policy or broadcast_aggregation()
        self.name = name or f"mac-{config.address}"
        self.address = config.address
        self.timing = config.timing

        self.queues = TransmitQueues(capacity=config.queue_capacity)
        self.classifier = TcpAckClassifier(enabled=self.policy.classify_tcp_acks_as_broadcast)
        self.aggregator = Aggregator(self.policy)
        self.duplicates = DuplicateDetector(cache_size=config.dedup_cache_size)
        self.stats = MacStatistics(name=self.name)
        self.rate_controller = rate_controller or FixedRate(config.unicast_rate)
        self.scoreboard = BlockAckScoreboard()

        rng = sim.random.stream(f"mac.{self.name}")
        self.backoff = BackoffController(self.timing, rng)
        self.nav = NetworkAllocationVector(sim, on_expire=self._on_medium_maybe_idle)

        self.state = MacState.IDLE
        self._current: Optional[AggregateBuild] = None
        self._pending_retry: Optional[AggregateBuild] = None
        self._retry_count = 0
        self._flush_forced = False
        self._drawn_slots = 0
        # Time backoff counting last (re)started; only meaningful while the
        # access timer runs (_pause_backoff checks that), but initialised here
        # so the attribute always exists under __slots__.
        self._backoff_resumed_at = 0.0

        self._access_timer = Timer(sim, self._on_backoff_complete,
                                   priority=Simulator.PRIORITY_MAC, name=f"{self.name}.access")
        self._response_timer = Timer(sim, self._on_response_timeout,
                                     priority=Simulator.PRIORITY_MAC, name=f"{self.name}.response")
        self._flush_timer = Timer(sim, self._on_flush_timeout,
                                  priority=Simulator.PRIORITY_MAC, name=f"{self.name}.flush")

        self._receive_callback: Optional[ReceiveCallback] = None
        self._metrics = sim.metrics
        self._journey = sim.journey
        self._journey_node = node_of(self.name, "mac")
        self._exchange_seq = 0
        sim.metrics.register_collector(self._collect_metrics)
        phy.attach_listener(self)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_receive_callback(self, callback: ReceiveCallback) -> None:
        """Register the network-layer handler for delivered packets."""
        self._receive_callback = callback

    # ------------------------------------------------------------------
    # Rates
    # ------------------------------------------------------------------
    @property
    def unicast_rate(self) -> PhyRate:
        """Rate used for the unicast portion of data frames."""
        return self.rate_controller.current_rate()

    @property
    def broadcast_rate(self) -> PhyRate:
        """Rate used for the broadcast portion of data frames."""
        if self.config.broadcast_rate is not None:
            return self.config.broadcast_rate
        return self.unicast_rate

    # ------------------------------------------------------------------
    # Transmit path: enqueue
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, next_hop: MacAddress) -> bool:
        """Queue ``packet`` for transmission to ``next_hop``.

        Returns False when the relevant queue overflowed and the packet was
        dropped.
        """
        subframe = subframe_for_packet(packet, src=self.address, dst=next_hop,
                                       now=self.sim.now)
        use_broadcast_queue = self.classifier.belongs_in_broadcast_queue(
            packet, link_broadcast=next_hop.is_broadcast)
        if use_broadcast_queue:
            accepted = self.queues.enqueue_broadcast(subframe)
        else:
            accepted = self.queues.enqueue_unicast(subframe)
        metrics = self._metrics
        journey = self._journey
        if not accepted:
            self.stats.queue_drops += 1
            if metrics.enabled:
                metrics.inc("mac.queue_drops", node=self.name,
                            kind="broadcast" if use_broadcast_queue else "unicast")
            if journey.enabled:
                journey.record(self.sim.now, self._journey_node, "mac", "drop",
                               packet, reason="queue_full")
            return False
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(self.name, "mac", "enqueue",
                        queue="bcast" if use_broadcast_queue else "ucast",
                        bytes=subframe.size_bytes)
        if metrics.enabled:
            metrics.inc("mac.enqueued", node=self.name,
                        queue="bcast" if use_broadcast_queue else "ucast")
        if journey.enabled:
            journey.record(self.sim.now, self._journey_node, "mac", "enqueue",
                           packet,
                           queue="bcast" if use_broadcast_queue else "ucast")
        self._try_start_access()
        return True

    # ------------------------------------------------------------------
    # Transmit path: channel access
    # ------------------------------------------------------------------
    def _medium_busy(self) -> bool:
        return self.phy.carrier_busy or self.nav.busy

    def _try_start_access(self) -> None:
        if self.state is not MacState.IDLE:
            return
        if self.queues.empty and self._pending_retry is None:
            return
        if not self._delay_condition_met():
            if not self._flush_timer.running:
                self._flush_timer.start(self.policy.delayed_flush_timeout)
            return
        self._flush_timer.cancel()
        self.state = MacState.CONTEND
        self._drawn_slots = self.backoff.draw()
        self._resume_backoff()

    def _delay_condition_met(self) -> bool:
        if self._pending_retry is not None:
            return True
        if self.policy.min_frames_before_transmit <= 1 or self._flush_forced:
            return True
        return self.queues.total_count >= self.policy.min_frames_before_transmit

    def _on_flush_timeout(self) -> None:
        self._flush_forced = True
        self._try_start_access()

    def _resume_backoff(self) -> None:
        if self.state is not MacState.CONTEND:
            return
        if self._medium_busy():
            return
        if self._access_timer.running:
            return
        delay = self.timing.difs + self.backoff.slots_remaining * self.timing.slot_time
        self._backoff_resumed_at = self.sim.now
        self._access_timer.start(delay)

    def _pause_backoff(self) -> None:
        if self.state is not MacState.CONTEND or not self._access_timer.running:
            return
        elapsed = self.sim.now - self._backoff_resumed_at
        idle_slots = int(max(0.0, elapsed - self.timing.difs) / self.timing.slot_time)
        self.backoff.consume(idle_slots)
        self._access_timer.cancel()

    def _on_backoff_complete(self) -> None:
        if self.state is not MacState.CONTEND:  # pragma: no cover - defensive
            return
        self.stats.record_ifs(self.timing.difs)
        self.stats.record_contention(self._drawn_slots * self.timing.slot_time)
        self.backoff.slots_remaining = 0
        self._begin_exchange()

    # ------------------------------------------------------------------
    # Transmit path: the exchange
    # ------------------------------------------------------------------
    def _begin_exchange(self) -> None:
        if self._pending_retry is not None:
            self._current = self._pending_retry
            self._pending_retry = None
        else:
            self._current = self.aggregator.build(self.queues)
        if self._current is None or self._current.empty:
            self._current = None
            self.state = MacState.IDLE
            self._try_start_access()
            return

        journey = self._journey
        if journey.enabled:
            self._exchange_seq += 1
            now = self.sim.now
            node = self._journey_node
            for slot, subframe in enumerate(self._current.broadcast_subframes):
                journey.record(now, node, "mac", "aggregate", subframe.packet,
                               attempt=self._exchange_seq, slot=slot,
                               portion="broadcast")
            for slot, subframe in enumerate(self._current.unicast_subframes):
                journey.record(now, node, "mac", "aggregate", subframe.packet,
                               attempt=self._exchange_seq, slot=slot,
                               portion="unicast")

        needs_rts = (
            self._current.has_unicast
            and self.config.use_rts_cts
            and self._current.unicast_bytes >= self.config.rts_threshold_bytes
        )
        if needs_rts:
            self._send_rts()
        else:
            self._send_data_frame()

    def _control_airtime(self, size_bytes: int) -> float:
        return self.phy.config.timing.control_airtime(size_bytes, self.config.basic_rate)

    def _build_data_frame(self) -> PhyFrame:
        assert self._current is not None
        frame = self._current.to_phy_frame(self.unicast_rate, self._resolved_broadcast_rate())
        # Virtual carrier sensing: the duration field of the first unicast
        # subframe reserves the medium for the SIFS + ACK that follows.
        ack_time = self._control_airtime(AckFrame(dst=self.address).size_bytes)
        reservation = self.timing.sifs + ack_time if frame.has_unicast else 0.0
        for subframe in list(frame.broadcast_subframes) + list(frame.unicast_subframes):
            subframe.duration = reservation
        return frame

    def _resolved_broadcast_rate(self) -> PhyRate:
        return self.broadcast_rate

    def _send_rts(self) -> None:
        assert self._current is not None
        data_frame = self._build_data_frame()
        cts_time = self._control_airtime(CtsFrame(dst=self.address).size_bytes)
        ack_time = self._control_airtime(AckFrame(dst=self.address).size_bytes)
        data_time = data_frame.airtime(self.phy.config.timing)
        reservation = 3 * self.timing.sifs + cts_time + data_time + ack_time
        rts = RtsFrame(src=self.address, dst=self._current.destination, duration=reservation)
        frame = PhyFrame.control_frame(FrameKind.RTS, rts, self.config.basic_rate)
        self._pause_backoff()
        airtime = self.phy.send(frame)
        self.stats.record_control_frame("rts", airtime)
        self.state = MacState.WAIT_CTS
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(self.name, "mac", "rts", dst=str(rts.dst))

    def _send_data_frame(self) -> None:
        if self._current is None:  # pragma: no cover - defensive
            return
        frame = self._build_data_frame()
        self._pause_backoff()
        self.phy.send(frame)
        self.stats.record_data_frame(self.sim.now, frame, self.phy.config.timing)
        if self.config.use_block_ack and frame.has_unicast:
            self.scoreboard.register(list(frame.unicast_subframes))
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(self.name, "mac", "data_tx",
                        subframes=frame.subframe_count, bytes=frame.total_bytes)
        journey = self._journey
        if journey.enabled:
            now = self.sim.now
            node = self._journey_node
            for subframe in frame.broadcast_subframes:
                journey.record(now, node, "mac", "tx", subframe.packet,
                               attempt=self._exchange_seq, portion="broadcast")
            for subframe in frame.unicast_subframes:
                journey.record(now, node, "mac", "tx", subframe.packet,
                               attempt=self._exchange_seq, portion="unicast")

    # ------------------------------------------------------------------
    # PHY listener interface
    # ------------------------------------------------------------------
    def on_transmit_complete(self, frame: PhyFrame) -> None:
        """PHY finished sending one of our frames."""
        if frame.kind is FrameKind.RTS:
            cts_time = self._control_airtime(CtsFrame(dst=self.address).size_bytes)
            self._response_timer.start(self.timing.response_timeout(cts_time))
        elif frame.kind is FrameKind.DATA and frame.sender is self.phy:
            if self.state in (MacState.CONTEND, MacState.IDLE, MacState.WAIT_CTS):
                # Data sent by the exchange initiated by us.  The broadcast
                # portion is never acknowledged; custody of those packets ends
                # here (the air has them now).
                journey = self._journey
                if journey.enabled:
                    now = self.sim.now
                    node = self._journey_node
                    for subframe in frame.broadcast_subframes:
                        journey.record(now, node, "mac", "sent_unacked",
                                       subframe.packet,
                                       attempt=self._exchange_seq)
                if frame.has_unicast:
                    ack_size = (BlockAck(dst=self.address, received_sequences=frozenset()).size_bytes
                                if self.config.use_block_ack else AckFrame(dst=self.address).size_bytes)
                    ack_time = self._control_airtime(ack_size)
                    self.state = MacState.WAIT_ACK
                    self._response_timer.start(self.timing.response_timeout(ack_time))
                else:
                    self._complete_success(broadcast_only=True)
        elif frame.kind in (FrameKind.CTS, FrameKind.ACK):
            # We just answered someone else's exchange; resume our own work.
            self._on_medium_maybe_idle()
        self._try_start_access()

    def on_carrier_busy(self) -> None:
        """PHY reports energy on the medium."""
        self._pause_backoff()

    def on_carrier_idle(self) -> None:
        """PHY reports the medium went idle."""
        self._on_medium_maybe_idle()

    def _on_medium_maybe_idle(self) -> None:
        if self.state is MacState.CONTEND and not self._medium_busy():
            self._resume_backoff()

    def on_frame_received(self, result: ReceptionResult) -> None:
        """PHY delivered a decoded frame."""
        frame = result.frame
        if frame.kind is FrameKind.RTS:
            self._handle_rts(result)
        elif frame.kind is FrameKind.CTS:
            self._handle_cts(result)
        elif frame.kind is FrameKind.ACK:
            self._handle_ack(result)
        else:
            self._handle_data(result)

    # ------------------------------------------------------------------
    # Receive path: control frames
    # ------------------------------------------------------------------
    def _handle_rts(self, result: ReceptionResult) -> None:
        if not result.control_ok:
            return
        rts: RtsFrame = result.frame.control
        if rts.dst == self.address:
            remaining = max(0.0, rts.duration - self.timing.sifs)
            cts = CtsFrame(dst=rts.src, duration=remaining)
            self.sim.schedule(self.timing.sifs, self._send_control_response,
                              FrameKind.CTS, cts, priority=Simulator.PRIORITY_MAC)
        else:
            self.nav.update(rts.duration)
            self._pause_backoff()

    def _handle_cts(self, result: ReceptionResult) -> None:
        if not result.control_ok:
            return
        cts: CtsFrame = result.frame.control
        if cts.dst == self.address and self.state is MacState.WAIT_CTS:
            self._response_timer.cancel()
            self.stats.record_control_frame("cts_rx", result.frame.airtime(self.phy.config.timing))
            self.stats.record_ifs(self.timing.sifs)
            self.rate_controller.on_feedback(result.snr_db)
            self.sim.schedule(self.timing.sifs, self._send_data_frame,
                              priority=Simulator.PRIORITY_MAC)
        elif cts.dst != self.address:
            self.nav.update(cts.duration)
            self._pause_backoff()

    def _handle_ack(self, result: ReceptionResult) -> None:
        if not result.control_ok:
            return
        control = result.frame.control
        if control.dst != self.address or self.state is not MacState.WAIT_ACK:
            return
        self._response_timer.cancel()
        self.stats.acks_received += 1
        self.stats.record_control_frame("ack_rx", result.frame.airtime(self.phy.config.timing))
        self.stats.record_ifs(self.timing.sifs)
        if self.config.use_block_ack and isinstance(control, BlockAck):
            missing = self.scoreboard.apply(control)
            if missing:
                # Partial block-ACK: the acknowledged subframes leave custody
                # now, the missing ones ride the retry path.
                journey = self._journey
                if journey.enabled and self._current is not None:
                    now = self.sim.now
                    node = self._journey_node
                    missing_ids = {id(subframe) for subframe in missing}
                    for subframe in self._current.unicast_subframes:
                        if id(subframe) not in missing_ids:
                            journey.record(now, node, "mac", "acked",
                                           subframe.packet,
                                           attempt=self._exchange_seq)
                self._handle_failure(data_was_sent=True, preserved_unicast=missing)
                return
        self._complete_success()

    def _send_control_response(self, kind: FrameKind, control_frame) -> None:
        if self.phy.state.value == "transmitting":  # pragma: no cover - defensive
            return
        self._pause_backoff()
        frame = PhyFrame.control_frame(kind, control_frame, self.config.basic_rate)
        airtime = self.phy.send(frame)
        self.stats.record_control_frame(kind.value, airtime)

    # ------------------------------------------------------------------
    # Receive path: data frames
    # ------------------------------------------------------------------
    def _handle_data(self, result: ReceptionResult) -> None:
        outcome = process_received_aggregate(
            result, self.address, duplicates=self.duplicates,
            block_ack_enabled=self.config.use_block_ack)

        self.stats.overheard_dropped += outcome.overheard_dropped
        self.stats.duplicates_filtered += outcome.duplicates_filtered
        if outcome.nav_duration > 0:
            self.nav.update(outcome.nav_duration)
            self._pause_backoff()

        for subframe in outcome.broadcast_deliveries:
            self._deliver_up(subframe)
        for subframe in outcome.unicast_deliveries:
            self._deliver_up(subframe)

        if outcome.send_ack and outcome.ack_destination is not None:
            if self.config.use_block_ack:
                response = BlockAck.for_outcome(outcome.ack_destination,
                                                outcome.unicast_crc_passed)
            else:
                last = outcome.unicast_crc_passed[-1] if outcome.unicast_crc_passed else None
                response = AckFrame(dst=outcome.ack_destination, acked_sequence=last)
            self.sim.schedule(self.timing.sifs, self._send_control_response,
                              FrameKind.ACK, response, priority=Simulator.PRIORITY_MAC)

    def _deliver_up(self, subframe: MacSubframe) -> None:
        self.stats.subframes_delivered_up += 1
        journey = self._journey
        if journey.enabled:
            journey.record(self.sim.now, self._journey_node, "mac", "deliver",
                           subframe.packet, src=str(subframe.src))
        if self._receive_callback is not None:
            self._receive_callback(subframe.packet, subframe.src)

    # ------------------------------------------------------------------
    # Exchange completion
    # ------------------------------------------------------------------
    def _complete_success(self, broadcast_only: bool = False) -> None:
        journey = self._journey
        if journey.enabled and self._current is not None:
            now = self.sim.now
            node = self._journey_node
            for subframe in self._current.unicast_subframes:
                journey.record(now, node, "mac", "acked", subframe.packet,
                               attempt=self._exchange_seq)
        retries = self._retry_count
        self.backoff.on_success()
        self.rate_controller.on_success()
        self._retry_count = 0
        self._current = None
        self._pending_retry = None
        self._flush_forced = False
        self.state = MacState.IDLE
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(self.name, "mac", "exchange_done", broadcast_only=broadcast_only)
        metrics = self._metrics
        if metrics.enabled:
            metrics.inc("mac.exchanges", node=self.name, outcome="success")
            metrics.observe("mac.exchange_retries", retries, node=self.name)
        self._try_start_access()

    def _on_response_timeout(self) -> None:
        if self.state is MacState.WAIT_CTS:
            self._handle_failure(data_was_sent=False)
        elif self.state is MacState.WAIT_ACK:
            self._handle_failure(data_was_sent=True)

    def _handle_failure(self, data_was_sent: bool,
                        preserved_unicast: Optional[List[MacSubframe]] = None) -> None:
        if self._current is None:  # pragma: no cover - defensive
            self.state = MacState.IDLE
            self._try_start_access()
            return
        self.stats.retransmissions += 1
        self.backoff.on_failure()
        self.rate_controller.on_failure()
        self._retry_count += 1

        journey = self._journey
        if self._retry_count > self.timing.retry_limit:
            # Give up on the unicast portion entirely.
            dropped = len(self._current.unicast_subframes)
            self.stats.unicast_drops += dropped
            if journey.enabled:
                now = self.sim.now
                node = self._journey_node
                doomed = (preserved_unicast if preserved_unicast is not None
                          else self._current.unicast_subframes)
                for subframe in doomed:
                    journey.record(now, node, "mac", "drop", subframe.packet,
                                   reason="retry_limit")
                if not data_was_sent:
                    # The RTS chain failed with the broadcast portion still
                    # untransmitted; those packets die here too.
                    for subframe in self._current.broadcast_subframes:
                        journey.record(now, node, "mac", "drop",
                                       subframe.packet, reason="retry_limit")
            self._pending_retry = None
            self._retry_count = 0
            self.backoff.on_success()
        else:
            if data_was_sent:
                # The broadcast portion was already transmitted (unacknowledged);
                # only the unicast portion is retried.
                retry = self._current.without_broadcast_portion()
                if preserved_unicast is not None:
                    retry.unicast_subframes = list(preserved_unicast)
            else:
                # The RTS failed: nothing went out, keep the whole aggregate.
                retry = self._current
            for subframe in retry.unicast_subframes:
                subframe.retries += 1
            if journey.enabled:
                now = self.sim.now
                node = self._journey_node
                for subframe in retry.unicast_subframes:
                    journey.record(now, node, "mac", "retry", subframe.packet,
                                   attempt=self._exchange_seq,
                                   count=subframe.retries)
            self._pending_retry = retry if not retry.empty else None

        self._current = None
        self.state = MacState.IDLE
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(self.name, "mac", "exchange_failed", retries=self._retry_count,
                        data_sent=data_was_sent)
        metrics = self._metrics
        if metrics.enabled:
            metrics.inc("mac.exchanges", node=self.name, outcome="failure")
        self._try_start_access()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: the MacStatistics summary as gauges."""
        for key, value in self.stats.summary().items():
            if isinstance(value, (int, float)):
                registry.set_gauge(f"mac.{key}", value, node=self.name)

    @property
    def idle(self) -> bool:
        """True when the MAC has nothing queued and no exchange in progress."""
        return (self.state is MacState.IDLE and self.queues.empty
                and self._pending_retry is None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AggregatingMac {self.name} state={self.state.value} "
                f"queued={self.queues.total_count}>")
