"""Per-MAC statistics.

These counters feed the paper's detailed analysis (Tables 3–8): number of
data transmissions, average aggregated frame size, size overhead (MAC + PHY
header bytes relative to total bytes) and time overhead (header, control
frame, backoff and interframe-space airtime relative to total busy time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.phy.frame import PhyFrame
from repro.phy.rates import PhyRate
from repro.phy.timing import PhyTimingConfig
from repro.sim.monitor import TimeSeriesMonitor

#: IP protocol tags of routing control-plane traffic (HELLO beacons, DSDV
#: updates and AODV RREQ/RREP/RERR messages).  Matched by string so this
#: module needs no import of the network layer; keep in sync with
#: :mod:`repro.net.discovery` / :mod:`repro.net.dynamic_routing` /
#: :mod:`repro.net.on_demand`.
ROUTING_CONTROL_PROTOCOLS = frozenset({"hello", "dsdv", "aodv"})


@dataclass(slots=True)
class MacStatistics:
    """Counters and accumulators maintained by one MAC instance."""

    name: str = "mac"

    # Transmission counts
    data_transmissions: int = 0
    broadcast_only_transmissions: int = 0
    rts_sent: int = 0
    cts_sent: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    retransmissions: int = 0
    unicast_drops: int = 0
    queue_drops: int = 0

    # Subframe counts
    unicast_subframes_sent: int = 0
    broadcast_subframes_sent: int = 0
    classified_ack_subframes_sent: int = 0
    subframes_delivered_up: int = 0
    overheard_dropped: int = 0
    duplicates_filtered: int = 0

    # Byte accounting (transmit side)
    payload_bytes_sent: int = 0
    mac_overhead_bytes_sent: int = 0
    phy_header_bytes_equivalent: float = 0.0

    # Routing control-plane accounting (HELLO + DSDV subframes this MAC
    # transmitted).  Counted so goodput numbers stay honest: the bytes also
    # appear in ``payload_bytes_sent``, these counters break out how much of
    # that "payload" was control-plane overhead.
    routing_subframes_sent: int = 0
    routing_bytes_sent: int = 0
    routing_airtime: float = 0.0

    # Airtime accounting (transmit side, exchanges this MAC initiated)
    payload_airtime: float = 0.0
    header_airtime: float = 0.0
    control_airtime: float = 0.0
    ifs_airtime: float = 0.0
    contention_airtime: float = 0.0

    # Per-transmission frame sizes (bytes of MAC payload in each DATA frame)
    frame_sizes: TimeSeriesMonitor = field(default_factory=lambda: TimeSeriesMonitor("frame_size"))
    aggregate_subframe_counts: TimeSeriesMonitor = field(
        default_factory=lambda: TimeSeriesMonitor("subframes_per_frame"))

    # ------------------------------------------------------------------
    # Recording helpers
    # ------------------------------------------------------------------
    def record_data_frame(self, now: float, frame: PhyFrame, timing: PhyTimingConfig) -> None:
        """Account for a DATA frame this MAC just transmitted."""
        self.data_transmissions += 1
        if frame.is_broadcast_only:
            self.broadcast_only_transmissions += 1
        self.frame_sizes.record(now, frame.total_bytes)
        self.aggregate_subframe_counts.record(now, frame.subframe_count)

        broadcast_rate = frame.broadcast_rate or frame.unicast_rate
        for subframe in frame.broadcast_subframes:
            self.broadcast_subframes_sent += 1
            if not subframe.dst.is_broadcast:
                self.classified_ack_subframes_sent += 1
            self._account_subframe(subframe, broadcast_rate)
        for subframe in frame.unicast_subframes:
            self.unicast_subframes_sent += 1
            self._account_subframe(subframe, frame.unicast_rate)

        # The PHY preamble/header is pure overhead; express it both in time and
        # in "equivalent bytes" at the unicast rate for the size-overhead metric.
        self.header_airtime += timing.preamble_duration
        self.phy_header_bytes_equivalent += (
            timing.preamble_duration * frame.unicast_rate.data_rate_bps / 8.0
        )

    def _account_subframe(self, subframe, rate: PhyRate) -> None:
        payload = subframe.packet.size_bytes
        overhead = subframe.overhead_bytes
        self.payload_bytes_sent += payload
        self.mac_overhead_bytes_sent += overhead
        self.payload_airtime += rate.transmission_time(payload)
        self.header_airtime += rate.transmission_time(overhead)
        if subframe.packet.ip.protocol in ROUTING_CONTROL_PROTOCOLS:
            self.routing_subframes_sent += 1
            self.routing_bytes_sent += payload
            self.routing_airtime += rate.transmission_time(payload + overhead)

    def record_control_frame(self, kind: str, airtime: float) -> None:
        """Account for a control frame (sent or received as part of our exchange)."""
        self.control_airtime += airtime
        if kind == "rts":
            self.rts_sent += 1
        elif kind == "cts":
            self.cts_sent += 1
        elif kind == "ack":
            self.acks_sent += 1

    def record_ifs(self, duration: float) -> None:
        """Account for DIFS/SIFS idle time that is part of our exchange."""
        self.ifs_airtime += duration

    def record_contention(self, duration: float) -> None:
        """Account for backoff time spent before winning the floor."""
        self.contention_airtime += duration

    # ------------------------------------------------------------------
    # Derived metrics (the paper's Tables 3-8)
    # ------------------------------------------------------------------
    @property
    def average_frame_size(self) -> float:
        """Average MAC bytes per DATA transmission (Table 3 / 5 / 8)."""
        return self.frame_sizes.mean()

    @property
    def average_subframes_per_frame(self) -> float:
        """Average aggregation ratio (subframes per DATA transmission)."""
        return self.aggregate_subframe_counts.mean()

    @property
    def size_overhead_fraction(self) -> float:
        """MAC + PHY header bytes as a fraction of total transmitted bytes (Table 3 / 6)."""
        overhead = self.mac_overhead_bytes_sent + self.phy_header_bytes_equivalent
        total = self.payload_bytes_sent + overhead
        if total <= 0:
            return 0.0
        return overhead / total

    @property
    def time_overhead_fraction(self) -> float:
        """Non-payload airtime as a fraction of total exchange time (Table 4)."""
        overhead = (self.header_airtime + self.control_airtime
                    + self.ifs_airtime + self.contention_airtime)
        total = overhead + self.payload_airtime
        if total <= 0:
            return 0.0
        return overhead / total

    @property
    def total_subframes_sent(self) -> int:
        """Unicast plus broadcast subframes transmitted."""
        return self.unicast_subframes_sent + self.broadcast_subframes_sent

    @property
    def routing_overhead_fraction(self) -> float:
        """Routing control-plane bytes as a fraction of all payload bytes sent.

        Zero for scenarios without a dynamic control plane, so the paper's
        static experiments report exactly what they always did.
        """
        if self.payload_bytes_sent <= 0:
            return 0.0
        return self.routing_bytes_sent / self.payload_bytes_sent

    def summary(self) -> dict:
        """Flat dictionary of the headline statistics (for reports/tests)."""
        return {
            "data_transmissions": self.data_transmissions,
            "average_frame_size": round(self.average_frame_size, 1),
            "average_subframes_per_frame": round(self.average_subframes_per_frame, 2),
            "size_overhead": round(self.size_overhead_fraction, 4),
            "time_overhead": round(self.time_overhead_fraction, 4),
            "retransmissions": self.retransmissions,
            "unicast_drops": self.unicast_drops,
            "queue_drops": self.queue_drops,
            "routing_subframes_sent": self.routing_subframes_sent,
            "routing_overhead": round(self.routing_overhead_fraction, 4),
        }
