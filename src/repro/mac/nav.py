"""Virtual carrier sensing (the network allocation vector).

Overheard RTS/CTS frames and the duration field of the first unicast subframe
of an aggregate (Section 4.2.1) set the NAV; the DCF treats the medium as
busy until the NAV expires, in addition to physical carrier sensing.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.simulator import Simulator


class NetworkAllocationVector:
    """Tracks the time until which the medium is virtually reserved."""

    __slots__ = ("_sim", "_until", "_on_expire", "_expiry_event", "updates")

    def __init__(self, sim: Simulator, on_expire: Optional[Callable[[], None]] = None) -> None:
        self._sim = sim
        self._until = 0.0
        self._on_expire = on_expire
        self._expiry_event = None
        self.updates = 0

    @property
    def busy(self) -> bool:
        """True while the NAV reserves the medium."""
        return self._sim.now < self._until

    @property
    def until(self) -> float:
        """Absolute time at which the current reservation ends."""
        return self._until

    def remaining(self) -> float:
        """Seconds of reservation left (0 when idle)."""
        return max(0.0, self._until - self._sim.now)

    def update(self, duration: float) -> None:
        """Extend the NAV to ``now + duration`` if that is later than the current value."""
        if duration <= 0:
            return
        candidate = self._sim.now + duration
        if candidate > self._until:
            self._until = candidate
            self.updates += 1
            self._schedule_expiry()

    def clear(self) -> None:
        """Cancel any reservation."""
        self._until = 0.0
        if self._expiry_event is not None:
            self._sim.cancel(self._expiry_event)
            self._expiry_event = None

    def _schedule_expiry(self) -> None:
        if self._on_expire is None:
            return
        if self._expiry_event is not None:
            self._sim.cancel(self._expiry_event)
        self._expiry_event = self._sim.schedule(
            self.remaining(), self._expired, priority=Simulator.PRIORITY_MAC
        )

    def _expired(self) -> None:
        self._expiry_event = None
        if not self.busy and self._on_expire is not None:
            self._on_expire()
