"""Link-layer (MAC) addresses."""

from __future__ import annotations

from functools import total_ordering
from typing import Union

from repro.errors import AddressError


@total_ordering
class MacAddress:
    """A 48-bit link-layer address."""

    __slots__ = ("_value",)

    BROADCAST_VALUE = 0xFFFFFFFFFFFF

    def __init__(self, value: Union[int, str, "MacAddress"]):
        if isinstance(value, MacAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= self.BROADCAST_VALUE:
                raise AddressError(f"MAC address integer out of range: {value}")
            self._value = value
        elif isinstance(value, str):
            self._value = self._parse(value)
        else:
            raise AddressError(f"cannot build MacAddress from {value!r}")

    @staticmethod
    def _parse(text: str) -> int:
        parts = text.strip().lower().split(":")
        if len(parts) != 6:
            raise AddressError(f"malformed MAC address {text!r}")
        try:
            octets = [int(part, 16) for part in parts]
        except ValueError:
            raise AddressError(f"malformed MAC address {text!r}") from None
        if any(not 0 <= octet <= 255 for octet in octets):
            raise AddressError(f"octet out of range in {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return value

    @classmethod
    def node(cls, index: int) -> "MacAddress":
        """Locally administered address for node ``index`` (1-based)."""
        if index <= 0 or index > 0xFFFFFF:
            raise AddressError(f"node index out of range: {index}")
        return cls(0x020000000000 | index)

    @property
    def value(self) -> int:
        """The address as a 48-bit integer."""
        return self._value

    @property
    def is_broadcast(self) -> bool:
        """True for the all-ones broadcast address."""
        return self._value == self.BROADCAST_VALUE

    def __str__(self) -> str:
        octets = [(self._value >> shift) & 0xFF for shift in range(40, -8, -8)]
        return ":".join(f"{octet:02x}" for octet in octets)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    def __hash__(self) -> int:
        return hash(self._value)

    def __eq__(self, other: object) -> bool:
        # Fast path: address-to-address comparison is the hot case (per-frame
        # destination checks); coercion is only for int/str literals.
        if type(other) is MacAddress:
            return self._value == other._value
        if isinstance(other, (MacAddress, int, str)):
            try:
                return self._value == MacAddress(other)._value  # type: ignore[arg-type]
            except AddressError:
                return NotImplemented
        return NotImplemented

    def __lt__(self, other: "MacAddress") -> bool:
        if type(other) is MacAddress:
            return self._value < other._value
        return self._value < MacAddress(other)._value


#: The all-ones broadcast MAC address.
BROADCAST_MAC = MacAddress(MacAddress.BROADCAST_VALUE)
