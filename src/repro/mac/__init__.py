"""MAC layer: 802.11-style DCF with the paper's aggregation extensions.

The MAC follows the Hydra prototype described in Section 4 of the paper: the
IEEE 802.11 distributed coordination function with an RTS/CTS exchange,
extended with two transmit queues (broadcast and unicast), transmit-time
frame aggregation, per-subframe CRCs on receive, and classification of pure
TCP ACKs into the broadcast queue.
"""

from repro.mac.addresses import BROADCAST_MAC, MacAddress
from repro.mac.frames import (
    AckFrame,
    CtsFrame,
    MacSubframe,
    RtsFrame,
    ACK_FRAME_BYTES,
    CTS_FRAME_BYTES,
    MIN_SUBFRAME_BYTES,
    RTS_FRAME_BYTES,
    SUBFRAME_OVERHEAD_BYTES,
)
from repro.mac.timing import HYDRA_MAC_TIMING, MacTimingProfile
from repro.mac.queues import TransmitQueues
from repro.mac.backoff import BackoffController
from repro.mac.nav import NetworkAllocationVector
from repro.mac.stats import MacStatistics
from repro.mac.dcf import AggregatingMac, MacConfig

__all__ = [
    "MacAddress",
    "BROADCAST_MAC",
    "MacSubframe",
    "RtsFrame",
    "CtsFrame",
    "AckFrame",
    "SUBFRAME_OVERHEAD_BYTES",
    "MIN_SUBFRAME_BYTES",
    "RTS_FRAME_BYTES",
    "CTS_FRAME_BYTES",
    "ACK_FRAME_BYTES",
    "MacTimingProfile",
    "HYDRA_MAC_TIMING",
    "TransmitQueues",
    "BackoffController",
    "NetworkAllocationVector",
    "MacStatistics",
    "AggregatingMac",
    "MacConfig",
]
