"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so user
code can catch library failures with a single ``except`` clause while still
being able to distinguish configuration problems from runtime protocol
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """A component was configured with inconsistent or invalid parameters.

    Also a :class:`ValueError`: an invalid parameter value is exactly what the
    built-in means, so callers outside the library can catch the idiomatic
    exception without importing the ``repro`` hierarchy.
    """


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. scheduling in the past)."""


class SchedulingError(SimulationError):
    """An event could not be scheduled or cancelled."""


class PhyError(ReproError):
    """The physical layer was driven into an invalid state."""


class MacError(ReproError):
    """The MAC layer was driven into an invalid state."""


class AggregationError(ReproError):
    """The frame aggregator was asked to build an invalid aggregate."""


class RoutingError(ReproError):
    """No route exists for a destination, or a routing table is malformed."""


class TransportError(ReproError):
    """A transport-layer (TCP/UDP) protocol violation or misuse."""


class TcpStateError(TransportError):
    """A TCP operation was attempted in a connection state that forbids it."""


class AddressError(ReproError):
    """A MAC or IP address string/value could not be parsed or is invalid."""


class ExperimentError(ReproError):
    """An experiment specification is invalid or a run failed to produce results."""
