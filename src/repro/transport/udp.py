"""UDP.

A thin datagram layer: sockets are identified by local port, datagrams carry
only their payload size, and delivery is a direct callback.  The paper's UDP
experiments (Table 2, Figures 7 and 9) use a constant-rate source feeding a
sink that measures goodput.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import TransportError
from repro.mac.addresses import MacAddress
from repro.net.address import IpAddress
from repro.net.packet import Packet
from repro.obs.journey import node_of
from repro.sim.simulator import Simulator

#: Callback signature for received datagrams: ``handler(packet, source_ip)``.
DatagramHandler = Callable[[Packet, IpAddress], None]


class UdpSocket:
    """A bound UDP port on one node."""

    def __init__(self, layer: "UdpLayer", local_port: int) -> None:
        self._layer = layer
        self.local_port = local_port
        self._handler: Optional[DatagramHandler] = None
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def on_receive(self, handler: DatagramHandler) -> None:
        """Register the receive callback."""
        self._handler = handler

    def send_to(self, destination: IpAddress, destination_port: int, payload_bytes: int,
                annotations: Optional[dict] = None) -> bool:
        """Send ``payload_bytes`` of application data to ``destination:destination_port``."""
        packet = Packet.udp_datagram(
            src=self._layer.address, dst=IpAddress(destination),
            src_port=self.local_port, dst_port=destination_port,
            payload_bytes=payload_bytes, created_at=self._layer.sim.now,
            annotations=annotations,
        )
        self.datagrams_sent += 1
        self.bytes_sent += payload_bytes
        layer = self._layer
        journey = layer.sim.journey
        if journey.enabled:
            journey.begin(layer.sim.now, layer.journey_node, "udp", packet,
                          event="send", port=destination_port)
        return layer.network.send(packet)

    def deliver(self, packet: Packet) -> None:
        """Called by the layer when a datagram for this port arrives."""
        self.datagrams_received += 1
        self.bytes_received += packet.payload_bytes
        if self._handler is not None:
            self._handler(packet, packet.ip.src)

    def close(self) -> None:
        """Unbind the socket."""
        self._layer.unbind(self.local_port)


class UdpLayer:
    """Per-node UDP demultiplexer."""

    def __init__(self, sim: Simulator, network, address: IpAddress) -> None:
        self.sim = sim
        self.network = network
        self.address = IpAddress(address)
        self._sockets: Dict[int, UdpSocket] = {}
        self.delivered = 0
        self.no_port_drops = 0
        self.journey_node = node_of(getattr(network, "name", str(address)), "net")
        sim.metrics.register_collector(self._collect_metrics)
        network.register_handler("udp", self._on_packet)

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: UDP delivery totals as per-node gauges."""
        node = str(self.address)
        registry.set_gauge("udp.delivered", self.delivered, node=node)
        registry.set_gauge("udp.no_port_drops", self.no_port_drops, node=node)

    def bind(self, port: int) -> UdpSocket:
        """Create a socket bound to ``port``."""
        if port in self._sockets:
            raise TransportError(f"UDP port {port} already bound on {self.address}")
        socket = UdpSocket(self, port)
        self._sockets[port] = socket
        return socket

    def unbind(self, port: int) -> None:
        """Release ``port``."""
        self._sockets.pop(port, None)

    def _on_packet(self, packet: Packet, source_mac: MacAddress) -> None:
        if packet.udp is None:  # pragma: no cover - defensive
            return
        socket = self._sockets.get(packet.udp.dst_port)
        journey = self.sim.journey
        if socket is None:
            self.no_port_drops += 1
            if journey.enabled:
                journey.record(self.sim.now, self.journey_node, "udp", "drop",
                               packet, reason="no_port")
            return
        self.delivered += 1
        if journey.enabled:
            journey.record(self.sim.now, self.journey_node, "udp", "deliver",
                           packet, port=packet.udp.dst_port)
        socket.deliver(packet)
