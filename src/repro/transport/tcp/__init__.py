"""NewReno-style TCP implementation used by the file-transfer experiments."""

from repro.transport.tcp.congestion import NewRenoCongestionControl
from repro.transport.tcp.connection import TcpConnection, TcpState
from repro.transport.tcp.layer import TcpLayer
from repro.transport.tcp.rtt import RttEstimator

__all__ = [
    "NewRenoCongestionControl",
    "TcpConnection",
    "TcpState",
    "TcpLayer",
    "RttEstimator",
]
