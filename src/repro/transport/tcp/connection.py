"""A TCP connection.

The connection implements the subset of TCP the paper's experiments exercise:

* three-way handshake and FIN teardown,
* byte-sequence sliding-window transmission with a configurable MSS
  (1357 bytes in the paper, producing 1464 B MAC frames),
* cumulative acknowledgements — the receiver emits a *pure* ACK for every
  data segment it receives, which is exactly the traffic the MAC classifier
  diverts into the broadcast queue,
* NewReno congestion control (slow start, congestion avoidance, fast
  retransmit/recovery with partial-ACK handling) and RFC 6298 RTO management.

Payload bytes are counted, not stored: the simulator only needs sizes and
sequence numbers.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional

from repro.errors import TcpStateError
from repro.net.address import IpAddress
from repro.net.packet import Packet, TcpHeader
from repro.obs.journey import node_of
from repro.sim.simulator import Simulator
from repro.sim.timer import Timer
from repro.transport.tcp.congestion import NewRenoCongestionControl
from repro.transport.tcp.rtt import RttEstimator

#: MSS used throughout the paper's experiments (Section 5).
PAPER_MSS = 1357
#: Default advertised receive window (large enough not to be the bottleneck).
DEFAULT_RECEIVE_WINDOW = 256 * 1024


class TcpState(enum.Enum):
    """Connection states (TIME_WAIT is collapsed into CLOSED)."""

    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn_sent"
    SYN_RCVD = "syn_rcvd"
    ESTABLISHED = "established"
    FIN_WAIT_1 = "fin_wait_1"
    FIN_WAIT_2 = "fin_wait_2"
    CLOSE_WAIT = "close_wait"
    LAST_ACK = "last_ack"


class TcpConnection:
    """One end of a TCP connection."""

    def __init__(self, sim: Simulator, network, local_ip: IpAddress, local_port: int,
                 remote_ip: IpAddress, remote_port: int, mss: int = PAPER_MSS,
                 receive_window: int = DEFAULT_RECEIVE_WINDOW,
                 idle_reprobe: bool = False, reprobe_after_timeouts: int = 3,
                 reprobe_interval: float = 5.0,
                 name: Optional[str] = None) -> None:
        self.sim = sim
        self.network = network
        self.local_ip = IpAddress(local_ip)
        self.local_port = local_port
        self.remote_ip = IpAddress(remote_ip)
        self.remote_port = remote_port
        self.mss = mss
        self.receive_window = receive_window
        # Persist-timer-style outage mitigation (off by default so the
        # paper's experiments are unchanged): after ``reprobe_after_timeouts``
        # consecutive RTOs the retransmission interval is capped at
        # ``reprobe_interval`` instead of following the exponential backoff
        # to its 60 s ceiling.  Without it, long outages (e.g. the orbiting
        # relay of mob02) phase-lock with the backed-off RTO: end-to-end
        # retries keep landing while the path is down and the connection can
        # stall for a full backoff period after the path returns.
        self.idle_reprobe = idle_reprobe
        self.reprobe_after_timeouts = reprobe_after_timeouts
        self.reprobe_interval = reprobe_interval
        self._consecutive_timeouts = 0
        self.reprobes_sent = 0
        self.name = name or f"tcp-{local_ip}:{local_port}"

        self.state = TcpState.CLOSED

        # --- sender state ------------------------------------------------
        self.snd_una = 0          # oldest unacknowledged sequence number
        self.snd_nxt = 0          # next sequence number to send
        self.send_buffer_bytes = 0  # application bytes written but not yet sent
        self.peer_window = DEFAULT_RECEIVE_WINDOW
        self.cc = NewRenoCongestionControl(mss=mss)
        self.rtt = RttEstimator()
        self._dup_acks = 0
        self._recover = 0
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0
        self._fin_pending = False
        self._fin_sent = False
        self._fin_seq: Optional[int] = None

        # --- receiver state ----------------------------------------------
        self.rcv_nxt = 0
        self._out_of_order: Dict[int, int] = {}
        self.bytes_received = 0
        self.peer_fin_received = False

        # --- counters ------------------------------------------------------
        self.segments_sent = 0
        self.pure_acks_sent = 0
        self.retransmitted_segments = 0
        self.timeouts = 0
        self.bytes_sent_total = 0

        # --- callbacks -----------------------------------------------------
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data_received: Optional[Callable[[int], None]] = None
        self.on_send_complete: Optional[Callable[[], None]] = None
        self.on_closed: Optional[Callable[[], None]] = None

        self._rto_timer = Timer(sim, self._on_rto, priority=Simulator.PRIORITY_APP,
                                name=f"{self.name}.rto")

    # ------------------------------------------------------------------
    # Opening and closing
    # ------------------------------------------------------------------
    def open_active(self) -> None:
        """Send a SYN and start the three-way handshake."""
        if self.state is not TcpState.CLOSED:
            raise TcpStateError(f"cannot open a connection in state {self.state}")
        self.state = TcpState.SYN_SENT
        self._send_segment(seq=0, payload=0, syn=True, ack=False)
        self.snd_nxt = 1
        self._timed_seq = 0
        self._timed_at = self.sim.now
        self._rto_timer.start(self.rtt.rto)

    def accept_syn(self, remote_seq: int) -> None:
        """Passive open: a SYN arrived for a listening port."""
        if self.state is not TcpState.CLOSED:
            raise TcpStateError(f"cannot accept a SYN in state {self.state}")
        self.rcv_nxt = remote_seq + 1
        self.state = TcpState.SYN_RCVD
        self._send_segment(seq=0, payload=0, syn=True, ack=True)
        self.snd_nxt = 1
        self._rto_timer.start(self.rtt.rto)

    def send(self, nbytes: int) -> None:
        """Queue ``nbytes`` of application data for transmission."""
        if nbytes < 0:
            raise TcpStateError("cannot send a negative number of bytes")
        if self.state not in (TcpState.ESTABLISHED, TcpState.SYN_SENT, TcpState.SYN_RCVD,
                              TcpState.CLOSE_WAIT):
            raise TcpStateError(f"cannot send data in state {self.state}")
        if self._fin_pending:
            raise TcpStateError("cannot send data after close()")
        self.send_buffer_bytes += nbytes
        self._try_send()

    def close(self) -> None:
        """Close the sending direction once all queued data has been delivered."""
        if self._fin_pending:
            return
        self._fin_pending = True
        self._try_send()

    @property
    def established(self) -> bool:
        """True once the handshake has completed."""
        return self.state in (TcpState.ESTABLISHED, TcpState.FIN_WAIT_1, TcpState.FIN_WAIT_2,
                              TcpState.CLOSE_WAIT, TcpState.LAST_ACK)

    @property
    def flight_size(self) -> int:
        """Bytes in flight (sent but not yet cumulatively acknowledged)."""
        return self.snd_nxt - self.snd_una

    @property
    def all_data_acknowledged(self) -> bool:
        """True when every byte written so far has been acknowledged."""
        return self.send_buffer_bytes == 0 and self.snd_una == self.snd_nxt

    # ------------------------------------------------------------------
    # Segment transmission
    # ------------------------------------------------------------------
    def _send_segment(self, seq: int, payload: int, syn: bool = False, fin: bool = False,
                      ack: bool = True, retransmission: bool = False) -> None:
        header = TcpHeader(
            src_port=self.local_port, dst_port=self.remote_port,
            seq=seq, ack=self.rcv_nxt if ack else 0,
            flags_syn=syn, flags_fin=fin, flags_ack=ack, window=self.receive_window,
        )
        packet = Packet.tcp_segment(self.local_ip, self.remote_ip, header,
                                    payload_bytes=payload, created_at=self.sim.now)
        self.segments_sent += 1
        if payload == 0 and ack and not syn and not fin:
            self.pure_acks_sent += 1
        if retransmission:
            self.retransmitted_segments += 1
        else:
            self.bytes_sent_total += payload
        journey = self.sim.journey
        if journey.enabled:
            journey.begin(self.sim.now,
                          node_of(getattr(self.network, "name",
                                          str(self.local_ip)), "net"),
                          "tcp", packet, event="send", seq=seq,
                          retransmission=retransmission)
        self.network.send(packet)

    def _send_pure_ack(self) -> None:
        self._send_segment(seq=self.snd_nxt, payload=0)

    # ------------------------------------------------------------------
    # Sender machinery
    # ------------------------------------------------------------------
    def _try_send(self) -> None:
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT,
                              TcpState.FIN_WAIT_1, TcpState.LAST_ACK):
            return
        window = self.cc.window(self.peer_window)
        while self.send_buffer_bytes > 0:
            in_flight = self.flight_size
            if in_flight >= window:
                break
            size = min(self.mss, self.send_buffer_bytes, window - in_flight)
            if size <= 0:
                break
            self._send_segment(seq=self.snd_nxt, payload=size)
            if self._timed_seq is None:
                self._timed_seq = self.snd_nxt
                self._timed_at = self.sim.now
            self.snd_nxt += size
            self.send_buffer_bytes -= size
            if not self._rto_timer.running:
                self._rto_timer.start(self.rtt.rto)

        if (self._fin_pending and not self._fin_sent and self.send_buffer_bytes == 0
                and self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)):
            self._fin_seq = self.snd_nxt
            self._send_segment(seq=self.snd_nxt, payload=0, fin=True)
            self._fin_sent = True
            self.snd_nxt += 1
            self.state = (TcpState.FIN_WAIT_1 if self.state is TcpState.ESTABLISHED
                          else TcpState.LAST_ACK)
            if not self._rto_timer.running:
                self._rto_timer.start(self.rtt.rto)

    def _retransmit_head(self) -> None:
        if self.state is TcpState.SYN_SENT:
            self._send_segment(seq=0, payload=0, syn=True, ack=False, retransmission=True)
            return
        if self.state is TcpState.SYN_RCVD:
            self._send_segment(seq=0, payload=0, syn=True, ack=True, retransmission=True)
            return
        if self._fin_sent and self._fin_seq is not None and self.snd_una == self._fin_seq:
            self._send_segment(seq=self._fin_seq, payload=0, fin=True, retransmission=True)
            return
        data_end = self._fin_seq if self._fin_sent and self._fin_seq is not None else self.snd_nxt
        size = min(self.mss, max(0, data_end - self.snd_una))
        if size > 0:
            self._send_segment(seq=self.snd_una, payload=size, retransmission=True)

    def _on_rto(self) -> None:
        if self.snd_una == self.snd_nxt and self.state not in (TcpState.SYN_SENT,
                                                               TcpState.SYN_RCVD):
            return
        self.timeouts += 1
        self._consecutive_timeouts += 1
        self.cc.on_timeout(self.flight_size)
        self.rtt.on_timeout()
        self._dup_acks = 0
        self._timed_seq = None
        self._retransmit_head()
        delay = self.rtt.rto
        if (self.idle_reprobe
                and self._consecutive_timeouts >= self.reprobe_after_timeouts
                and delay > self.reprobe_interval):
            # Bounded idle re-probe: keep poking the path at a fixed cadence
            # instead of riding the exponential backoff, so recovery latency
            # after an outage is bounded by ``reprobe_interval``.
            delay = self.reprobe_interval
            self.reprobes_sent += 1
        self._rto_timer.start(delay)

    # ------------------------------------------------------------------
    # Segment reception
    # ------------------------------------------------------------------
    def on_segment(self, packet: Packet) -> None:
        """Process an incoming segment belonging to this connection."""
        header = packet.tcp
        if header is None:  # pragma: no cover - defensive
            return

        if self.state is TcpState.SYN_SENT:
            if header.flags_syn and header.flags_ack and header.ack >= 1:
                self.rcv_nxt = header.seq + 1
                self.snd_una = 1
                self._complete_rtt_sample()
                self.state = TcpState.ESTABLISHED
                self._rto_timer.cancel()
                self._send_pure_ack()
                if self.on_established is not None:
                    self.on_established()
                self._try_send()
            return

        if self.state is TcpState.SYN_RCVD:
            if header.flags_ack and header.ack >= 1:
                self.snd_una = max(self.snd_una, 1)
                self.state = TcpState.ESTABLISHED
                self._rto_timer.cancel()
                if self.on_established is not None:
                    self.on_established()
            # fall through: the ACK may carry data.

        if header.flags_ack:
            self._process_ack(header)
        if packet.payload_bytes > 0:
            self._process_data(header.seq, packet.payload_bytes)
        if header.flags_fin:
            self._process_fin(header, packet.payload_bytes)

    # ------------------------------------------------------------------
    # ACK processing (sender side)
    # ------------------------------------------------------------------
    def _process_ack(self, header: TcpHeader) -> None:
        ackno = header.ack
        self.peer_window = header.window

        if ackno > self.snd_una:
            newly = ackno - self.snd_una
            self.snd_una = ackno
            self.rtt.reset_backoff()
            self._consecutive_timeouts = 0
            self._complete_rtt_sample(ackno)

            if self.cc.in_fast_recovery:
                if ackno > self._recover:
                    self.cc.on_exit_fast_recovery()
                    self._dup_acks = 0
                else:
                    # NewReno partial ACK: retransmit the next missing segment.
                    self.cc.on_partial_ack(newly)
                    self._retransmit_head()
            else:
                self.cc.on_new_ack(newly)
                self._dup_acks = 0

            if self.snd_una == self.snd_nxt:
                self._rto_timer.cancel()
                self._handle_everything_acked()
            else:
                self._rto_timer.start(self.rtt.rto)
            self._try_send()
            return

        if (ackno == self.snd_una and self.flight_size > 0 and not header.flags_syn
                and not header.flags_fin):
            self._dup_acks += 1
            if self._dup_acks == 3 and not self.cc.in_fast_recovery:
                self._recover = self.snd_nxt
                self.cc.on_enter_fast_recovery(self.flight_size)
                self._retransmit_head()
            elif self.cc.in_fast_recovery:
                self.cc.on_dup_ack_in_recovery()
                self._try_send()

    def _complete_rtt_sample(self, ackno: Optional[int] = None) -> None:
        if self._timed_seq is None:
            return
        if ackno is None or ackno > self._timed_seq:
            self.rtt.on_measurement(self.sim.now - self._timed_at)
            self._timed_seq = None

    def _handle_everything_acked(self) -> None:
        if self._fin_sent and self.snd_una == (self._fin_seq or 0) + 1:
            if self.state is TcpState.FIN_WAIT_1:
                self.state = TcpState.FIN_WAIT_2
                if self.peer_fin_received:
                    self._become_closed()
            elif self.state is TcpState.LAST_ACK:
                self._become_closed()
        if (self.send_buffer_bytes == 0 and not self._fin_sent
                and self.on_send_complete is not None):
            self.on_send_complete()

    # ------------------------------------------------------------------
    # Data processing (receiver side)
    # ------------------------------------------------------------------
    def _process_data(self, seq: int, length: int) -> None:
        if seq == self.rcv_nxt:
            self._deliver(length)
            self.rcv_nxt += length
            while self.rcv_nxt in self._out_of_order:
                pending = self._out_of_order.pop(self.rcv_nxt)
                self._deliver(pending)
                self.rcv_nxt += pending
        elif seq > self.rcv_nxt:
            self._out_of_order[seq] = length
        # An ACK is sent for every received data segment (no delayed ACK),
        # matching the ACK-per-segment traffic pattern the paper measures.
        self._send_pure_ack()

    def _deliver(self, length: int) -> None:
        self.bytes_received += length
        if self.on_data_received is not None:
            self.on_data_received(length)

    # ------------------------------------------------------------------
    # FIN processing
    # ------------------------------------------------------------------
    def _process_fin(self, header: TcpHeader, payload: int) -> None:
        fin_seq = header.seq + payload
        if fin_seq != self.rcv_nxt:
            # Out-of-order FIN: acknowledge what we have.
            self._send_pure_ack()
            return
        self.rcv_nxt += 1
        self.peer_fin_received = True
        self._send_segment(seq=self.snd_nxt, payload=0)  # ACK the FIN
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
        elif self.state in (TcpState.FIN_WAIT_1, TcpState.FIN_WAIT_2):
            self._become_closed()
        if self.on_closed is not None and self.state is TcpState.CLOSE_WAIT:
            # Notify the application that the peer finished sending.
            self.on_closed()

    def _become_closed(self) -> None:
        previous = self.state
        self.state = TcpState.CLOSED
        self._rto_timer.cancel()
        if self.on_closed is not None and previous is not TcpState.CLOSE_WAIT:
            self.on_closed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TcpConnection {self.local_ip}:{self.local_port}->"
                f"{self.remote_ip}:{self.remote_port} {self.state.value} "
                f"una={self.snd_una} nxt={self.snd_nxt} rcv={self.rcv_nxt}>")
