"""NewReno congestion control.

The paper's testbed runs the stock Linux TCP stack; what its experiments rely
on is ordinary loss-based congestion control with cumulative ACKs — the
window grows until the multi-hop path's queues fill, which is precisely what
creates the aggregation opportunities measured in Section 6.  This module
implements the window arithmetic of RFC 5681/6582 (slow start, congestion
avoidance, fast retransmit/recovery with NewReno partial-ACK handling); the
sender drives it through explicit notifications.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class NewRenoCongestionControl:
    """Congestion window state for one TCP sender."""

    mss: int
    initial_window_segments: int = 2
    initial_ssthresh: int = 1 << 20

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ConfigurationError("mss must be positive")
        self.cwnd: int = self.initial_window_segments * self.mss
        self.ssthresh: int = self.initial_ssthresh
        self.in_fast_recovery: bool = False
        #: Bytes acknowledged so far during congestion avoidance (for the
        #: cwnd += MSS*MSS/cwnd approximation done in whole-byte arithmetic).
        self._ca_acked: int = 0
        # counters for tests / reports
        self.fast_recoveries: int = 0
        self.timeouts: int = 0

    # ------------------------------------------------------------------
    # Window state queries
    # ------------------------------------------------------------------
    @property
    def in_slow_start(self) -> bool:
        """True while cwnd is below ssthresh (and not in fast recovery)."""
        return not self.in_fast_recovery and self.cwnd < self.ssthresh

    def window(self, receiver_window: int) -> int:
        """Usable send window in bytes."""
        return min(self.cwnd, receiver_window)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def on_new_ack(self, newly_acked: int) -> None:
        """A cumulative ACK advanced ``snd_una`` by ``newly_acked`` bytes."""
        if newly_acked <= 0:
            return
        if self.in_slow_start:
            self.cwnd += min(newly_acked, self.mss)
        else:
            self._ca_acked += newly_acked
            if self._ca_acked >= self.cwnd:
                self._ca_acked -= self.cwnd
                self.cwnd += self.mss

    def on_enter_fast_recovery(self, flight_size: int) -> None:
        """Third duplicate ACK: halve the window and inflate by three segments."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.in_fast_recovery = True
        self.fast_recoveries += 1

    def on_dup_ack_in_recovery(self) -> None:
        """Each additional duplicate ACK inflates the window by one segment."""
        if self.in_fast_recovery:
            self.cwnd += self.mss

    def on_partial_ack(self, newly_acked: int) -> None:
        """NewReno partial ACK: deflate by the amount acknowledged, plus one MSS."""
        if not self.in_fast_recovery:
            return
        self.cwnd = max(self.ssthresh, self.cwnd - newly_acked + self.mss)

    def on_exit_fast_recovery(self) -> None:
        """Full ACK of the recovery point: deflate the window to ssthresh."""
        if self.in_fast_recovery:
            self.cwnd = self.ssthresh
            self.in_fast_recovery = False
            self._ca_acked = 0

    def on_timeout(self, flight_size: int) -> None:
        """Retransmission timeout: collapse to one segment."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_fast_recovery = False
        self._ca_acked = 0
        self.timeouts += 1
