"""Per-node TCP demultiplexer.

The layer owns every :class:`~repro.transport.tcp.connection.TcpConnection`
terminating at its node, creates connections passively when SYNs arrive for
listening ports, and hands incoming segments to the right connection based on
the (local port, remote address, remote port) tuple.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import TransportError
from repro.mac.addresses import MacAddress
from repro.net.address import IpAddress
from repro.net.packet import Packet
from repro.obs.journey import node_of
from repro.sim.simulator import Simulator
from repro.transport.tcp.connection import PAPER_MSS, TcpConnection

#: Called when a listening port accepts a new connection.
AcceptCallback = Callable[[TcpConnection], None]

ConnectionKey = Tuple[int, int, int]  # (local port, remote ip value, remote port)


class TcpLayer:
    """TCP connection management for one node."""

    def __init__(self, sim: Simulator, network, address: IpAddress,
                 default_mss: int = PAPER_MSS) -> None:
        self.sim = sim
        self.network = network
        self.address = IpAddress(address)
        self.default_mss = default_mss
        self._connections: Dict[ConnectionKey, TcpConnection] = {}
        self._listeners: Dict[int, AcceptCallback] = {}
        self._ephemeral_port = 49152
        self.segments_received = 0
        self.segments_dropped = 0
        self.journey_node = node_of(getattr(network, "name", str(address)), "net")
        sim.metrics.register_collector(self._collect_metrics)
        network.register_handler("tcp", self._on_packet)

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: TCP segment totals as per-node gauges."""
        node = str(self.address)
        registry.set_gauge("tcp.segments_received", self.segments_received, node=node)
        registry.set_gauge("tcp.segments_dropped", self.segments_dropped, node=node)
        registry.set_gauge("tcp.connections", len(self._connections), node=node)

    # ------------------------------------------------------------------
    # Socket-style API
    # ------------------------------------------------------------------
    def listen(self, port: int, on_accept: AcceptCallback) -> None:
        """Accept incoming connections on ``port``."""
        if port in self._listeners:
            raise TransportError(f"TCP port {port} is already listening on {self.address}")
        self._listeners[port] = on_accept

    def connect(self, remote_ip: IpAddress, remote_port: int,
                local_port: Optional[int] = None, mss: Optional[int] = None,
                **connection_options) -> TcpConnection:
        """Open a connection to ``remote_ip:remote_port`` (active open).

        Extra keyword arguments (e.g. ``idle_reprobe=True``) are passed to
        the :class:`TcpConnection` constructor.
        """
        if local_port is None:
            local_port = self._next_ephemeral_port()
        key = (local_port, IpAddress(remote_ip).value, remote_port)
        if key in self._connections:
            raise TransportError(f"connection {key} already exists")
        connection = TcpConnection(
            sim=self.sim, network=self.network, local_ip=self.address, local_port=local_port,
            remote_ip=IpAddress(remote_ip), remote_port=remote_port,
            mss=mss or self.default_mss, **connection_options,
        )
        self._connections[key] = connection
        connection.open_active()
        return connection

    def _next_ephemeral_port(self) -> int:
        port = self._ephemeral_port
        self._ephemeral_port += 1
        return port

    @property
    def connections(self) -> Dict[ConnectionKey, TcpConnection]:
        """All connections terminating at this node."""
        return dict(self._connections)

    # ------------------------------------------------------------------
    # Demultiplexing
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet, source_mac: MacAddress) -> None:
        header = packet.tcp
        if header is None:  # pragma: no cover - defensive
            return
        self.segments_received += 1
        journey = self.sim.journey
        key = (header.dst_port, packet.ip.src.value, header.src_port)
        connection = self._connections.get(key)
        if connection is not None:
            if journey.enabled:
                journey.record(self.sim.now, self.journey_node, "tcp",
                               "deliver", packet, port=header.dst_port)
            connection.on_segment(packet)
            return

        if header.flags_syn and not header.flags_ack and header.dst_port in self._listeners:
            connection = TcpConnection(
                sim=self.sim, network=self.network, local_ip=self.address,
                local_port=header.dst_port, remote_ip=packet.ip.src,
                remote_port=header.src_port, mss=self.default_mss,
            )
            self._connections[key] = connection
            if journey.enabled:
                journey.record(self.sim.now, self.journey_node, "tcp",
                               "deliver", packet, port=header.dst_port)
            connection.accept_syn(header.seq)
            self._listeners[header.dst_port](connection)
            return

        self.segments_dropped += 1
        if journey.enabled:
            journey.record(self.sim.now, self.journey_node, "tcp", "drop",
                           packet, reason="no_connection")
