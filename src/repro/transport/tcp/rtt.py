"""Round-trip-time estimation and retransmission timeout calculation.

Standard RFC 6298 smoothing: ``SRTT``/``RTTVAR`` with Karn's algorithm applied
by the caller (retransmitted segments are never timed).  The minimum RTO is
kept at 200 ms, appropriate for the multi-hop sub-megabit links in the
paper's experiments where RTTs sit in the tens-to-hundreds of milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class RttEstimator:
    """SRTT/RTTVAR smoothing and RTO computation."""

    initial_rto: float = 1.0
    min_rto: float = 0.2
    max_rto: float = 60.0
    alpha: float = 1.0 / 8.0
    beta: float = 1.0 / 4.0
    k: float = 4.0

    def __post_init__(self) -> None:
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ConfigurationError("invalid RTO bounds")
        self.srtt: float = 0.0
        self.rttvar: float = 0.0
        self._rto: float = self.initial_rto
        self.samples: int = 0
        self._backoff_multiplier: float = 1.0

    @property
    def rto(self) -> float:
        """Current retransmission timeout (seconds), including any backoff."""
        return min(self.max_rto, max(self.min_rto, self._rto) * self._backoff_multiplier)

    def on_measurement(self, rtt_sample: float) -> None:
        """Fold a fresh RTT sample (from a never-retransmitted segment) into the estimate."""
        if rtt_sample < 0:
            return
        if self.samples == 0:
            self.srtt = rtt_sample
            self.rttvar = rtt_sample / 2.0
        else:
            self.rttvar = (1 - self.beta) * self.rttvar + self.beta * abs(self.srtt - rtt_sample)
            self.srtt = (1 - self.alpha) * self.srtt + self.alpha * rtt_sample
        self.samples += 1
        self._rto = self.srtt + self.k * self.rttvar
        self._backoff_multiplier = 1.0

    def on_timeout(self) -> None:
        """Exponential RTO backoff after a retransmission timeout."""
        self._backoff_multiplier = min(self._backoff_multiplier * 2.0,
                                       self.max_rto / max(self.min_rto, self._rto))

    def reset_backoff(self) -> None:
        """Clear the timeout backoff (called when new data is acknowledged)."""
        self._backoff_multiplier = 1.0
