"""Transport layer: UDP and a NewReno-style TCP implementation."""

from repro.transport.udp import UdpLayer, UdpSocket
from repro.transport.tcp.connection import TcpConnection, TcpState
from repro.transport.tcp.layer import TcpLayer
from repro.transport.tcp.congestion import NewRenoCongestionControl
from repro.transport.tcp.rtt import RttEstimator

__all__ = [
    "UdpLayer",
    "UdpSocket",
    "TcpLayer",
    "TcpConnection",
    "TcpState",
    "NewRenoCongestionControl",
    "RttEstimator",
]
