"""One-way TCP file transfer.

The paper's TCP workload (Section 5) is a one-way transfer of a 0.2 MB file
with an MSS of 1357 bytes.  :class:`FileTransferSender` opens the connection,
writes the whole file and closes; :class:`FileTransferReceiver` accepts the
connection, counts the delivered bytes and records the completion time.
End-to-end throughput is file size divided by the time from the start of the
transfer to the arrival of the last byte.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.address import IpAddress
from repro.transport.tcp.connection import PAPER_MSS, TcpConnection
from repro.units import megabytes, throughput_mbps

#: The paper's file size: 0.2 Mbyte.
PAPER_FILE_BYTES = megabytes(0.2)


class FileTransferSender:
    """Sends a fixed-size file over a new TCP connection."""

    def __init__(self, node, destination: IpAddress, destination_port: int = 5001,
                 file_bytes: int = PAPER_FILE_BYTES, mss: int = PAPER_MSS,
                 connection_options: Optional[dict] = None,
                 name: Optional[str] = None) -> None:
        if file_bytes <= 0:
            raise ConfigurationError("file size must be positive")
        self.node = node
        self.sim = node.sim
        self.destination = IpAddress(destination)
        self.destination_port = destination_port
        self.file_bytes = file_bytes
        self.mss = mss
        self.connection_options = dict(connection_options or {})
        self.name = name or f"ftp-send-{node.index}"
        self.connection: Optional[TcpConnection] = None
        self.start_time: Optional[float] = None
        self.acked_time: Optional[float] = None

    def start(self, delay: float = 0.0) -> None:
        """Open the connection and start the transfer after ``delay`` seconds."""
        self.sim.schedule(delay, self._begin)

    def _begin(self) -> None:
        self.start_time = self.sim.now
        self.connection = self.node.tcp.connect(self.destination, self.destination_port,
                                                mss=self.mss, **self.connection_options)
        self.connection.on_established = self._on_established
        self.connection.on_send_complete = self._on_send_complete

    def _on_established(self) -> None:
        assert self.connection is not None
        self.connection.send(self.file_bytes)
        self.connection.close()

    def _on_send_complete(self) -> None:
        self.acked_time = self.sim.now

    @property
    def finished(self) -> bool:
        """True once every byte (and the FIN) has been acknowledged."""
        return (self.connection is not None and self.connection.all_data_acknowledged
                and self.connection._fin_sent)


class FileTransferReceiver:
    """Accepts a TCP connection and records when the whole file has arrived."""

    def __init__(self, node, local_port: int = 5001,
                 expected_bytes: int = PAPER_FILE_BYTES, name: Optional[str] = None) -> None:
        self.node = node
        self.sim = node.sim
        self.local_port = local_port
        self.expected_bytes = expected_bytes
        self.name = name or f"ftp-recv-{node.index}"
        self.connection: Optional[TcpConnection] = None
        self.bytes_received = 0
        self.accept_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        node.tcp.listen(local_port, self._on_accept)

    def _on_accept(self, connection: TcpConnection) -> None:
        self.connection = connection
        self.accept_time = self.sim.now
        connection.on_data_received = self._on_data

    def _on_data(self, nbytes: int) -> None:
        self.bytes_received += nbytes
        if self.bytes_received >= self.expected_bytes and self.completion_time is None:
            self.completion_time = self.sim.now

    @property
    def complete(self) -> bool:
        """True once the expected number of bytes has been delivered in order."""
        return self.completion_time is not None

    def throughput_mbps(self, transfer_start: float) -> float:
        """End-to-end throughput of the transfer in Mbps (0 if incomplete)."""
        if self.completion_time is None or self.completion_time <= transfer_start:
            return 0.0
        return throughput_mbps(self.bytes_received, self.completion_time - transfer_start)


def run_file_transfer_pair(sender_node, receiver_node, file_bytes: int = PAPER_FILE_BYTES,
                           port: int = 5001, mss: int = PAPER_MSS,
                           start_delay: float = 0.0,
                           connection_options: Optional[dict] = None,
                           ) -> Tuple[FileTransferSender, FileTransferReceiver]:
    """Convenience: wire up a sender and receiver for a one-way transfer.

    ``connection_options`` are forwarded to the sender's
    :class:`~repro.transport.tcp.connection.TcpConnection` (e.g.
    ``{"idle_reprobe": True}`` for the outage mitigation).
    """
    receiver = FileTransferReceiver(receiver_node, local_port=port, expected_bytes=file_bytes)
    sender = FileTransferSender(sender_node, destination=receiver_node.ip,
                                destination_port=port, file_bytes=file_bytes, mss=mss,
                                connection_options=connection_options)
    sender.start(start_delay)
    return sender, receiver
