"""Application-level traffic sources and sinks used by the experiments."""

from repro.apps.cbr import CbrSource, UdpSink
from repro.apps.file_transfer import FileTransferReceiver, FileTransferSender, run_file_transfer_pair
from repro.net.flooding import FloodingSource

__all__ = [
    "CbrSource",
    "UdpSink",
    "FileTransferSender",
    "FileTransferReceiver",
    "run_file_transfer_pair",
    "FloodingSource",
]
