"""Constant-bit-rate UDP source and measuring sink.

The paper's UDP experiments (Table 2, Figures 7 and 9) use "an application
that simply sent UDP packets at a controllable rate", sized so that each
packet becomes a 1140 B MAC frame.  :class:`CbrSource` reproduces that
generator; :class:`UdpSink` measures goodput at the receiver.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.mac.frames import SUBFRAME_OVERHEAD_BYTES
from repro.net.address import IpAddress
from repro.net.packet import IP_HEADER_BYTES, UDP_HEADER_BYTES, Packet
from repro.sim.simulator import Simulator
from repro.sim.timer import PeriodicTimer
from repro.units import throughput_mbps

#: UDP payload that yields the paper's 1140 B UDP MAC frames.
PAPER_UDP_PAYLOAD_BYTES = 1140 - SUBFRAME_OVERHEAD_BYTES - IP_HEADER_BYTES - UDP_HEADER_BYTES


class CbrSource:
    """Sends fixed-size UDP datagrams at a fixed interval."""

    def __init__(self, node, destination: IpAddress, destination_port: int = 9000,
                 payload_bytes: int = PAPER_UDP_PAYLOAD_BYTES,
                 interval: float = 0.01, local_port: int = 9000,
                 name: Optional[str] = None) -> None:
        if interval <= 0:
            raise ConfigurationError("CBR interval must be positive")
        if payload_bytes <= 0:
            raise ConfigurationError("CBR payload must be positive")
        self.node = node
        self.sim: Simulator = node.sim
        self.destination = IpAddress(destination)
        self.destination_port = destination_port
        self.payload_bytes = payload_bytes
        self.interval = interval
        self.name = name or f"cbr-{node.index}"
        self.socket = node.udp.bind(local_port)
        self.packets_sent = 0
        self._timer = PeriodicTimer(node.sim, interval, self._emit,
                                    priority=Simulator.PRIORITY_APP, name=self.name)

    @classmethod
    def saturating(cls, node, destination: IpAddress, link_rate_bps: float,
                   destination_port: int = 9000,
                   payload_bytes: int = PAPER_UDP_PAYLOAD_BYTES,
                   overdrive: float = 2.0, **kwargs) -> "CbrSource":
        """A source whose offered load is ``overdrive`` times the PHY rate.

        Used wherever the paper drives the path to saturation so that queues
        build up and aggregation engages (Table 2, Figure 7).
        """
        interval = (payload_bytes * 8.0) / (link_rate_bps * overdrive)
        return cls(node, destination, destination_port=destination_port,
                   payload_bytes=payload_bytes, interval=interval, **kwargs)

    @property
    def offered_load_bps(self) -> float:
        """Offered application load in bits per second."""
        return self.payload_bytes * 8.0 / self.interval

    def start(self, delay: float = 0.0) -> None:
        """Start emitting datagrams after ``delay`` seconds."""
        self._timer.start(delay if delay > 0 else self.interval)

    def stop(self) -> None:
        """Stop the source."""
        self._timer.stop()

    def _emit(self) -> None:
        self.socket.send_to(self.destination, self.destination_port, self.payload_bytes,
                            annotations={"cbr_index": self.packets_sent})
        self.packets_sent += 1


class UdpSink:
    """Counts received UDP bytes and reports goodput."""

    def __init__(self, node, local_port: int = 9000, name: Optional[str] = None) -> None:
        self.node = node
        self.sim: Simulator = node.sim
        self.name = name or f"sink-{node.index}"
        self.socket = node.udp.bind(local_port)
        self.socket.on_receive(self._on_datagram)
        self.packets_received = 0
        self.bytes_received = 0
        self.first_arrival: Optional[float] = None
        self.last_arrival: Optional[float] = None
        #: Largest gap between consecutive arrivals — the application's view
        #: of an outage (used by the failover experiments).
        self.largest_arrival_gap = 0.0
        #: Byte-counter snapshots usable as measurement-window starts.
        self._snapshots = {0.0: 0}

    def _on_datagram(self, packet: Packet, source: IpAddress) -> None:
        self.packets_received += 1
        self.bytes_received += packet.payload_bytes
        journey = self.sim.journey
        if journey.enabled:
            journey.record(self.sim.now, self.node.name, "app", "consume",
                           packet, sink=self.name)
        if self.first_arrival is None:
            self.first_arrival = self.sim.now
        else:
            self.largest_arrival_gap = max(self.largest_arrival_gap,
                                           self.sim.now - self.last_arrival)
        self.last_arrival = self.sim.now

    def snapshot_at(self, time: float) -> None:
        """Record the byte count at simulated ``time`` (before the run).

        A snapshot makes ``time`` a valid ``measurement_start`` for
        :meth:`throughput_mbps`, excluding warmup-period bytes from the
        measured window.  The snapshot fires at PHY priority so datagrams
        arriving exactly at ``time`` land inside the window.
        """
        self.sim.schedule_at(
            time, lambda: self._snapshots.__setitem__(time, self.bytes_received),
            priority=Simulator.PRIORITY_PHY)

    def bytes_at(self, time: float) -> int:
        """Byte count recorded by the snapshot at ``time``."""
        return self._snapshots[time]

    def throughput_mbps(self, measurement_start: float = 0.0,
                        measurement_end: Optional[float] = None) -> float:
        """Application goodput in Mbps over the measurement window.

        Both window edges must be byte-countable: ``measurement_start`` must
        be 0 or a time registered with :meth:`snapshot_at`, and
        ``measurement_end`` must be "now" or also snapshotted — otherwise
        out-of-window bytes would leak into the numerator and inflate the
        result.
        """
        end = measurement_end if measurement_end is not None else self.sim.now
        try:
            window_base = self._snapshots[measurement_start]
        except KeyError:
            raise ConfigurationError(
                f"no byte snapshot at t={measurement_start}; call "
                f"snapshot_at() before running the simulation") from None
        if end in self._snapshots:
            end_bytes = self._snapshots[end]
        elif end >= self.sim.now:
            end_bytes = self.bytes_received
        else:
            raise ConfigurationError(
                f"no byte snapshot at t={end} and the clock is already at "
                f"{self.sim.now}; bytes received by then cannot be recovered")
        return throughput_mbps(end_bytes - window_base, end - measurement_start)
