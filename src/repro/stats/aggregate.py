"""Cross-seed aggregation of experiment results.

The campaign layer (:mod:`repro.campaign`) replicates every experiment over N
seeds; this module condenses the per-seed :class:`~repro.stats.results.ExperimentResult`
objects into one result whose series carry per-point means and 95% confidence
intervals (stored as :attr:`~repro.stats.results.Series.y_errors`), whose
tables hold cell-wise means (with a companion ``±ci95`` table when N > 1) and
whose metrics hold means plus ``<name>__ci95`` entries.

Confidence intervals use the two-sided Student-t critical value for the
sample size at hand (falling back to the normal 1.96 beyond 30 degrees of
freedom), so small seed counts are not over-confident.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ExperimentError
from repro.stats.results import ExperimentResult, Series, TableResult

#: Two-sided 95% Student-t critical values indexed by degrees of freedom.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}
#: Normal approximation used past the end of the t table.
_Z_95 = 1.96


def t_critical_95(degrees_of_freedom: int) -> float:
    """Two-sided 95% Student-t critical value (normal 1.96 past df=30)."""
    if degrees_of_freedom < 1:
        raise ExperimentError("confidence interval needs at least 2 samples")
    return _T_95.get(degrees_of_freedom, _Z_95)


@dataclass(frozen=True)
class SummaryStats:
    """Mean, sample standard deviation and 95% CI half-width of one metric."""

    n: int
    mean: float
    stddev: float
    ci95: float


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summarize a sample: mean, sample stddev (n-1) and 95% CI half-width.

    A single-value sample has zero spread by convention (stddev = ci95 = 0),
    which lets one-seed campaign runs flow through the same code path.
    """
    n = len(values)
    if n == 0:
        raise ExperimentError("cannot summarize an empty sample")
    mean = sum(values) / n
    if n == 1:
        return SummaryStats(n=1, mean=mean, stddev=0.0, ci95=0.0)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stddev = math.sqrt(variance)
    ci95 = t_critical_95(n - 1) * stddev / math.sqrt(n)
    return SummaryStats(n=n, mean=mean, stddev=stddev, ci95=ci95)


def _check_alignment(results: Sequence[ExperimentResult]) -> None:
    """Every replica must describe the same experiment shape."""
    first = results[0]
    for other in results[1:]:
        if other.experiment_id != first.experiment_id:
            raise ExperimentError(
                f"cannot aggregate {other.experiment_id!r} with {first.experiment_id!r}")
        if set(other.series) != set(first.series):
            raise ExperimentError(
                f"series labels differ between replicas of {first.experiment_id!r}")
        for label, series in first.series.items():
            if other.series[label].x_values != series.x_values:
                raise ExperimentError(
                    f"x-values of series {label!r} differ between replicas")
        if len(other.tables) != len(first.tables):
            raise ExperimentError(
                f"table counts differ between replicas of {first.experiment_id!r}")
        for table, other_table in zip(first.tables, other.tables):
            if other_table.columns != table.columns or set(other_table.rows) != set(table.rows):
                raise ExperimentError(
                    f"table shape of {table.title!r} differs between replicas")


def aggregate_experiment_results(results: Sequence[ExperimentResult]) -> ExperimentResult:
    """Merge per-seed replicas of one experiment into a mean ± 95% CI result."""
    if not results:
        raise ExperimentError("cannot aggregate zero results")
    _check_alignment(results)
    first = results[0]
    n = len(results)
    merged = ExperimentResult(
        experiment_id=first.experiment_id,
        description=first.description,
    )

    for label, series in first.series.items():
        replicas = [r.series[label] for r in results]
        mean_series = Series(label=label)
        for i, x in enumerate(series.x_values):
            stats = summarize([rep.y_values[i] for rep in replicas])
            mean_series.add(x, stats.mean, error=stats.ci95)
        merged.add_series(mean_series)

    for table_index, table in enumerate(first.tables):
        replicas = [r.tables[table_index] for r in results]
        mean_table = TableResult(title=table.title, columns=list(table.columns))
        ci_table = TableResult(title=f"{table.title} ±ci95", columns=list(table.columns))
        for row_name in table.rows:
            stats_row = [summarize([rep.rows[row_name][col] for rep in replicas])
                         for col in range(len(table.columns))]
            mean_table.add_row(row_name, [s.mean for s in stats_row])
            ci_table.add_row(row_name, [s.ci95 for s in stats_row])
        merged.add_table(mean_table)
        if n > 1:
            merged.add_table(ci_table)

    for name in first.metrics:
        stats = summarize([r.metrics[name] for r in results])
        merged.add_metric(name, stats.mean)
        if n > 1:
            merged.add_metric(f"{name}__ci95", stats.ci95)

    merged.notes = list(first.notes)
    merged.note(f"aggregated over {n} replica(s); series y_errors and __ci95 "
                f"metrics are 95% confidence half-widths")
    return merged
