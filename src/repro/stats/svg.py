"""Matplotlib-free SVG rendering of experiment results.

The campaign CLI (``python -m repro.campaign report --svg out.svg``) renders
an aggregated :class:`~repro.stats.results.ExperimentResult` — every series,
with 95%-confidence error bars where the aggregation recorded them — as a
single self-contained SVG document.  The writer is deliberately hand-rolled:
the container bakes no plotting stack, and the output only needs axes, tick
labels, polylines, error bars and a legend.

Everything is pure string assembly over :mod:`xml.sax.saxutils` escaping, so
the output is valid XML by construction and byte-deterministic for a given
result object.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from repro.stats.results import ExperimentResult, Series

#: Qualitative palette (colorblind-safe Okabe–Ito subset), cycled per series.
PALETTE = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # purple
    "#E69F00",  # orange
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
)

_MARGIN_LEFT = 64.0
_MARGIN_RIGHT = 16.0
_MARGIN_TOP = 34.0
_MARGIN_BOTTOM = 44.0
_LEGEND_ROW = 16.0


def _nice_ticks(low: float, high: float, count: int = 5) -> List[float]:
    """Round tick positions covering [low, high] (always >= 2 ticks)."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(count - 1, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = multiple * magnitude
        if step >= raw_step:
            break
    first = math.floor(low / step) * step
    ticks = []
    value = first
    while value <= high + step * 0.5:
        if value >= low - step * 0.5:
            ticks.append(round(value, 10))
        value += step
    return ticks or [low, high]


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.4g}"


class _Canvas:
    """Maps data space onto the SVG pixel grid of the plot area."""

    def __init__(self, width: float, height: float, legend_rows: int,
                 x_range: Tuple[float, float], y_range: Tuple[float, float]) -> None:
        self.width = width
        self.height = height
        self.plot_left = _MARGIN_LEFT
        self.plot_top = _MARGIN_TOP + legend_rows * _LEGEND_ROW
        self.plot_right = width - _MARGIN_RIGHT
        self.plot_bottom = height - _MARGIN_BOTTOM
        self.x_min, self.x_max = x_range
        self.y_min, self.y_max = y_range
        if self.x_max <= self.x_min:
            self.x_max = self.x_min + 1.0
        if self.y_max <= self.y_min:
            self.y_max = self.y_min + 1.0

    def x(self, value: float) -> float:
        span = self.x_max - self.x_min
        fraction = (value - self.x_min) / span
        return self.plot_left + fraction * (self.plot_right - self.plot_left)

    def y(self, value: float) -> float:
        span = self.y_max - self.y_min
        fraction = (value - self.y_min) / span
        return self.plot_bottom - fraction * (self.plot_bottom - self.plot_top)


def _data_ranges(series: Sequence[Series]) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    xs: List[float] = []
    ys: List[float] = []
    for one in series:
        xs.extend(one.x_values)
        errors = one.y_errors if one.y_errors else [0.0] * len(one.y_values)
        for y, err in zip(one.y_values, errors):
            ys.extend((y - err, y + err))
    if not xs:
        return (0.0, 1.0), (0.0, 1.0)
    y_low = min(min(ys), 0.0)  # anchor at zero: these are rates/ratios/counts
    return (min(xs), max(xs)), (y_low, max(ys))


def render_svg(result: ExperimentResult, width: int = 640, height: int = 420,
               title: Optional[str] = None, x_label: str = "x") -> str:
    """Render ``result``'s series as a complete SVG document string.

    Series with ``y_errors`` get vertical 95%-CI error bars with caps.
    Results without series render an "(no series)" placeholder so the export
    path never fails on table-only experiments.
    """
    title = title if title is not None else f"{result.experiment_id}: {result.description}"
    series = [s for s in result.series.values() if s.x_values]
    legend_rows = len(series)
    x_range, y_range = _data_ranges(series)
    canvas = _Canvas(float(width), float(height), legend_rows, x_range, y_range)

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="11">')
    parts.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    parts.append(f'<text x="{width / 2:.1f}" y="18" text-anchor="middle" '
                 f'font-size="13" font-weight="bold">{escape(title)}</text>')

    if not series:
        parts.append(f'<text x="{width / 2:.1f}" y="{height / 2:.1f}" '
                     f'text-anchor="middle" fill="#888">(no series)</text>')
        parts.append("</svg>")
        return "\n".join(parts)

    # --- axes, grid and ticks -----------------------------------------
    axis = (f'M {canvas.plot_left:.1f} {canvas.plot_top:.1f} '
            f'L {canvas.plot_left:.1f} {canvas.plot_bottom:.1f} '
            f'L {canvas.plot_right:.1f} {canvas.plot_bottom:.1f}')
    for tick in _nice_ticks(canvas.x_min, canvas.x_max):
        x = canvas.x(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{canvas.plot_bottom:.1f}" '
                     f'x2="{x:.1f}" y2="{canvas.plot_bottom + 4:.1f}" '
                     f'stroke="#333" stroke-width="1"/>')
        parts.append(f'<text x="{x:.1f}" y="{canvas.plot_bottom + 16:.1f}" '
                     f'text-anchor="middle">{escape(_format_tick(tick))}</text>')
    for tick in _nice_ticks(canvas.y_min, canvas.y_max):
        y = canvas.y(tick)
        parts.append(f'<line x1="{canvas.plot_left:.1f}" y1="{y:.1f}" '
                     f'x2="{canvas.plot_right:.1f}" y2="{y:.1f}" '
                     f'stroke="#ddd" stroke-width="0.5"/>')
        parts.append(f'<text x="{canvas.plot_left - 6:.1f}" y="{y + 3.5:.1f}" '
                     f'text-anchor="end">{escape(_format_tick(tick))}</text>')
    parts.append(f'<path d="{axis}" fill="none" stroke="#333" stroke-width="1"/>')
    parts.append(f'<text x="{(canvas.plot_left + canvas.plot_right) / 2:.1f}" '
                 f'y="{canvas.plot_bottom + 32:.1f}" text-anchor="middle" '
                 f'fill="#555">{escape(x_label)}</text>')

    # --- series: error bars below markers below lines -----------------
    for index, one in enumerate(series):
        color = PALETTE[index % len(PALETTE)]
        points = [(canvas.x(x), canvas.y(y))
                  for x, y in zip(one.x_values, one.y_values)]
        if one.y_errors:
            for (x, y), err in zip(zip(one.x_values, one.y_values), one.y_errors):
                if err <= 0:
                    continue
                px = canvas.x(x)
                top, bottom = canvas.y(y + err), canvas.y(y - err)
                parts.append(f'<line class="errorbar" x1="{px:.1f}" y1="{top:.1f}" '
                             f'x2="{px:.1f}" y2="{bottom:.1f}" '
                             f'stroke="{color}" stroke-width="1"/>')
                for cap_y in (top, bottom):
                    parts.append(f'<line x1="{px - 3:.1f}" y1="{cap_y:.1f}" '
                                 f'x2="{px + 3:.1f}" y2="{cap_y:.1f}" '
                                 f'stroke="{color}" stroke-width="1"/>')
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        parts.append(f'<polyline points="{path}" fill="none" stroke="{color}" '
                     f'stroke-width="1.5"/>')
        for x, y in points:
            parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.5" fill="{color}"/>')

    # --- legend --------------------------------------------------------
    for index, one in enumerate(series):
        color = PALETTE[index % len(PALETTE)]
        y = _MARGIN_TOP - 8 + index * _LEGEND_ROW
        parts.append(f'<line x1="{canvas.plot_left:.1f}" y1="{y:.1f}" '
                     f'x2="{canvas.plot_left + 18:.1f}" y2="{y:.1f}" '
                     f'stroke="{color}" stroke-width="2"/>')
        parts.append(f'<text x="{canvas.plot_left + 24:.1f}" y="{y + 3.5:.1f}">'
                     f'{escape(one.label)}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(result: ExperimentResult, path: str, **kwargs) -> None:
    """Render ``result`` and write it to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(result, **kwargs))
