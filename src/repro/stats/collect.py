"""Helpers that pull the paper's detailed-analysis metrics out of a scenario.

Tables 3–8 all report per-node MAC statistics at the end of a TCP transfer:
average frame size, number of transmissions (as a percentage of the
no-aggregation count), MAC+PHY size overhead and time overhead.  The MACs
accumulate the raw counters (:class:`repro.mac.stats.MacStatistics`); these
functions assemble them per node / per network.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.topology.network import Network


def relay_detail(network: Network, relay_indices: Iterable[int]) -> Dict[str, float]:
    """Frame-size / transmission / overhead summary over the given relay nodes.

    This is the quantity Table 3 (2-hop) and Tables 5–7 (star) report: the
    behaviour of the relay node(s) in the middle of the path.
    """
    relays = [network.node(i) for i in relay_indices]
    total_tx = sum(node.mac_stats.data_transmissions for node in relays)
    sizes: List[float] = []
    for node in relays:
        sizes.extend(node.mac_stats.frame_sizes.values)
    average_size = sum(sizes) / len(sizes) if sizes else 0.0

    payload = sum(node.mac_stats.payload_bytes_sent for node in relays)
    overhead = sum(node.mac_stats.mac_overhead_bytes_sent
                   + node.mac_stats.phy_header_bytes_equivalent for node in relays)
    size_overhead = overhead / (payload + overhead) if (payload + overhead) > 0 else 0.0

    payload_time = sum(node.mac_stats.payload_airtime for node in relays)
    overhead_time = sum(node.mac_stats.header_airtime + node.mac_stats.control_airtime
                        + node.mac_stats.ifs_airtime + node.mac_stats.contention_airtime
                        for node in relays)
    time_overhead = (overhead_time / (payload_time + overhead_time)
                     if (payload_time + overhead_time) > 0 else 0.0)

    return {
        "transmissions": float(total_tx),
        "average_frame_size": average_size,
        "size_overhead": size_overhead,
        "time_overhead": time_overhead,
        "average_subframes_per_frame": (
            sum(node.mac_stats.aggregate_subframe_counts.total() for node in relays) / total_tx
            if total_tx else 0.0),
    }


def node_frame_sizes(network: Network, indices: Optional[Iterable[int]] = None) -> Dict[int, float]:
    """Average DATA frame size per node (Table 8)."""
    indices = list(indices) if indices is not None else [n.index for n in network.nodes]
    return {index: network.node(index).mac_stats.average_frame_size for index in indices}


def transmission_percentages(variant_transmissions: Dict[str, float],
                             baseline: str = "NA") -> Dict[str, float]:
    """Express each variant's transmission count relative to the baseline (Tables 3 and 7)."""
    base = variant_transmissions.get(baseline, 0.0)
    if base <= 0:
        return {name: 0.0 for name in variant_transmissions}
    return {name: 100.0 * count / base for name, count in variant_transmissions.items()}
