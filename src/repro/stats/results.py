"""Result containers shared by the experiment runners and benchmarks.

The paper reports two kinds of results: *figures* (throughput series over a
swept parameter, for several protocol variants) and *tables* (per-node or
per-variant scalar metrics).  :class:`Series` and :class:`TableResult` model
those two shapes and render themselves as aligned plain-text tables so that
benchmark output can be compared side by side with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Series:
    """One curve of a figure: y-values of one variant over the swept x-values.

    ``y_errors`` is optional and, when present, holds one symmetric error-bar
    half-width per point (the campaign layer stores 95% confidence intervals
    there after seed replication).
    """

    label: str
    x_values: List[float] = field(default_factory=list)
    y_values: List[float] = field(default_factory=list)
    y_errors: List[float] = field(default_factory=list)

    def add(self, x: float, y: float, error: Optional[float] = None) -> None:
        """Append a point (optionally with an error-bar half-width).

        Either every point of a series carries an error bar or none does;
        mixing the two would silently misalign ``y_errors`` with the points.
        """
        if error is None:
            if self.y_errors:
                raise ValueError(
                    f"series {self.label!r}: cannot mix points with and without error bars")
        elif len(self.y_errors) != len(self.x_values):
            raise ValueError(
                f"series {self.label!r}: cannot mix points with and without error bars")
        self.x_values.append(x)
        self.y_values.append(y)
        if error is not None:
            self.y_errors.append(error)

    def value_at(self, x: float, tolerance: float = 1e-9) -> float:
        """The y-value recorded at ``x`` (raises if absent)."""
        for xv, yv in zip(self.x_values, self.y_values):
            if abs(xv - x) <= tolerance:
                return yv
        raise KeyError(f"series {self.label!r} has no point at x={x}")

    @property
    def peak(self) -> float:
        """Largest y-value (0 when empty)."""
        return max(self.y_values) if self.y_values else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (inverse of :meth:`from_dict`)."""
        data: Dict[str, object] = {
            "label": self.label,
            "x_values": list(self.x_values),
            "y_values": list(self.y_values),
        }
        if self.y_errors:
            data["y_errors"] = list(self.y_errors)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Series":
        """Rebuild a series from :meth:`to_dict` output."""
        return cls(
            label=str(data["label"]),
            x_values=[float(x) for x in data.get("x_values", [])],
            y_values=[float(y) for y in data.get("y_values", [])],
            y_errors=[float(e) for e in data.get("y_errors", [])],
        )


@dataclass
class TableResult:
    """A table: named rows of named-column values."""

    title: str
    columns: List[str]
    rows: Dict[str, List[float]] = field(default_factory=dict)

    def add_row(self, name: str, values: Sequence[float]) -> None:
        """Add a row (must have one value per column)."""
        self.rows[name] = list(values)

    def cell(self, row: str, column: str) -> float:
        """Value at ``(row, column)``."""
        return self.rows[row][self.columns.index(column)]

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (inverse of :meth:`from_dict`)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": {name: list(values) for name, values in self.rows.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TableResult":
        """Rebuild a table from :meth:`to_dict` output."""
        rows = data.get("rows", {})
        return cls(
            title=str(data["title"]),
            columns=[str(c) for c in data.get("columns", [])],
            rows={str(name): [float(v) for v in values] for name, values in rows.items()},
        )

    def to_text(self, float_format: str = "{:.3f}") -> str:
        """Render the table as aligned plain text."""
        header = [self.title] + list(self.columns)
        lines = ["  ".join(f"{h:>14}" for h in header)]
        for name, values in self.rows.items():
            cells = [f"{name:>14}"]
            for value in values:
                cells.append(f"{float_format.format(value):>14}")
            lines.append("  ".join(cells))
        return "\n".join(lines)


@dataclass
class ExperimentResult:
    """The full outcome of one experiment (one paper figure or table)."""

    experiment_id: str
    description: str
    #: Figure-style results: one series per protocol variant.
    series: Dict[str, Series] = field(default_factory=dict)
    #: Table-style results.
    tables: List[TableResult] = field(default_factory=list)
    #: Free-form scalar observations (e.g. "max BA/UA gap %").
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, series: Series) -> Series:
        """Register a series under its label."""
        self.series[series.label] = series
        return series

    def get_series(self, label: str) -> Series:
        """Fetch a series by label."""
        return self.series[label]

    def add_table(self, table: TableResult) -> TableResult:
        """Register a table."""
        self.tables.append(table)
        return table

    def add_metric(self, name: str, value: float) -> None:
        """Record a scalar metric."""
        self.metrics[name] = value

    def note(self, text: str) -> None:
        """Attach a free-form note."""
        self.notes.append(text)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (inverse of :meth:`from_dict`)."""
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "series": {label: series.to_dict() for label, series in self.series.items()},
            "tables": [table.to_dict() for table in self.tables],
            "metrics": dict(self.metrics),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a full experiment result from :meth:`to_dict` output."""
        result = cls(
            experiment_id=str(data["experiment_id"]),
            description=str(data.get("description", "")),
        )
        for label, series_data in data.get("series", {}).items():
            result.series[str(label)] = Series.from_dict(series_data)
        for table_data in data.get("tables", []):
            result.tables.append(TableResult.from_dict(table_data))
        result.metrics = {str(k): float(v) for k, v in data.get("metrics", {}).items()}
        result.notes = [str(n) for n in data.get("notes", [])]
        return result

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Render the whole result as plain text (benchmarks print this)."""
        lines = [f"== {self.experiment_id}: {self.description} =="]
        if self.series:
            x_values: Optional[List[float]] = None
            for series in self.series.values():
                x_values = series.x_values
                break
            header = ["x"] + [label for label in self.series]
            lines.append("  ".join(f"{h:>12}" for h in header))
            for i, x in enumerate(x_values or []):
                row = [f"{x:>12.3f}"]
                for series in self.series.values():
                    value = series.y_values[i] if i < len(series.y_values) else float("nan")
                    row.append(f"{value:>12.4f}")
                lines.append("  ".join(row))
        for table in self.tables:
            lines.append("")
            lines.append(table.to_text())
        if self.metrics:
            lines.append("")
            for name, value in self.metrics.items():
                lines.append(f"  {name}: {value:.4f}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
