"""Result containers shared by the experiment runners and benchmarks.

The paper reports two kinds of results: *figures* (throughput series over a
swept parameter, for several protocol variants) and *tables* (per-node or
per-variant scalar metrics).  :class:`Series` and :class:`TableResult` model
those two shapes and render themselves as aligned plain-text tables so that
benchmark output can be compared side by side with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Series:
    """One curve of a figure: y-values of one variant over the swept x-values."""

    label: str
    x_values: List[float] = field(default_factory=list)
    y_values: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append a point."""
        self.x_values.append(x)
        self.y_values.append(y)

    def value_at(self, x: float, tolerance: float = 1e-9) -> float:
        """The y-value recorded at ``x`` (raises if absent)."""
        for xv, yv in zip(self.x_values, self.y_values):
            if abs(xv - x) <= tolerance:
                return yv
        raise KeyError(f"series {self.label!r} has no point at x={x}")

    @property
    def peak(self) -> float:
        """Largest y-value (0 when empty)."""
        return max(self.y_values) if self.y_values else 0.0


@dataclass
class TableResult:
    """A table: named rows of named-column values."""

    title: str
    columns: List[str]
    rows: Dict[str, List[float]] = field(default_factory=dict)

    def add_row(self, name: str, values: Sequence[float]) -> None:
        """Add a row (must have one value per column)."""
        self.rows[name] = list(values)

    def cell(self, row: str, column: str) -> float:
        """Value at ``(row, column)``."""
        return self.rows[row][self.columns.index(column)]

    def to_text(self, float_format: str = "{:.3f}") -> str:
        """Render the table as aligned plain text."""
        header = [self.title] + list(self.columns)
        lines = ["  ".join(f"{h:>14}" for h in header)]
        for name, values in self.rows.items():
            cells = [f"{name:>14}"]
            for value in values:
                cells.append(f"{float_format.format(value):>14}")
            lines.append("  ".join(cells))
        return "\n".join(lines)


@dataclass
class ExperimentResult:
    """The full outcome of one experiment (one paper figure or table)."""

    experiment_id: str
    description: str
    #: Figure-style results: one series per protocol variant.
    series: Dict[str, Series] = field(default_factory=dict)
    #: Table-style results.
    tables: List[TableResult] = field(default_factory=list)
    #: Free-form scalar observations (e.g. "max BA/UA gap %").
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, series: Series) -> Series:
        """Register a series under its label."""
        self.series[series.label] = series
        return series

    def get_series(self, label: str) -> Series:
        """Fetch a series by label."""
        return self.series[label]

    def add_table(self, table: TableResult) -> TableResult:
        """Register a table."""
        self.tables.append(table)
        return table

    def add_metric(self, name: str, value: float) -> None:
        """Record a scalar metric."""
        self.metrics[name] = value

    def note(self, text: str) -> None:
        """Attach a free-form note."""
        self.notes.append(text)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Render the whole result as plain text (benchmarks print this)."""
        lines = [f"== {self.experiment_id}: {self.description} =="]
        if self.series:
            x_values: Optional[List[float]] = None
            for series in self.series.values():
                x_values = series.x_values
                break
            header = ["x"] + [label for label in self.series]
            lines.append("  ".join(f"{h:>12}" for h in header))
            for i, x in enumerate(x_values or []):
                row = [f"{x:>12.3f}"]
                for series in self.series.values():
                    value = series.y_values[i] if i < len(series.y_values) else float("nan")
                    row.append(f"{value:>12.4f}")
                lines.append("  ".join(row))
        for table in self.tables:
            lines.append("")
            lines.append(table.to_text())
        if self.metrics:
            lines.append("")
            for name, value in self.metrics.items():
                lines.append(f"  {name}: {value:.4f}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
