"""Result collection and formatting."""

from repro.stats.results import ExperimentResult, Series, TableResult
from repro.stats.collect import relay_detail, node_frame_sizes, transmission_percentages

__all__ = [
    "ExperimentResult",
    "Series",
    "TableResult",
    "relay_detail",
    "node_frame_sizes",
    "transmission_percentages",
]
