"""Result collection, aggregation and formatting."""

from repro.stats.results import ExperimentResult, Series, TableResult
from repro.stats.collect import relay_detail, node_frame_sizes, transmission_percentages
from repro.stats.aggregate import (
    SummaryStats,
    aggregate_experiment_results,
    summarize,
    t_critical_95,
)
from repro.stats.svg import render_svg, write_svg

__all__ = [
    "render_svg",
    "write_svg",
    "ExperimentResult",
    "Series",
    "TableResult",
    "SummaryStats",
    "aggregate_experiment_results",
    "summarize",
    "t_critical_95",
    "relay_detail",
    "node_frame_sizes",
    "transmission_percentages",
]
