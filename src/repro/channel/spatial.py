"""Uniform-grid spatial index over the registered PHYs of a channel.

:meth:`~repro.channel.medium.WirelessChannel.broadcast` historically budgeted
every registered PHY for every frame — O(N) per send, which caps scenarios at
tens of nodes.  :class:`UniformGridIndex` buckets PHYs into square cells of a
configurable size and answers *"who could possibly hear a frame sent from
here?"* by enumerating only the cells that intersect the propagation model's
conservative max-range disc (:meth:`max_range_m` on the model, see
:mod:`repro.channel.propagation`), so per-send cost is O(neighbours).

The index is deliberately *not* trusted with physics: it returns a candidate
**superset** — every registered PHY whose exact position lies within the
queried range is guaranteed to be a candidate (plus possibly a few just
outside it, from partially covered cells).  The channel still evaluates the
exact link budget for every candidate and culls receivers below their detect
floor, so grid-indexed and full-scan runs produce byte-identical outcomes;
``tests/integration/test_spatial_determinism.py`` pins that contract.

Determinism rules baked in:

* **Candidate order is registration order.**  Cells store entries in
  insertion order and the final candidate list is sorted by each entry's
  registration sequence number — never by cell hash or set iteration — so
  deliveries are scheduled in exactly the order the full scan would use.
* **Lazy revalidation against exact positions.**  Mobile PHYs (those
  carrying a mobility model) are revalidated on every query against
  ``position_at(now)`` — the same pattern as the channel's link-budget memo:
  the cached cell may only be used when recomputing it would give the same
  answer.  Stationary PHYs are revalidated through the
  :meth:`~repro.channel.medium.WirelessChannel.phy_position_changed` hook
  the PHY's ``position`` setter fires, so a reassigned static position moves
  its entry immediately.
* **Purge on unregister.**  Unregistering removes the entry from its cell,
  the mobile list and the entry table, and drops emptied cells — a departed
  PHY can never shadow a later one that recycles its ``id()``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.phy.device import Phy

Cell = Tuple[int, int]


class _GridEntry:
    """One registered PHY: its cached position, cell and registration rank."""

    __slots__ = ("phy", "seq", "position", "cell", "mobile")

    def __init__(self, phy: "Phy", seq: int, position: tuple, cell: Cell,
                 mobile: bool) -> None:
        self.phy = phy
        self.seq = seq
        self.position = position
        self.cell = cell
        self.mobile = mobile


class UniformGridIndex:
    """Square-cell spatial hash with registration-ordered candidate queries."""

    __slots__ = ("cell_size_m", "_entries", "_cells", "_mobile", "_next_seq")

    def __init__(self, cell_size_m: float) -> None:
        if not (cell_size_m > 0.0) or math.isinf(cell_size_m):
            raise ConfigurationError(
                f"cell size must be positive and finite, got {cell_size_m}")
        self.cell_size_m = cell_size_m
        # id(phy) -> entry; insertion order is registration order.
        self._entries: Dict[int, _GridEntry] = {}
        # cell -> entries, each list in registration order.
        self._cells: Dict[Cell, List[_GridEntry]] = {}
        # Entries carrying a mobility model, revalidated on every query.
        self._mobile: List[_GridEntry] = []
        self._next_seq = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, phy: "Phy", now: float) -> None:
        """Add ``phy`` at its exact position at ``now`` (idempotent)."""
        if id(phy) in self._entries:
            return
        position = phy.position_at(now)
        cell = self.cell_for(position)
        entry = _GridEntry(phy, self._next_seq, position, cell,
                           mobile=phy.mobility is not None)
        self._next_seq += 1
        self._entries[id(phy)] = entry
        self._cells.setdefault(cell, []).append(entry)
        if entry.mobile:
            self._mobile.append(entry)

    def unregister(self, phy: "Phy") -> None:
        """Remove ``phy`` and purge its cell entry (idempotent)."""
        entry = self._entries.pop(id(phy), None)
        if entry is None:
            return
        self._drop_from_cell(entry)
        if entry.mobile:
            self._mobile.remove(entry)

    def position_changed(self, phy: "Phy") -> None:
        """Re-bucket ``phy`` after its static position snapshot was reassigned.

        Mobile entries need no hook — every query revalidates them against
        ``position_at(now)`` — but their snapshot updates (mobility models
        periodically copy the analytic position into ``phy.position``) land
        here too and are folded in for free.
        """
        entry = self._entries.get(id(phy))
        if entry is None:
            return
        self._move(entry, phy.position)

    def mobility_changed(self, phy: "Phy") -> None:
        """Promote ``phy`` to the per-query revalidation list."""
        entry = self._entries.get(id(phy))
        if entry is None or entry.mobile:
            return
        entry.mobile = True
        self._mobile.append(entry)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def candidates(self, origin: tuple, range_m: float, now: float) -> List["Phy"]:
        """Registered PHYs whose exact position may lie within ``range_m``.

        Returns a superset of the in-range PHYs, in registration order.  The
        caller is expected to evaluate the exact link budget per candidate;
        the index only prunes PHYs that are provably out of reach.
        """
        for entry in self._mobile:
            position = entry.phy.position_at(now)
            if position != entry.position:
                self._move(entry, position)
        cell_size = self.cell_size_m
        min_cx = math.floor((origin[0] - range_m) / cell_size)
        max_cx = math.floor((origin[0] + range_m) / cell_size)
        min_cy = math.floor((origin[1] - range_m) / cell_size)
        max_cy = math.floor((origin[1] + range_m) / cell_size)
        cells = self._cells
        found: List[_GridEntry] = []
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                bucket = cells.get((cx, cy))
                if bucket is not None:
                    found.extend(bucket)
        found.sort(key=_entry_seq)
        return [entry.phy for entry in found]

    def cell_for(self, position: tuple) -> Cell:
        """The cell coordinate containing ``position``."""
        cell_size = self.cell_size_m
        return (math.floor(position[0] / cell_size),
                math.floor(position[1] / cell_size))

    # ------------------------------------------------------------------
    # Introspection (tests and metrics)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, phy: "Phy") -> bool:
        return id(phy) in self._entries

    @property
    def cell_count(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

    @property
    def mobile_count(self) -> int:
        """Number of entries revalidated per query."""
        return len(self._mobile)

    def stored_cell_of(self, phy: "Phy") -> Optional[Cell]:
        """The cell the index currently files ``phy`` under (None if absent)."""
        entry = self._entries.get(id(phy))
        return entry.cell if entry is not None else None

    def audit(self) -> None:
        """Assert internal consistency (test helper, not a hot path)."""
        cell_entries = [entry for bucket in self._cells.values() for entry in bucket]
        assert len(cell_entries) == len(self._entries), "entry/cell count mismatch"
        for entry in self._entries.values():
            assert entry in self._cells.get(entry.cell, ()), "entry missing from its cell"
        assert not any(len(bucket) == 0 for bucket in self._cells.values()), (
            "empty cell bucket retained")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _move(self, entry: _GridEntry, position: tuple) -> None:
        entry.position = position
        cell = self.cell_for(position)
        if cell == entry.cell:
            return
        self._drop_from_cell(entry)
        entry.cell = cell
        self._cells.setdefault(cell, []).append(entry)

    def _drop_from_cell(self, entry: _GridEntry) -> None:
        bucket = self._cells[entry.cell]
        bucket.remove(entry)
        if not bucket:
            del self._cells[entry.cell]


def _entry_seq(entry: _GridEntry) -> int:
    return entry.seq
