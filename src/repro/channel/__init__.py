"""Wireless channel: propagation models and the shared broadcast medium.

The paper's experiments place all nodes within carrier-sense range of each
other (Section 5), at a spacing of roughly 2.5 m, with transmit power chosen
so adjacent nodes see about 25 dB of SNR.  The default propagation constants
in :func:`repro.channel.propagation.hydra_indoor_propagation` reproduce that
operating point.
"""

from repro.channel.propagation import (
    FreeSpacePathLoss,
    LinkAwarePropagationModel,
    LogDistancePathLoss,
    LogNormalShadowing,
    PropagationModel,
    hydra_indoor_propagation,
)
from repro.channel.medium import Transmission, WirelessChannel

__all__ = [
    "PropagationModel",
    "LinkAwarePropagationModel",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "LogNormalShadowing",
    "hydra_indoor_propagation",
    "Transmission",
    "WirelessChannel",
]
