"""The shared wireless medium.

:class:`WirelessChannel` connects every :class:`~repro.phy.device.Phy` in a
scenario.  When a PHY transmits, the channel computes the received power at
every other PHY from the propagation model and delivers *begin-reception* and
*end-reception* events after the (negligible but modelled) propagation delay.
Collision and capture decisions are the receiving PHY's job; the channel only
reports who hears what, and how loudly.

Positions are **time-varying**: every link-budget computation asks each PHY
for ``position_at(now)`` — the exact analytic position under its mobility
model, evaluated at transmission start — instead of reading a cached static
coordinate.  For stationary PHYs (the paper's entire evaluation) this
degenerates to the static position, bit for bit.  Link-aware propagation
models (per-link shadowing) are consulted through ``path_loss_between``; see
:mod:`repro.channel.propagation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.channel.propagation import PropagationModel, distance_between, hydra_indoor_propagation
from repro.errors import ConfigurationError
from repro.phy.frame import PhyFrame
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.phy.device import Phy

#: Speed of light in metres per second (propagation delay).
SPEED_OF_LIGHT = 299_792_458.0


@dataclass
class Transmission:
    """One frame in flight on the medium."""

    sender: "Phy"
    frame: PhyFrame
    start_time: float
    duration: float
    power_dbm: float

    @property
    def end_time(self) -> float:
        """Simulated time at which the transmission ends."""
        return self.start_time + self.duration


class WirelessChannel:
    """Single shared broadcast medium connecting all registered PHYs."""

    def __init__(
        self,
        sim: Simulator,
        propagation: Optional[PropagationModel] = None,
        noise_floor_dbm: float = -94.0,
        propagation_delay_enabled: bool = True,
    ) -> None:
        self.sim = sim
        self.propagation = propagation or hydra_indoor_propagation()
        if hasattr(self.propagation, "bind"):
            # Link-aware models (e.g. LogNormalShadowing) draw per-link
            # offsets from the simulator's seeded streams.
            self.propagation.bind(sim.random)
        self.noise_floor_dbm = noise_floor_dbm
        self.propagation_delay_enabled = propagation_delay_enabled
        self._phys: List["Phy"] = []
        self.active_transmissions: List[Transmission] = []
        # statistics
        self.total_transmissions = 0
        self.total_airtime = 0.0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, phy: "Phy") -> None:
        """Attach a PHY to the medium (idempotent)."""
        if phy not in self._phys:
            self._phys.append(phy)

    def unregister(self, phy: "Phy") -> None:
        """Detach a PHY from the medium."""
        if phy in self._phys:
            self._phys.remove(phy)

    @property
    def phys(self) -> List["Phy"]:
        """All PHYs currently attached."""
        return list(self._phys)

    # ------------------------------------------------------------------
    # Link budget helpers
    # ------------------------------------------------------------------
    def received_power_dbm(self, sender: "Phy", receiver: "Phy", tx_power_dbm: float,
                           time: Optional[float] = None) -> float:
        """Received power at ``receiver`` for a transmission by ``sender``.

        Evaluated against exact positions at ``time`` (default: now, i.e. the
        start of the transmission being budgeted).
        """
        when = self.sim.now if time is None else time
        tx_position = sender.position_at(when)
        rx_position = receiver.position_at(when)
        if hasattr(self.propagation, "path_loss_between"):
            loss = self.propagation.path_loss_between(
                sender.name, receiver.name, tx_position, rx_position, when)
        else:
            loss = self.propagation.path_loss_db(tx_position, rx_position)
        return tx_power_dbm - loss

    def link_snr_db(self, sender: "Phy", receiver: "Phy",
                    tx_power_dbm: Optional[float] = None) -> float:
        """Nominal SNR of the ``sender`` → ``receiver`` link (no interference)."""
        power = sender.config.tx_power_dbm if tx_power_dbm is None else tx_power_dbm
        return self.received_power_dbm(sender, receiver, power) - self.noise_floor_dbm

    def propagation_delay(self, sender: "Phy", receiver: "Phy") -> float:
        """One-way propagation delay between two PHYs (at their positions now)."""
        if not self.propagation_delay_enabled:
            return 0.0
        now = self.sim.now
        return distance_between(sender.position_at(now),
                                receiver.position_at(now)) / SPEED_OF_LIGHT

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def broadcast(self, sender: "Phy", frame: PhyFrame, duration: float,
                  power_dbm: float) -> Transmission:
        """Deliver ``frame`` from ``sender`` to every other registered PHY."""
        if sender not in self._phys:
            raise ConfigurationError("transmitting PHY is not registered with the channel")
        if duration <= 0:
            raise ConfigurationError(f"transmission duration must be positive, got {duration}")
        transmission = Transmission(
            sender=sender,
            frame=frame,
            start_time=self.sim.now,
            duration=duration,
            power_dbm=power_dbm,
        )
        self.active_transmissions.append(transmission)
        self.total_transmissions += 1
        self.total_airtime += duration
        self.sim.schedule(duration, self._retire_transmission, transmission,
                          priority=Simulator.PRIORITY_PHY)

        for receiver in self._phys:
            if receiver is sender:
                continue
            rx_power = self.received_power_dbm(sender, receiver, power_dbm)
            delay = self.propagation_delay(sender, receiver)
            self.sim.schedule(delay, receiver.begin_reception, transmission, rx_power,
                              priority=Simulator.PRIORITY_PHY)
            self.sim.schedule(delay + duration, receiver.end_reception, transmission,
                              priority=Simulator.PRIORITY_PHY)
        return transmission

    def _retire_transmission(self, transmission: Transmission) -> None:
        if transmission in self.active_transmissions:
            self.active_transmissions.remove(transmission)

    @property
    def busy(self) -> bool:
        """True while any transmission is on the air."""
        return bool(self.active_transmissions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WirelessChannel phys={len(self._phys)} active={len(self.active_transmissions)}>"
