"""The shared wireless medium.

:class:`WirelessChannel` connects every :class:`~repro.phy.device.Phy` in a
scenario.  When a PHY transmits, the channel computes the received power at
every other PHY from the propagation model and delivers *begin-reception* and
*end-reception* events after the (negligible but modelled) propagation delay.
Collision and capture decisions are the receiving PHY's job; the channel only
reports who hears what, and how loudly.

Positions are **time-varying**: every link-budget computation asks each PHY
for ``position_at(now)`` — the exact analytic position under its mobility
model, evaluated at transmission start — instead of reading a cached static
coordinate.  For stationary PHYs (the paper's entire evaluation) this
degenerates to the static position, bit for bit.  Link-aware propagation
models (per-link shadowing) are consulted through ``path_loss_between``; see
:mod:`repro.channel.propagation`.

Because the budget of a link is a pure function of (endpoint identities,
endpoint positions, propagation epoch), the channel memoises it per link and
revalidates the cached entry against the exact positions and the model's
``cache_epoch`` on every use: stationary links hit the cache on every frame,
while a link whose endpoint moved (or whose shadowing epoch rolled over)
recomputes — so results are bit-for-bit identical with the memo on or off
(``link_budget_memo=False`` disables it for A/B verification).

Candidate enumeration scales past tens of nodes through the ``spatial_index=``
policy: ``"scan"`` budgets every registered PHY per frame (O(N), the seed
behaviour), ``"grid"`` asks a :class:`~repro.channel.spatial.UniformGridIndex`
for the PHYs within the propagation model's conservative ``max_range_m``
cutoff (O(neighbours)), and ``"auto"`` — the default — switches from scan to
grid above :data:`AUTO_SPATIAL_THRESHOLD` registered PHYs.  All modes cull
deliveries below the receiver's detect floor before scheduling them, so the
scheduled event set (and therefore every byte of a run) is identical across
modes; ``tests/integration/test_spatial_determinism.py`` is the differential
proof.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.channel.propagation import PropagationModel, distance_between, hydra_indoor_propagation
from repro.channel.spatial import UniformGridIndex
from repro.errors import ConfigurationError
from repro.phy.frame import PhyFrame
from repro.sim.events import EventHandle
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.phy.device import Phy

#: Speed of light in metres per second (propagation delay).
SPEED_OF_LIGHT = 299_792_458.0

#: Prune a receiver's delivery-handle list once it grows past this many
#: entries (most are long since fired; pruning keeps unregister O(in-flight)).
_HANDLE_PRUNE_THRESHOLD = 256

#: ``spatial_index="auto"`` keeps the exhaustive scan at or below this many
#: registered PHYs and switches to the grid index above it.  Crossing the
#: threshold never changes bytes — both enumerations schedule the identical
#: event set (see ``broadcast``) — so the constant is a pure speed knob; it
#: sits far above every paper scenario (≤ 21 nodes) to keep those runs on
#: the exact code path the committed expectations were produced with.
AUTO_SPATIAL_THRESHOLD = 64

#: Valid values for the ``spatial_index=`` policy.
SPATIAL_MODES = ("auto", "scan", "grid")

_UNSET = object()


@dataclass(slots=True)
class Transmission:
    """One frame in flight on the medium."""

    sender: "Phy"
    frame: PhyFrame
    start_time: float
    duration: float
    power_dbm: float

    @property
    def end_time(self) -> float:
        """Simulated time at which the transmission ends."""
        return self.start_time + self.duration


class WirelessChannel:
    """Single shared broadcast medium connecting all registered PHYs."""

    __slots__ = ("sim", "propagation", "noise_floor_dbm",
                 "propagation_delay_enabled", "spatial_index_mode",
                 "spatial_cell_m", "_phys", "_phy_ids",
                 "_delivery_handles", "_link_aware", "_cache_epoch",
                 "_budget_cache", "_active", "_spatial", "_min_detect_floor",
                 "_max_tx_power", "_max_range_cache", "total_transmissions",
                 "total_airtime", "total_candidates", "total_deliveries",
                 "total_culled", "_metrics")

    def __init__(
        self,
        sim: Simulator,
        propagation: Optional[PropagationModel] = None,
        noise_floor_dbm: float = -94.0,
        propagation_delay_enabled: bool = True,
        link_budget_memo: bool = True,
        spatial_index: str = "auto",
        spatial_cell_m: Optional[float] = None,
    ) -> None:
        if spatial_index not in SPATIAL_MODES:
            raise ConfigurationError(
                f"spatial_index must be one of {SPATIAL_MODES}, got {spatial_index!r}")
        if spatial_cell_m is not None and spatial_cell_m <= 0:
            raise ConfigurationError(
                f"spatial_cell_m must be positive, got {spatial_cell_m}")
        self.sim = sim
        self.propagation = propagation or hydra_indoor_propagation()
        if hasattr(self.propagation, "bind"):
            # Link-aware models (e.g. LogNormalShadowing) draw per-link
            # offsets from the simulator's seeded streams.
            self.propagation.bind(sim.random)
        self.noise_floor_dbm = noise_floor_dbm
        self.propagation_delay_enabled = propagation_delay_enabled
        self._phys: List["Phy"] = []
        self._phy_ids: set = set()
        # Pending begin/end-reception handles per registered receiver, so
        # unregister() can cancel in-flight deliveries instead of letting a
        # detached PHY keep receiving.
        self._delivery_handles: Dict[int, List[EventHandle]] = {}
        self._link_aware = hasattr(self.propagation, "path_loss_between")
        self._cache_epoch = getattr(self.propagation, "cache_epoch", None)
        # (id(sender), id(receiver)) -> (epoch, tx_pos, rx_pos, loss, distance)
        self._budget_cache: Optional[Dict[Tuple[int, int], tuple]] = (
            {} if link_budget_memo else None)
        # One transmission per id for O(1) retirement.
        self._active: Dict[int, Transmission] = {}
        # Spatial candidate pruning: the grid index is built lazily on the
        # first broadcast that wants it (so registration order — which fixes
        # candidate order — is complete by then).
        self.spatial_index_mode = spatial_index
        self.spatial_cell_m = spatial_cell_m
        self._spatial: Optional[UniformGridIndex] = None
        # Running min detect floor / max tx power over every PHY ever
        # registered.  Kept conservative on unregister (a stale low floor or
        # high power only widens the pruning range, never narrows it).
        self._min_detect_floor = math.inf
        self._max_tx_power = -math.inf
        # tx power -> conservative max range (None = model can't bound it).
        self._max_range_cache: Dict[float, Optional[float]] = {}
        # statistics
        self.total_transmissions = 0
        self.total_airtime = 0.0
        self.total_candidates = 0
        self.total_deliveries = 0
        self.total_culled = 0
        self._metrics = sim.metrics
        sim.metrics.register_collector(self._collect_metrics)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, phy: "Phy") -> None:
        """Attach a PHY to the medium (idempotent).

        The pruning bounds (min detect floor, max tx power) are snapshots of
        the PHY's config taken here; configure thresholds before registering.
        """
        if id(phy) not in self._phy_ids:
            self._phys.append(phy)
            self._phy_ids.add(id(phy))
            self._delivery_handles[id(phy)] = []
            floor = phy.config.detect_floor_dbm
            if floor < self._min_detect_floor:
                self._min_detect_floor = floor
                self._max_range_cache.clear()
            if phy.config.tx_power_dbm > self._max_tx_power:
                self._max_tx_power = phy.config.tx_power_dbm
            if self._spatial is not None:
                self._spatial.register(phy, self.sim.now)

    def unregister(self, phy: "Phy") -> None:
        """Detach a PHY from the medium.

        Deliveries already scheduled for the PHY are cancelled and any
        reception it has in progress is aborted, so a detached PHY never
        hears the tail of a frame that was in flight when it left.
        """
        phy_id = id(phy)
        if phy_id not in self._phy_ids:
            return
        self._phy_ids.discard(phy_id)
        self._phys.remove(phy)
        for handle in self._delivery_handles.pop(phy_id, ()):
            handle.cancel()
        if self._budget_cache is not None:
            # id() values can be recycled once the PHY is garbage collected;
            # purge its cache rows so a future PHY can never inherit them.
            stale = [key for key in self._budget_cache if phy_id in key]
            for key in stale:
                del self._budget_cache[key]
        if self._spatial is not None:
            # Purge the grid entry too: a later PHY recycling this one's
            # id() must never inherit its cell.
            self._spatial.unregister(phy)
        phy.abort_receptions()

    def phy_position_changed(self, phy: "Phy") -> None:
        """Hook fired by ``Phy.position``'s setter: re-bucket the PHY.

        No-op for PHYs not (yet) registered — the setter also fires during
        ``Phy.__init__``, before registration.
        """
        if self._spatial is not None and id(phy) in self._phy_ids:
            self._spatial.position_changed(phy)

    def phy_mobility_changed(self, phy: "Phy") -> None:
        """Hook fired by ``Phy.set_mobility``: revalidate this PHY per query."""
        if self._spatial is not None and id(phy) in self._phy_ids:
            self._spatial.mobility_changed(phy)

    @property
    def phys(self) -> List["Phy"]:
        """All PHYs currently attached."""
        return list(self._phys)

    @property
    def spatial_index(self) -> Optional[UniformGridIndex]:
        """The grid index, if one has been built (None before first use)."""
        return self._spatial

    # ------------------------------------------------------------------
    # Link budget helpers
    # ------------------------------------------------------------------
    def _link_budget(self, sender: "Phy", receiver: "Phy", when: float) -> tuple:
        """``(path_loss_db, distance_m)`` for one link at ``when``, memoised.

        The cached entry is validated against the propagation epoch and the
        *exact* endpoint positions, so it can only be served when recomputing
        would produce the identical value: stationary PHYs return the same
        position tuple every time (cheap identity compare), mobile PHYs fail
        the equality check and recompute.
        """
        tx_position = sender.position_at(when)
        rx_position = receiver.position_at(when)
        epoch = 0 if self._cache_epoch is None else self._cache_epoch(when)
        cache = self._budget_cache
        if cache is not None:
            key = (id(sender), id(receiver))
            entry = cache.get(key)
            if (entry is not None and entry[0] == epoch
                    and entry[1] == tx_position and entry[2] == rx_position):
                return entry[3], entry[4]
        if self._link_aware:
            loss = self.propagation.path_loss_between(
                sender.name, receiver.name, tx_position, rx_position, when)
        else:
            loss = self.propagation.path_loss_db(tx_position, rx_position)
        distance = distance_between(tx_position, rx_position)
        if cache is not None:
            cache[key] = (epoch, tx_position, rx_position, loss, distance)
        return loss, distance

    def received_power_dbm(self, sender: "Phy", receiver: "Phy", tx_power_dbm: float,
                           time: Optional[float] = None) -> float:
        """Received power at ``receiver`` for a transmission by ``sender``.

        Evaluated against exact positions at ``time`` (default: now, i.e. the
        start of the transmission being budgeted).
        """
        when = self.sim.now if time is None else time
        loss, _ = self._link_budget(sender, receiver, when)
        return tx_power_dbm - loss

    def link_snr_db(self, sender: "Phy", receiver: "Phy",
                    tx_power_dbm: Optional[float] = None) -> float:
        """Nominal SNR of the ``sender`` → ``receiver`` link (no interference)."""
        power = sender.config.tx_power_dbm if tx_power_dbm is None else tx_power_dbm
        return self.received_power_dbm(sender, receiver, power) - self.noise_floor_dbm

    def propagation_delay(self, sender: "Phy", receiver: "Phy") -> float:
        """One-way propagation delay between two PHYs (at their positions now)."""
        if not self.propagation_delay_enabled:
            return 0.0
        _, distance = self._link_budget(sender, receiver, self.sim.now)
        return distance / SPEED_OF_LIGHT

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def broadcast(self, sender: "Phy", frame: PhyFrame, duration: float,
                  power_dbm: float) -> Transmission:
        """Deliver ``frame`` from ``sender`` to every other registered PHY."""
        if id(sender) not in self._phy_ids:
            raise ConfigurationError("transmitting PHY is not registered with the channel")
        if duration <= 0:
            raise ConfigurationError(f"transmission duration must be positive, got {duration}")
        sim = self.sim
        now = sim.now
        self._prune_active(now)
        transmission = Transmission(
            sender=sender,
            frame=frame,
            start_time=now,
            duration=duration,
            power_dbm=power_dbm,
        )
        self._active[id(transmission)] = transmission
        self.total_transmissions += 1
        self.total_airtime += duration
        metrics = self._metrics
        if metrics.enabled:
            metrics.inc("channel.transmissions", node=sender.name,
                        kind=frame.kind.value)
            metrics.observe("channel.airtime_ms", duration * 1e3,
                            node=sender.name)

        # Candidate enumeration: either the full registration list or the
        # grid index's superset of in-range PHYs (also in registration
        # order).  The two enumerations schedule the *identical* event set,
        # because every receiver the grid prunes is provably below its
        # detect floor and the loop below culls exactly those receivers in
        # every mode — so the policy knob changes speed, never bytes.
        mode = self.spatial_index_mode
        if mode == "auto":
            use_grid = len(self._phys) > AUTO_SPATIAL_THRESHOLD
        else:
            use_grid = mode == "grid"
        receivers: List["Phy"] = self._phys
        if use_grid:
            reach = self._max_range_for(power_dbm)
            if reach is not None:
                spatial = self._ensure_spatial()
                if spatial is not None:
                    receivers = spatial.candidates(
                        sender.position_at(now), reach, now)

        # Direct scheduler pushes: this loop schedules two events per
        # receiver per frame, and the Simulator.schedule wrapper (which only
        # adds a negative-delay check — delays here are >= 0 by construction)
        # was a measurable slice of the event budget.
        push = sim._scheduler.push
        priority = Simulator.PRIORITY_PHY
        delay_enabled = self.propagation_delay_enabled
        delivery_handles = self._delivery_handles
        considered = 0
        culled = 0
        for receiver in receivers:
            if receiver is sender:
                continue
            considered += 1
            loss, distance = self._link_budget(sender, receiver, now)
            rx_power = power_dbm - loss
            config = receiver.config
            floor = config.carrier_sense_threshold_dbm
            if config.reception_threshold_dbm < floor:
                floor = config.reception_threshold_dbm
            if rx_power < floor:
                # Below the receiver's detect floor the frame would have no
                # observable effect (Phy.begin_reception ignores it), so the
                # two events are never scheduled.  Applied uniformly in scan
                # and grid modes — this cull, not the index, is what defines
                # who hears a frame.
                culled += 1
                continue
            delay = distance / SPEED_OF_LIGHT if delay_enabled else 0.0
            handles = delivery_handles[id(receiver)]
            handles.append(push(now + delay, receiver.begin_reception,
                                (transmission, rx_power), priority))
            handles.append(push(now + delay + duration, receiver.end_reception,
                                (transmission,), priority))
            if len(handles) > _HANDLE_PRUNE_THRESHOLD:
                handles[:] = [h for h in handles if h.active]
        self.total_candidates += considered
        self.total_culled += culled
        self.total_deliveries += considered - culled
        return transmission

    def _max_range_for(self, power_dbm: float) -> Optional[float]:
        """Conservative pruning radius for a transmission at ``power_dbm``.

        ``None`` when the propagation model cannot bound its own reach — the
        caller then falls back to the exhaustive scan.  Cached per tx power;
        the cache is invalidated whenever a newly registered PHY lowers the
        fleet's min detect floor.
        """
        cache = self._max_range_cache
        value = cache.get(power_dbm, _UNSET)
        if value is _UNSET:
            bound = getattr(self.propagation, "max_range_m", None)
            value = (None if bound is None
                     else bound(power_dbm - self._min_detect_floor))
            cache[power_dbm] = value
        return value

    def _ensure_spatial(self) -> Optional[UniformGridIndex]:
        """Build the grid index on first use (None if the model is unbounded).

        The cell size defaults to the fleet-wide max range (so a query scans
        at most a 3×3 block of cells); correctness is independent of the
        choice because ``candidates`` derives the cell span from the exact
        query radius.  PHYs are inserted in registration order, which fixes
        candidate ordering forever after.
        """
        spatial = self._spatial
        if spatial is None:
            cell = self.spatial_cell_m
            if cell is None:
                reach = self._max_range_for(self._max_tx_power)
                if reach is None:
                    return None
                cell = max(reach, 1.0)
            spatial = UniformGridIndex(cell)
            now = self.sim.now
            for phy in self._phys:
                spatial.register(phy, now)
            self._spatial = spatial
        return spatial

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: medium-wide totals as gauges."""
        registry.set_gauge("channel.total_transmissions", self.total_transmissions)
        registry.set_gauge("channel.total_airtime_s", self.total_airtime)
        registry.set_gauge("channel.registered_phys", len(self._phys))
        # candidates_considered / (transmissions * registered_phys) is the
        # sub-O(N) proof: with the grid index it collapses to the mean
        # neighbourhood size instead of N.
        registry.set_gauge("channel.candidates_considered", self.total_candidates)
        registry.set_gauge("channel.deliveries_scheduled", self.total_deliveries)
        registry.set_gauge("channel.culled_below_floor", self.total_culled)
        registry.set_gauge(
            "channel.spatial_cells",
            0 if self._spatial is None else self._spatial.cell_count)

    def _prune_active(self, now: float) -> None:
        """Retire transmissions whose airtime has elapsed.

        Retirement is lazy (on access) rather than event-driven: a dedicated
        retire event per frame bought nothing — no protocol state depends on
        it — and cost a full push/pop cycle per transmission.
        """
        active = self._active
        if active:
            expired = [key for key, t in active.items()
                       if t.start_time + t.duration <= now]
            for key in expired:
                del active[key]

    @property
    def active_transmissions(self) -> List[Transmission]:
        """Transmissions currently on the air."""
        self._prune_active(self.sim.now)
        return list(self._active.values())

    @property
    def busy(self) -> bool:
        """True while any transmission is on the air."""
        self._prune_active(self.sim.now)
        return bool(self._active)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WirelessChannel phys={len(self._phys)} active={len(self._active)}>"
