"""The shared wireless medium.

:class:`WirelessChannel` connects every :class:`~repro.phy.device.Phy` in a
scenario.  When a PHY transmits, the channel computes the received power at
every other PHY from the propagation model and delivers *begin-reception* and
*end-reception* events after the (negligible but modelled) propagation delay.
Collision and capture decisions are the receiving PHY's job; the channel only
reports who hears what, and how loudly.

Positions are **time-varying**: every link-budget computation asks each PHY
for ``position_at(now)`` — the exact analytic position under its mobility
model, evaluated at transmission start — instead of reading a cached static
coordinate.  For stationary PHYs (the paper's entire evaluation) this
degenerates to the static position, bit for bit.  Link-aware propagation
models (per-link shadowing) are consulted through ``path_loss_between``; see
:mod:`repro.channel.propagation`.

Because the budget of a link is a pure function of (endpoint identities,
endpoint positions, propagation epoch), the channel memoises it per link and
revalidates the cached entry against the exact positions and the model's
``cache_epoch`` on every use: stationary links hit the cache on every frame,
while a link whose endpoint moved (or whose shadowing epoch rolled over)
recomputes — so results are bit-for-bit identical with the memo on or off
(``link_budget_memo=False`` disables it for A/B verification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.channel.propagation import PropagationModel, distance_between, hydra_indoor_propagation
from repro.errors import ConfigurationError
from repro.phy.frame import PhyFrame
from repro.sim.events import EventHandle
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.phy.device import Phy

#: Speed of light in metres per second (propagation delay).
SPEED_OF_LIGHT = 299_792_458.0

#: Prune a receiver's delivery-handle list once it grows past this many
#: entries (most are long since fired; pruning keeps unregister O(in-flight)).
_HANDLE_PRUNE_THRESHOLD = 256


@dataclass(slots=True)
class Transmission:
    """One frame in flight on the medium."""

    sender: "Phy"
    frame: PhyFrame
    start_time: float
    duration: float
    power_dbm: float

    @property
    def end_time(self) -> float:
        """Simulated time at which the transmission ends."""
        return self.start_time + self.duration


class WirelessChannel:
    """Single shared broadcast medium connecting all registered PHYs."""

    __slots__ = ("sim", "propagation", "noise_floor_dbm",
                 "propagation_delay_enabled", "_phys", "_phy_ids",
                 "_delivery_handles", "_link_aware", "_cache_epoch",
                 "_budget_cache", "_active", "total_transmissions",
                 "total_airtime", "_metrics")

    def __init__(
        self,
        sim: Simulator,
        propagation: Optional[PropagationModel] = None,
        noise_floor_dbm: float = -94.0,
        propagation_delay_enabled: bool = True,
        link_budget_memo: bool = True,
    ) -> None:
        self.sim = sim
        self.propagation = propagation or hydra_indoor_propagation()
        if hasattr(self.propagation, "bind"):
            # Link-aware models (e.g. LogNormalShadowing) draw per-link
            # offsets from the simulator's seeded streams.
            self.propagation.bind(sim.random)
        self.noise_floor_dbm = noise_floor_dbm
        self.propagation_delay_enabled = propagation_delay_enabled
        self._phys: List["Phy"] = []
        self._phy_ids: set = set()
        # Pending begin/end-reception handles per registered receiver, so
        # unregister() can cancel in-flight deliveries instead of letting a
        # detached PHY keep receiving.
        self._delivery_handles: Dict[int, List[EventHandle]] = {}
        self._link_aware = hasattr(self.propagation, "path_loss_between")
        self._cache_epoch = getattr(self.propagation, "cache_epoch", None)
        # (id(sender), id(receiver)) -> (epoch, tx_pos, rx_pos, loss, distance)
        self._budget_cache: Optional[Dict[Tuple[int, int], tuple]] = (
            {} if link_budget_memo else None)
        # One transmission per id for O(1) retirement.
        self._active: Dict[int, Transmission] = {}
        # statistics
        self.total_transmissions = 0
        self.total_airtime = 0.0
        self._metrics = sim.metrics
        sim.metrics.register_collector(self._collect_metrics)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, phy: "Phy") -> None:
        """Attach a PHY to the medium (idempotent)."""
        if id(phy) not in self._phy_ids:
            self._phys.append(phy)
            self._phy_ids.add(id(phy))
            self._delivery_handles[id(phy)] = []

    def unregister(self, phy: "Phy") -> None:
        """Detach a PHY from the medium.

        Deliveries already scheduled for the PHY are cancelled and any
        reception it has in progress is aborted, so a detached PHY never
        hears the tail of a frame that was in flight when it left.
        """
        phy_id = id(phy)
        if phy_id not in self._phy_ids:
            return
        self._phy_ids.discard(phy_id)
        self._phys.remove(phy)
        for handle in self._delivery_handles.pop(phy_id, ()):
            handle.cancel()
        if self._budget_cache is not None:
            # id() values can be recycled once the PHY is garbage collected;
            # purge its cache rows so a future PHY can never inherit them.
            stale = [key for key in self._budget_cache if phy_id in key]
            for key in stale:
                del self._budget_cache[key]
        phy.abort_receptions()

    @property
    def phys(self) -> List["Phy"]:
        """All PHYs currently attached."""
        return list(self._phys)

    # ------------------------------------------------------------------
    # Link budget helpers
    # ------------------------------------------------------------------
    def _link_budget(self, sender: "Phy", receiver: "Phy", when: float) -> tuple:
        """``(path_loss_db, distance_m)`` for one link at ``when``, memoised.

        The cached entry is validated against the propagation epoch and the
        *exact* endpoint positions, so it can only be served when recomputing
        would produce the identical value: stationary PHYs return the same
        position tuple every time (cheap identity compare), mobile PHYs fail
        the equality check and recompute.
        """
        tx_position = sender.position_at(when)
        rx_position = receiver.position_at(when)
        epoch = 0 if self._cache_epoch is None else self._cache_epoch(when)
        cache = self._budget_cache
        if cache is not None:
            key = (id(sender), id(receiver))
            entry = cache.get(key)
            if (entry is not None and entry[0] == epoch
                    and entry[1] == tx_position and entry[2] == rx_position):
                return entry[3], entry[4]
        if self._link_aware:
            loss = self.propagation.path_loss_between(
                sender.name, receiver.name, tx_position, rx_position, when)
        else:
            loss = self.propagation.path_loss_db(tx_position, rx_position)
        distance = distance_between(tx_position, rx_position)
        if cache is not None:
            cache[key] = (epoch, tx_position, rx_position, loss, distance)
        return loss, distance

    def received_power_dbm(self, sender: "Phy", receiver: "Phy", tx_power_dbm: float,
                           time: Optional[float] = None) -> float:
        """Received power at ``receiver`` for a transmission by ``sender``.

        Evaluated against exact positions at ``time`` (default: now, i.e. the
        start of the transmission being budgeted).
        """
        when = self.sim.now if time is None else time
        loss, _ = self._link_budget(sender, receiver, when)
        return tx_power_dbm - loss

    def link_snr_db(self, sender: "Phy", receiver: "Phy",
                    tx_power_dbm: Optional[float] = None) -> float:
        """Nominal SNR of the ``sender`` → ``receiver`` link (no interference)."""
        power = sender.config.tx_power_dbm if tx_power_dbm is None else tx_power_dbm
        return self.received_power_dbm(sender, receiver, power) - self.noise_floor_dbm

    def propagation_delay(self, sender: "Phy", receiver: "Phy") -> float:
        """One-way propagation delay between two PHYs (at their positions now)."""
        if not self.propagation_delay_enabled:
            return 0.0
        _, distance = self._link_budget(sender, receiver, self.sim.now)
        return distance / SPEED_OF_LIGHT

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def broadcast(self, sender: "Phy", frame: PhyFrame, duration: float,
                  power_dbm: float) -> Transmission:
        """Deliver ``frame`` from ``sender`` to every other registered PHY."""
        if id(sender) not in self._phy_ids:
            raise ConfigurationError("transmitting PHY is not registered with the channel")
        if duration <= 0:
            raise ConfigurationError(f"transmission duration must be positive, got {duration}")
        sim = self.sim
        now = sim.now
        self._prune_active(now)
        transmission = Transmission(
            sender=sender,
            frame=frame,
            start_time=now,
            duration=duration,
            power_dbm=power_dbm,
        )
        self._active[id(transmission)] = transmission
        self.total_transmissions += 1
        self.total_airtime += duration
        metrics = self._metrics
        if metrics.enabled:
            metrics.inc("channel.transmissions", node=sender.name,
                        kind=frame.kind.value)
            metrics.observe("channel.airtime_ms", duration * 1e3,
                            node=sender.name)

        # Direct scheduler pushes: this loop schedules two events per
        # receiver per frame, and the Simulator.schedule wrapper (which only
        # adds a negative-delay check — delays here are >= 0 by construction)
        # was a measurable slice of the event budget.
        push = sim._scheduler.push
        priority = Simulator.PRIORITY_PHY
        delay_enabled = self.propagation_delay_enabled
        delivery_handles = self._delivery_handles
        for receiver in self._phys:
            if receiver is sender:
                continue
            loss, distance = self._link_budget(sender, receiver, now)
            rx_power = power_dbm - loss
            delay = distance / SPEED_OF_LIGHT if delay_enabled else 0.0
            handles = delivery_handles[id(receiver)]
            handles.append(push(now + delay, receiver.begin_reception,
                                (transmission, rx_power), priority))
            handles.append(push(now + delay + duration, receiver.end_reception,
                                (transmission,), priority))
            if len(handles) > _HANDLE_PRUNE_THRESHOLD:
                handles[:] = [h for h in handles if h.active]
        return transmission

    def _collect_metrics(self, registry) -> None:
        """Snapshot-time collector: medium-wide totals as gauges."""
        registry.set_gauge("channel.total_transmissions", self.total_transmissions)
        registry.set_gauge("channel.total_airtime_s", self.total_airtime)
        registry.set_gauge("channel.registered_phys", len(self._phys))

    def _prune_active(self, now: float) -> None:
        """Retire transmissions whose airtime has elapsed.

        Retirement is lazy (on access) rather than event-driven: a dedicated
        retire event per frame bought nothing — no protocol state depends on
        it — and cost a full push/pop cycle per transmission.
        """
        active = self._active
        if active:
            expired = [key for key, t in active.items()
                       if t.start_time + t.duration <= now]
            for key in expired:
                del active[key]

    @property
    def active_transmissions(self) -> List[Transmission]:
        """Transmissions currently on the air."""
        self._prune_active(self.sim.now)
        return list(self._active.values())

    @property
    def busy(self) -> bool:
        """True while any transmission is on the air."""
        self._prune_active(self.sim.now)
        return bool(self._active)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WirelessChannel phys={len(self._phys)} active={len(self._active)}>"
