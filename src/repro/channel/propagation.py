"""Radio propagation (path loss) models.

The experiments in the paper run at a fixed 25 dB SNR indoors with stationary
nodes, so the seed models capture large-scale path loss only; small-scale
effects enter the reproduction through the PHY error model (noise term +
channel-estimate aging) rather than per-packet fading draws.

For the mobile scenarios (which go beyond the paper's setup),
:class:`LogNormalShadowing` layers a deterministic per-link shadowing offset
on top of any base model so that node motion changes *loss*, not merely
distance.  Models that need link identity implement the extended
:class:`LinkAwarePropagationModel` protocol, which the channel prefers when
present.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Tuple

from repro.errors import ConfigurationError
from repro.sim.randomness import RandomStreams

Position = Tuple[float, float]


def distance_between(a: Position, b: Position) -> float:
    """Euclidean distance between two 2-D positions in metres."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


class PropagationModel(Protocol):
    """Computes path loss between two positions."""

    def path_loss_db(self, tx_position: Position, rx_position: Position) -> float:
        """Path loss in dB between transmitter and receiver."""


class LinkAwarePropagationModel(Protocol):
    """A propagation model whose loss depends on *which* link is evaluated.

    The channel calls this extended form (when available) with the endpoint
    identities and the evaluation time, which is what per-link shadowing and
    time-varying channels need; pure-distance models only ever see positions.
    """

    def path_loss_between(self, tx_key: str, rx_key: str, tx_position: Position,
                          rx_position: Position, time: float) -> float:
        """Path loss in dB on the ``tx_key`` → ``rx_key`` link at ``time``."""


class RangeBoundedPropagationModel(Protocol):
    """A propagation model that can bound its own reach.

    ``max_range_m(budget_db)`` answers: beyond what distance is the path loss
    *guaranteed* to exceed ``budget_db``, for every link and at every time?
    The spatial index (:mod:`repro.channel.spatial`) uses this bound to prune
    receivers, so it must be conservative — overestimating the range costs
    performance, underestimating it would change which nodes hear a frame.
    Models that cannot give such a bound simply omit the method and the
    channel falls back to scanning every registered PHY.
    """

    def max_range_m(self, budget_db: float) -> float:
        """Conservative distance beyond which loss always exceeds the budget."""


@dataclass(slots=True)
class FreeSpacePathLoss:
    """Free-space (Friis) path loss.

    ``loss = 20 log10(d) + 20 log10(f) - 147.55`` with ``d`` in metres and
    ``f`` in Hz.
    """

    frequency_hz: float = 2.45e9
    minimum_distance: float = 0.1

    def path_loss_db(self, tx_position: Position, rx_position: Position) -> float:
        distance = max(distance_between(tx_position, rx_position), self.minimum_distance)
        return (
            20.0 * math.log10(distance)
            + 20.0 * math.log10(self.frequency_hz)
            - 147.55
        )

    def max_range_m(self, budget_db: float) -> float:
        """Distance beyond which free-space loss always exceeds ``budget_db``.

        Friis loss is monotonically increasing in distance, so inverting it at
        the budget gives an exact cutoff; below the clamp distance the loss is
        constant, so a budget smaller than that floor reaches nobody.
        """
        floor_db = self.path_loss_db((0.0, 0.0), (0.0, 0.0))
        if budget_db < floor_db:
            return 0.0
        exponent = (budget_db - 20.0 * math.log10(self.frequency_hz) + 147.55) / 20.0
        return max(10.0 ** exponent, self.minimum_distance)


@dataclass(slots=True)
class LogDistancePathLoss:
    """Log-distance path loss: ``PL(d) = PL(d0) + 10 n log10(d / d0)``."""

    reference_loss_db: float = 66.0
    path_loss_exponent: float = 3.0
    reference_distance: float = 1.0
    minimum_distance: float = 0.1

    def __post_init__(self) -> None:
        if self.reference_distance <= 0:
            raise ConfigurationError("reference_distance must be positive")
        if self.path_loss_exponent <= 0:
            raise ConfigurationError("path_loss_exponent must be positive")

    def path_loss_db(self, tx_position: Position, rx_position: Position) -> float:
        distance = max(distance_between(tx_position, rx_position), self.minimum_distance)
        return self.reference_loss_db + 10.0 * self.path_loss_exponent * math.log10(
            distance / self.reference_distance
        )

    def max_range_m(self, budget_db: float) -> float:
        """Distance beyond which log-distance loss always exceeds ``budget_db``.

        The loss is monotonically increasing in distance, so the inversion at
        the budget is exact; below the clamp distance the loss is constant, so
        a budget under that floor reaches nobody.
        """
        floor_db = self.path_loss_db((0.0, 0.0), (0.0, 0.0))
        if budget_db < floor_db:
            return 0.0
        exponent = (budget_db - self.reference_loss_db) / (10.0 * self.path_loss_exponent)
        return max(self.reference_distance * 10.0 ** exponent, self.minimum_distance)


class LogNormalShadowing:
    """Per-link log-normal shadowing on top of a base path-loss model.

    Each (transmitter, receiver) link gets a Gaussian-in-dB offset with
    standard deviation ``sigma_db``, drawn from a stream derived from the
    simulator's root seed and the link's identity — so offsets are
    deterministic per seed, independent of the order in which links are first
    evaluated, and reproducible across processes.  With ``symmetric=True``
    (the default) both directions of a link share one draw, as physical
    shadowing is reciprocal.

    ``coherence_time`` makes the channel time-varying even for stationary
    endpoints: the offset is redrawn once per coherence epoch
    (``floor(t / coherence_time)``), each epoch's draw again coming from its
    own derived stream.  ``None`` keeps one static draw per link.

    The channel binds the model to the simulator's random streams at
    construction (see :class:`~repro.channel.medium.WirelessChannel`); using
    the plain position-only ``path_loss_db`` interface returns the base loss
    without shadowing, because link identity is unknown there.

    Shadowing offsets are clamped to ``±max_sigma_factor * sigma_db``.  The
    truncation makes the model *range-bounded*: ``max_range_m`` can promise
    that no link's loss is ever more than that margin below the base loss, so
    the spatial index may prune receivers beyond the widened cutoff without
    ever excluding one that could hear a frame.  At the default factor of 6
    a Gaussian draw lands in the clamped tail with probability ~2e-9, so the
    truncation is unobservable in practice — but the guarantee it buys is
    absolute, which is what the byte-determinism contract needs.
    """

    __slots__ = ("base", "sigma_db", "coherence_time", "symmetric",
                 "max_sigma_factor", "_streams", "_offsets")

    def __init__(self, base: Optional[PropagationModel] = None, sigma_db: float = 6.0,
                 coherence_time: Optional[float] = None, symmetric: bool = True,
                 max_sigma_factor: float = 6.0) -> None:
        if sigma_db < 0:
            raise ConfigurationError("sigma_db must be non-negative")
        if coherence_time is not None and coherence_time <= 0:
            raise ConfigurationError("coherence_time must be positive")
        if max_sigma_factor <= 0:
            raise ConfigurationError("max_sigma_factor must be positive")
        self.base = base or hydra_indoor_propagation()
        self.sigma_db = sigma_db
        self.coherence_time = coherence_time
        self.symmetric = symmetric
        self.max_sigma_factor = max_sigma_factor
        self._streams: Optional[RandomStreams] = None
        self._offsets: Dict[Tuple[str, str, int], float] = {}

    def bind(self, streams: RandomStreams) -> None:
        """Attach the simulator's random streams (the channel calls this).

        Rebinding (reusing one model instance across simulators) drops the
        cached offsets: draws must come from the *current* simulator's seed,
        never from whatever run happened to evaluate a link first.
        """
        self._streams = streams.fork("propagation.shadowing")
        self._offsets.clear()

    def cache_epoch(self, time: float) -> int:
        """Validity token for channel-side link-budget memoisation.

        Within one epoch, ``path_loss_between`` is a pure function of the
        endpoint positions, so the channel may serve a cached budget as long
        as both the epoch and the positions are unchanged.  Each coherence
        rollover yields a new token, forcing recomputation (and a fresh
        shadowing draw).
        """
        if self.coherence_time is None:
            return 0
        return int(time // self.coherence_time)

    def _link_key(self, tx_key: str, rx_key: str) -> Tuple[str, str]:
        if self.symmetric and rx_key < tx_key:
            return (rx_key, tx_key)
        return (tx_key, rx_key)

    def shadowing_db(self, tx_key: str, rx_key: str, time: float = 0.0) -> float:
        """The (cached) shadowing offset for one link at ``time``."""
        if self._streams is None:
            raise ConfigurationError(
                "LogNormalShadowing is not bound to a simulator; pass it to a "
                "WirelessChannel (or call bind()) before evaluating links")
        if self.sigma_db == 0.0:
            return 0.0
        epoch = 0 if self.coherence_time is None else int(time // self.coherence_time)
        a, b = self._link_key(tx_key, rx_key)
        cache_key = (a, b, epoch)
        if cache_key not in self._offsets:
            stream = self._streams.stream(f"link.{a}|{b}#epoch{epoch}")
            bound = self.max_sigma_factor * self.sigma_db
            draw = stream.gauss(0.0, self.sigma_db)
            self._offsets[cache_key] = min(max(draw, -bound), bound)
        return self._offsets[cache_key]

    def path_loss_between(self, tx_key: str, rx_key: str, tx_position: Position,
                          rx_position: Position, time: float) -> float:
        """Base loss plus the link's shadowing offset."""
        return (self.base.path_loss_db(tx_position, rx_position)
                + self.shadowing_db(tx_key, rx_key, time))

    def path_loss_db(self, tx_position: Position, rx_position: Position) -> float:
        """Position-only fallback: base loss without shadowing."""
        return self.base.path_loss_db(tx_position, rx_position)

    def max_range_m(self, budget_db: float) -> Optional[float]:
        """Conservative reach bound: the base model's, widened by the clamp.

        A link's loss is at least ``base - max_sigma_factor * sigma`` (draws
        are clamped, see the class docstring), so extending the budget by that
        margin before asking the base model yields a distance beyond which
        *no* shadowing draw can bring a frame above the detect floor.  Returns
        ``None`` when the base model cannot bound its own range.
        """
        base_bound = getattr(self.base, "max_range_m", None)
        if base_bound is None:
            return None
        return base_bound(budget_db + self.max_sigma_factor * self.sigma_db)


def hydra_indoor_propagation() -> LogDistancePathLoss:
    """Propagation constants for the paper's indoor testbed.

    With the Hydra transmit power of 7.7 mW (~8.9 dBm), a 1 MHz noise floor of
    about -94 dBm and nodes spaced ~2.5 m apart, these constants yield close
    to the 25 dB SNR the authors report (Section 5), while keeping every node
    in every other node's carrier-sense range.
    """
    return LogDistancePathLoss(reference_loss_db=66.0, path_loss_exponent=3.0)
