"""Radio propagation (path loss) models.

Only large-scale path loss is modelled: the experiments in the paper run at a
fixed 25 dB SNR indoors with stationary nodes, and small-scale effects enter
the reproduction through the PHY error model (noise term + channel-estimate
aging) rather than through per-packet fading draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Tuple

from repro.errors import ConfigurationError

Position = Tuple[float, float]


def distance_between(a: Position, b: Position) -> float:
    """Euclidean distance between two 2-D positions in metres."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


class PropagationModel(Protocol):
    """Computes path loss between two positions."""

    def path_loss_db(self, tx_position: Position, rx_position: Position) -> float:
        """Path loss in dB between transmitter and receiver."""


@dataclass
class FreeSpacePathLoss:
    """Free-space (Friis) path loss.

    ``loss = 20 log10(d) + 20 log10(f) - 147.55`` with ``d`` in metres and
    ``f`` in Hz.
    """

    frequency_hz: float = 2.45e9
    minimum_distance: float = 0.1

    def path_loss_db(self, tx_position: Position, rx_position: Position) -> float:
        distance = max(distance_between(tx_position, rx_position), self.minimum_distance)
        return (
            20.0 * math.log10(distance)
            + 20.0 * math.log10(self.frequency_hz)
            - 147.55
        )


@dataclass
class LogDistancePathLoss:
    """Log-distance path loss: ``PL(d) = PL(d0) + 10 n log10(d / d0)``."""

    reference_loss_db: float = 66.0
    path_loss_exponent: float = 3.0
    reference_distance: float = 1.0
    minimum_distance: float = 0.1

    def __post_init__(self) -> None:
        if self.reference_distance <= 0:
            raise ConfigurationError("reference_distance must be positive")
        if self.path_loss_exponent <= 0:
            raise ConfigurationError("path_loss_exponent must be positive")

    def path_loss_db(self, tx_position: Position, rx_position: Position) -> float:
        distance = max(distance_between(tx_position, rx_position), self.minimum_distance)
        return self.reference_loss_db + 10.0 * self.path_loss_exponent * math.log10(
            distance / self.reference_distance
        )


def hydra_indoor_propagation() -> LogDistancePathLoss:
    """Propagation constants for the paper's indoor testbed.

    With the Hydra transmit power of 7.7 mW (~8.9 dBm), a 1 MHz noise floor of
    about -94 dBm and nodes spaced ~2.5 m apart, these constants yield close
    to the 25 dB SNR the authors report (Section 5), while keeping every node
    in every other node's carrier-sense range.
    """
    return LogDistancePathLoss(reference_loss_db=66.0, path_loss_exponent=3.0)
