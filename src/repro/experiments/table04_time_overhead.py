"""Table 4: relay-node time overhead as a function of the data rate.

The overhead (MAC/PHY header transmission time, control frames, backoff,
DIFS and SIFS) grows from ~22 % to ~52 % of the busy time as the rate rises
from 0.65 to 2.6 Mbps when no aggregation is used, and every aggregation
variant cuts it by a factor of 2.5–4x.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.apps.file_transfer import PAPER_FILE_BYTES
from repro.core.policies import (
    broadcast_aggregation,
    delayed_broadcast_aggregation,
    no_aggregation,
    unicast_aggregation,
)
from repro.experiments.scenarios import run_tcp_transfer
from repro.stats.collect import relay_detail
from repro.stats.results import ExperimentResult, TableResult

DEFAULT_RATES_MBPS = (0.65, 1.3, 1.95, 2.6)
VARIANT_ORDER = ("NA", "UA", "BA", "DBA")


def run(rates_mbps: Sequence[float] = DEFAULT_RATES_MBPS, hops: int = 2,
        file_bytes: int = PAPER_FILE_BYTES, seed: int = 1) -> ExperimentResult:
    """Relay-node time overhead (%) for each variant at each rate."""
    result = ExperimentResult(
        experiment_id="table4",
        description="2-hop relay node time overhead (%) vs data rate",
    )
    table = result.add_table(TableResult(title="rate (Mbps)", columns=list(VARIANT_ORDER)))

    policies = {
        "NA": (no_aggregation(), None),
        "UA": (unicast_aggregation(), None),
        "BA": (broadcast_aggregation(), None),
        "DBA": (broadcast_aggregation(), delayed_broadcast_aggregation()),
    }
    for rate in rates_mbps:
        row: Dict[str, float] = {}
        for name in VARIANT_ORDER:
            policy, relay_policy = policies[name]
            outcome = run_tcp_transfer(policy, hops=hops, rate_mbps=rate,
                                       file_bytes=file_bytes, seed=seed,
                                       relay_policy=relay_policy)
            detail = relay_detail(outcome.network, relay_indices=[2])
            row[name] = 100.0 * detail["time_overhead"]
            result.add_metric(f"time_overhead_{name}_{rate}", row[name])
        table.add_row(f"{rate}", [row[name] for name in VARIANT_ORDER])
    result.note("Paper (Table 4): NA overhead rises 22.4% -> 52.1% from 0.65 to 2.6 Mbps; "
                "UA/BA/DBA cut it to 6.7-24.8 / 5.8-19.9 / 5.2-17.7 %.")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "table04"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"rates_mbps": (0.65, 1.3), "file_bytes": 40_000}
