"""Routing control overhead vs HELLO/advertisement interval.

The dynamic control plane (:mod:`repro.net.discovery` +
:mod:`repro.net.dynamic_routing`) buys route repair with broadcast beacons
that contend for the same sub-megabit channel as the data they protect.
This experiment prices that trade on a static 4-node chain (8 m spacing, so
the ends are 3 hops apart and every HELLO/advertisement crosses a real
multi-hop mesh): sweep the HELLO interval — the advertisement interval
scales with it at a fixed ratio — and measure both sides of the bargain.

Reported per policy (NA / BA) over the swept HELLO interval:

* ``<policy> ctrl frac`` — control-plane share of all transmitted MAC
  payload bytes (``mac.stats.routing_bytes_sent`` over
  ``payload_bytes_sent`` summed across nodes);
* ``<policy> udp Mbps`` — goodput of an end-to-end UDP CBR flow under that
  beacon load;
* ``<policy> ctrl/s`` — absolute control-plane transmissions per second
  (HELLO + update subframes), the figure to check against the interval.

Broadcast aggregation makes the control plane nearly free at short
intervals: beacons ride inside data frames instead of paying their own
contention, which is precisely the Section 6.3 flooding argument replayed
with a real routing protocol.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.apps.cbr import CbrSource, UdpSink
from repro.core.policies import (
    AggregationPolicy,
    broadcast_aggregation,
    no_aggregation,
)
from repro.errors import ExperimentError
from repro.net.discovery import HelloConfig
from repro.net.dynamic_routing import DsdvConfig
from repro.sim.simulator import Simulator
from repro.stats.results import ExperimentResult, Series
from repro.topology.mobile import MobileScenario

DEFAULT_HELLO_INTERVALS_S = (0.25, 0.5, 1.0, 2.0)

#: Chain spacing: inside the ~12.5 m decodability limit for adjacent nodes,
#: far outside it end to end.
CHAIN_SPACING_M = 8.0


def _run_once(policy: AggregationPolicy, hello_interval: float,
              advertise_ratio: float, node_count: int, cbr_interval: float,
              cbr_payload_bytes: int, warmup: float, duration: float,
              rate_mbps: float, seed: int) -> Tuple[float, float, float]:
    """One chain run; returns (ctrl fraction, UDP goodput Mbps, ctrl tx/s)."""
    sim = Simulator(seed=seed)
    config = DsdvConfig(
        hello=HelloConfig(hello_interval=hello_interval),
        advertise_interval=hello_interval * advertise_ratio)
    scenario = MobileScenario(sim, policy=policy, unicast_rate_mbps=rate_mbps,
                              stop_time=duration, routing="dsdv",
                              routing_config=config)
    for i in range(node_count):
        scenario.add_node((i * CHAIN_SPACING_M, 0.0))

    network = scenario.network
    sink = UdpSink(network.node(node_count))
    sink.snapshot_at(warmup)
    source = CbrSource(network.node(1), network.node(node_count).ip,
                       interval=cbr_interval, payload_bytes=cbr_payload_bytes)
    source.start(warmup)
    sim.run(until=duration)

    payload = sum(node.mac_stats.payload_bytes_sent for node in network.nodes)
    control_bytes = sum(node.mac_stats.routing_bytes_sent for node in network.nodes)
    control_subframes = sum(node.mac_stats.routing_subframes_sent
                            for node in network.nodes)
    fraction = control_bytes / payload if payload else 0.0
    goodput = sink.throughput_mbps(measurement_start=warmup,
                                   measurement_end=duration)
    return fraction, goodput, control_subframes / duration


def run(hello_intervals_s: Sequence[float] = DEFAULT_HELLO_INTERVALS_S,
        advertise_ratio: float = 3.0, node_count: int = 4,
        cbr_interval: float = 0.05, cbr_payload_bytes: int = 500,
        warmup: float = 3.0, duration: float = 15.0, rate_mbps: float = 0.65,
        include_no_aggregation: bool = True, seed: int = 1) -> ExperimentResult:
    """Sweep the HELLO interval; report overhead and goodput per policy."""
    if any(interval <= 0 for interval in hello_intervals_s):
        raise ExperimentError("HELLO intervals must be positive")
    if advertise_ratio < 1:
        raise ExperimentError("advertisements cannot outpace HELLOs")
    if node_count < 2:
        raise ExperimentError("rt01 needs a multi-hop chain")
    if warmup >= duration:
        raise ExperimentError("warmup must end before the run does")
    result = ExperimentResult(
        experiment_id="rt01",
        description="DSDV control overhead vs HELLO/advertisement interval",
    )
    variants = [("BA", broadcast_aggregation)]
    if include_no_aggregation:
        variants.insert(0, ("NA", no_aggregation))
    for label, policy_factory in variants:
        fraction_series = result.add_series(Series(label=f"{label} ctrl frac"))
        goodput_series = result.add_series(Series(label=f"{label} udp Mbps"))
        rate_series = result.add_series(Series(label=f"{label} ctrl/s"))
        for interval in hello_intervals_s:
            fraction, goodput, per_second = _run_once(
                policy_factory(), hello_interval=interval,
                advertise_ratio=advertise_ratio, node_count=node_count,
                cbr_interval=cbr_interval, cbr_payload_bytes=cbr_payload_bytes,
                warmup=warmup, duration=duration, rate_mbps=rate_mbps,
                seed=seed)
            fraction_series.add(interval, fraction)
            goodput_series.add(interval, goodput)
            rate_series.add(interval, per_second)

    shortest = min(hello_intervals_s)
    longest = max(hello_intervals_s)
    ba = result.get_series("BA ctrl frac")
    result.add_metric("ba_ctrl_frac_range",
                      ba.value_at(shortest) - ba.value_at(longest))
    result.note("Beyond the paper: Section 6.3 floods dummy broadcast traffic; "
                "here the broadcasts are a live DSDV control plane whose "
                "interval sets both repair latency and overhead.")
    return result


#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "rt01"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"hello_intervals_s": (0.5, 1.5), "duration": 6.0, "warmup": 2.0,
               "include_no_aggregation": False}
