"""Figure 8: TCP throughput vs data rate with and without unicast aggregation.

A one-way file transfer over 2-hop and 3-hop chains at the four experiment
rates.  Aggregation improves throughput on both paths and the improvement
grows with the data rate.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.file_transfer import PAPER_FILE_BYTES
from repro.core.policies import no_aggregation, unicast_aggregation
from repro.experiments.scenarios import run_tcp_transfer
from repro.stats.results import ExperimentResult, Series

DEFAULT_RATES_MBPS = (0.65, 1.3, 1.95, 2.6)


def run(rates_mbps: Sequence[float] = DEFAULT_RATES_MBPS, hops_list: Sequence[int] = (2, 3),
        file_bytes: int = PAPER_FILE_BYTES, seed: int = 1) -> ExperimentResult:
    """TCP throughput for NA and UA over each chain length and rate."""
    result = ExperimentResult(
        experiment_id="figure8",
        description="TCP throughput vs rate, unicast aggregation vs none (2- and 3-hop)",
    )
    for hops in hops_list:
        na_series = result.add_series(Series(label=f"NA {hops}-hop"))
        ua_series = result.add_series(Series(label=f"UA {hops}-hop"))
        for rate in rates_mbps:
            na = run_tcp_transfer(no_aggregation(), hops=hops, rate_mbps=rate,
                                  file_bytes=file_bytes, seed=seed)
            ua = run_tcp_transfer(unicast_aggregation(), hops=hops, rate_mbps=rate,
                                  file_bytes=file_bytes, seed=seed)
            na_series.add(rate, na.throughput_mbps)
            ua_series.add(rate, ua.throughput_mbps)
        gaps = [100.0 * (u - n) / n if n > 0 else 0.0
                for n, u in zip(na_series.y_values, ua_series.y_values)]
        result.add_metric(f"max_gap_percent_{hops}hop", max(gaps))
    result.note("Paper: UA beats NA at every rate and the gap grows with rate.")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "fig08"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"rates_mbps": (0.65, 1.3), "hops_list": (2,), "file_bytes": 40_000}
