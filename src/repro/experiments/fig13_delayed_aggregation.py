"""Figure 13: delayed broadcast aggregation (DBA).

DBA forces relay nodes to wait until three frames are queued before
contending for the floor, trading queueing delay for larger aggregates.  The
paper finds BA and DBA essentially tied at the low rates and DBA slightly
ahead at the higher rates (maximum gaps of ~2 % over 2 hops and ~4 % over
3 hops).
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.file_transfer import PAPER_FILE_BYTES
from repro.core.policies import broadcast_aggregation, delayed_broadcast_aggregation
from repro.experiments.scenarios import run_tcp_transfer
from repro.stats.results import ExperimentResult, Series

DEFAULT_RATES_MBPS = (0.65, 1.3, 1.95, 2.6)


def run(rates_mbps: Sequence[float] = DEFAULT_RATES_MBPS, hops_list: Sequence[int] = (2, 3),
        min_frames: int = 3, file_bytes: int = PAPER_FILE_BYTES,
        seed: int = 1) -> ExperimentResult:
    """BA vs DBA (relays wait for ``min_frames`` frames) over 2- and 3-hop chains."""
    result = ExperimentResult(
        experiment_id="figure13",
        description="TCP throughput: delayed broadcast aggregation vs BA",
    )
    for hops in hops_list:
        ba_series = result.add_series(Series(label=f"BA {hops}-hop"))
        dba_series = result.add_series(Series(label=f"DBA {hops}-hop"))
        for rate in rates_mbps:
            ba = run_tcp_transfer(broadcast_aggregation(), hops=hops, rate_mbps=rate,
                                  file_bytes=file_bytes, seed=seed)
            dba = run_tcp_transfer(broadcast_aggregation(), hops=hops, rate_mbps=rate,
                                   file_bytes=file_bytes, seed=seed,
                                   relay_policy=delayed_broadcast_aggregation(min_frames=min_frames))
            ba_series.add(rate, ba.throughput_mbps)
            dba_series.add(rate, dba.throughput_mbps)
        gaps = [100.0 * (d - b) / b if b > 0 else 0.0
                for b, d in zip(ba_series.y_values, dba_series.y_values)]
        result.add_metric(f"max_gap_percent_{hops}hop", max(gaps))
    result.note("Paper: BA and DBA are similar at 0.65/1.3 Mbps; DBA is slightly ahead at "
                "higher rates (max 2% over 2 hops, 4% over 3 hops).")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "fig13"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"rates_mbps": (0.65, 1.3), "hops_list": (2,), "file_bytes": 40_000}
