"""City scale: protocol degradation and medium cost as N grows to thousands.

This experiment family goes **beyond the paper**: Section 5's testbed tops
out at four nodes, while the reproduction's north star is replaying the
aggregation trade-offs at city scale.  ``city01`` builds an 8 m-spaced
lattice of 1,000–10,000 stationary nodes (see
:mod:`repro.topology.city`) and loads it with hundreds of concurrent local
UDP CBR flows, measuring how each way of moving packets degrades as the
city grows:

* ``flooding`` — one-hop broadcast dissemination from sources spread across
  the lattice (the paper's flooding workload, which does not rebroadcast):
  delivery ratio is *reached receivers / (N - 1)*, so it falls as 1/N — the
  textbook reason naive dissemination cannot scale;
* ``dsdv`` — the proactive control plane: every node beacons and advertises
  routes whether or not anyone talks to it, so control overhead grows with
  N even though the offered data load does not;
* ``aodv`` — the reactive control plane: discovery cost scales with the
  *flow* count (each local flow pays a bounded expanding-ring search), so
  overhead tracks traffic, not city size.

The experiment exists in tandem with the channel's spatial index: without it
every transmission budgets all N PHYs and a 2,000-node run is O(N) per
frame.  Each run therefore also reports the *candidates fraction* — link
budgets actually evaluated per transmission divided by (N - 1), straight
from the channel's ``candidates_considered`` counter.  Under
``spatial_index="auto"`` (grid above the threshold) the fraction collapses
to the mean neighbourhood size over N; under ``"scan"`` it is exactly 1.0.
CI asserts the collapse (``candidates_fraction_max_n``), which is the
acceptance proof that indexed broadcast is sub-O(N).

Reported per protocol over the swept node count:

* ``<protocol> delivery`` — delivered / offered (per potential receiver for
  flooding, end-to-end for the routed protocols);
* ``<protocol> ctrl frac`` — HELLO + routing bytes as a fraction of all MAC
  payload bytes (0 for flooding: no control plane);
* ``<protocol> cand frac`` — mean link budgets per transmission / (N - 1).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.apps.cbr import CbrSource, UdpSink
from repro.core.policies import AggregationPolicy, broadcast_aggregation
from repro.errors import ExperimentError
from repro.net.discovery import HelloConfig
from repro.net.dynamic_routing import DsdvConfig
from repro.net.flooding import FloodingSource
from repro.net.on_demand import AodvConfig
from repro.sim.simulator import Simulator
from repro.stats.results import ExperimentResult, Series
from repro.topology.city import (
    CITY_SPACING_M,
    assert_distinct,
    nearby_flow_pairs,
    populate_city,
    spread_indices,
)
from repro.topology.mobile import MobileScenario

DEFAULT_NODE_COUNTS = (500, 1000, 2000)
DEFAULT_PROTOCOLS = ("flooding", "dsdv", "aodv")


def _build_scenario(sim: Simulator, policy: AggregationPolicy, protocol: str,
                    node_count: int, spacing_m: float, placement: str,
                    rate_mbps: float, duration: float,
                    hello_interval: float, spatial_index: str) -> MobileScenario:
    routing = "static"
    config = None
    if protocol == "dsdv":
        routing = "dsdv"
        config = DsdvConfig(hello=HelloConfig(hello_interval=hello_interval))
    elif protocol == "aodv":
        routing = "aodv"
        # TTL-1 expanding ring: a local flow's discovery reaches its grid
        # neighbourhood, not the whole city.
        config = AodvConfig(hello=HelloConfig(hello_interval=hello_interval),
                            ring_start_ttl=1, ring_ttl_increment=2)
    scenario = MobileScenario(sim, policy=policy, unicast_rate_mbps=rate_mbps,
                              stop_time=duration, routing=routing,
                              routing_config=config,
                              spatial_index=spatial_index)
    populate_city(scenario, node_count, spacing_m=spacing_m,
                  placement=placement)
    return scenario


def _run_once(protocol: str, node_count: int, flow_count: int,
              spacing_m: float, placement: str, flooding_interval: float,
              flooding_payload_bytes: int, cbr_interval: float,
              cbr_payload_bytes: int, hello_interval: float, warmup: float,
              duration: float, rate_mbps: float, seed: int,
              spatial_index: str) -> Tuple[float, float, float]:
    """One city run; returns (delivery, control fraction, candidates fraction)."""
    sim = Simulator(seed=seed)
    scenario = _build_scenario(sim, broadcast_aggregation(), protocol,
                               node_count, spacing_m, placement, rate_mbps,
                               duration, hello_interval, spatial_index)
    network = scenario.network

    flooders: List[FloodingSource] = []
    sources: List[CbrSource] = []
    sinks: List[UdpSink] = []
    if protocol == "flooding":
        for index in assert_distinct(spread_indices(node_count, flow_count)):
            node = network.node(index)
            flooder = FloodingSource(sim, node.network, node.ip,
                                     interval=flooding_interval,
                                     payload_bytes=flooding_payload_bytes)
            flooder.start()
            flooders.append(flooder)
    else:
        flows = nearby_flow_pairs(node_count, flow_count, seed)
        for flow_index, (source_index, destination_index) in enumerate(flows):
            port = 9000 + flow_index
            sinks.append(UdpSink(network.node(destination_index),
                                 local_port=port))
            source = CbrSource(network.node(source_index),
                               network.node(destination_index).ip,
                               destination_port=port, local_port=port,
                               interval=cbr_interval,
                               payload_bytes=cbr_payload_bytes)
            # Stagger the starts so hundreds of discoveries do not collide
            # at t=warmup (same idiom as rt02, scaled to the flow count).
            source.start(warmup + (0.5 * cbr_interval * flow_index) / flow_count)
            sources.append(source)
    sim.run(until=duration)

    if protocol == "flooding":
        sent = sum(flooder.packets_sent for flooder in flooders)
        received = sum(node.network.stats.delivered_broadcast
                       for node in network.nodes)
        potential = sent * (len(network.nodes) - 1)
        delivery = received / potential if potential else 0.0
    else:
        sent = sum(source.packets_sent for source in sources)
        received = sum(sink.packets_received for sink in sinks)
        delivery = received / sent if sent else 0.0
    payload = sum(node.mac_stats.payload_bytes_sent for node in network.nodes)
    control = sum(node.mac_stats.routing_bytes_sent for node in network.nodes)
    control_fraction = control / payload if payload else 0.0

    channel = scenario.channel
    per_tx_pool = channel.total_transmissions * (node_count - 1)
    candidates_fraction = (channel.total_candidates / per_tx_pool
                           if per_tx_pool else 0.0)
    return delivery, control_fraction, candidates_fraction


def run(node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
        protocols: Sequence[str] = DEFAULT_PROTOCOLS,
        flow_count: int = 200, spacing_m: float = CITY_SPACING_M,
        placement: str = "grid", flooding_interval: float = 0.5,
        flooding_payload_bytes: int = 64, cbr_interval: float = 0.5,
        cbr_payload_bytes: int = 160, hello_interval: float = 1.0,
        warmup: float = 1.0, duration: float = 6.0, rate_mbps: float = 0.65,
        seed: int = 1, spatial_index: str = "auto") -> ExperimentResult:
    """Sweep the city size; report delivery, overhead and medium cost per protocol."""
    if not node_counts or any(count < 9 for count in node_counts):
        raise ExperimentError("city01 needs node counts of at least 9 (a 3x3 city)")
    if list(node_counts) != sorted(set(node_counts)):
        raise ExperimentError("node counts must be strictly increasing")
    unknown = sorted(set(protocols) - set(DEFAULT_PROTOCOLS))
    if unknown:
        raise ExperimentError(
            f"unknown protocol(s) {unknown}; valid: {sorted(DEFAULT_PROTOCOLS)}")
    if warmup >= duration:
        raise ExperimentError("warmup must end before the run does")
    result = ExperimentResult(
        experiment_id="city01",
        description="city-scale delivery/overhead vs N "
                    "(flooding vs DSDV vs AODV, spatially indexed medium)",
    )
    candidates_at_max: Dict[str, float] = {}
    for protocol in protocols:
        delivery_series = result.add_series(Series(label=f"{protocol} delivery"))
        control_series = result.add_series(Series(label=f"{protocol} ctrl frac"))
        candidate_series = result.add_series(Series(label=f"{protocol} cand frac"))
        for node_count in node_counts:
            delivery, control, candidates = _run_once(
                protocol, node_count=node_count, flow_count=flow_count,
                spacing_m=spacing_m, placement=placement,
                flooding_interval=flooding_interval,
                flooding_payload_bytes=flooding_payload_bytes,
                cbr_interval=cbr_interval,
                cbr_payload_bytes=cbr_payload_bytes,
                hello_interval=hello_interval, warmup=warmup,
                duration=duration, rate_mbps=rate_mbps, seed=seed,
                spatial_index=spatial_index)
            delivery_series.add(node_count, delivery)
            control_series.add(node_count, control)
            candidate_series.add(node_count, candidates)
        candidates_at_max[protocol] = candidate_series.y_values[-1]

    max_n = max(node_counts)
    result.add_metric("max_node_count", float(max_n))
    # The sub-O(N) acceptance metric: across every protocol at the largest
    # city, the channel evaluated far fewer link budgets per transmission
    # than the N-1 a full scan would have (CI gates on this).
    result.add_metric("candidates_fraction_max_n",
                      max(candidates_at_max.values()))
    if "flooding" in candidates_at_max:
        flooding_delivery = result.get_series("flooding delivery")
        result.add_metric("flooding_delivery_drop",
                          flooding_delivery.y_values[0]
                          - flooding_delivery.y_values[-1])
    result.note("Beyond the paper: the evaluation testbed is four nodes; here "
                "the same MAC and aggregation policy serve a lattice city of "
                "thousands, which is only tractable because the channel's "
                "spatial index prunes each broadcast to the transmitter's "
                "neighbourhood (see repro.channel.spatial).")
    result.note("Flooding delivery is per potential receiver, so it decays "
                "as ~neighbourhood/N; DSDV pays control bytes for the whole "
                "city regardless of traffic; AODV pays per local flow.")
    return result


#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "city01"
#: Reduced sweep used by campaign runs unless ``--full`` is given.  DSDV is
#: excluded here on purpose: its city-wide advertisement tables are the
#: degradation *result*, priced at full parameters, not a smoke-test cost.
FAST_PARAMS = {"node_counts": (2000,), "protocols": ("flooding", "aodv"),
               "flow_count": 100, "duration": 2.0, "warmup": 0.5}
