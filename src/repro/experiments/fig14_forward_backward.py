"""Figure 14: forward vs backward aggregation.

"Forward aggregation" combines packets travelling in the same direction;
"backward aggregation" combines TCP data with reverse-direction TCP ACKs.
Disabling forward aggregation isolates the backward benefit: the paper finds
the gap between full BA and backward-only BA grows with the data rate,
i.e. forward aggregation matters more as the rate rises.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.file_transfer import PAPER_FILE_BYTES
from repro.core.policies import broadcast_aggregation, no_aggregation
from repro.experiments.scenarios import run_tcp_transfer
from repro.stats.results import ExperimentResult, Series

DEFAULT_RATES_MBPS = (0.65, 1.3, 1.95, 2.6)


def run(rates_mbps: Sequence[float] = DEFAULT_RATES_MBPS, hops: int = 3,
        file_bytes: int = PAPER_FILE_BYTES, seed: int = 1,
        include_no_aggregation: bool = True) -> ExperimentResult:
    """BA vs BA-without-forward-aggregation (and NA) over a 3-hop chain."""
    result = ExperimentResult(
        experiment_id="figure14",
        description="3-hop TCP throughput: BA vs BA without forward aggregation",
    )
    variants = [("BA", broadcast_aggregation()),
                ("BA no-forward", broadcast_aggregation().without_forward_aggregation())]
    if include_no_aggregation:
        variants.append(("NA", no_aggregation()))
    for label, policy in variants:
        series = result.add_series(Series(label=label))
        for rate in rates_mbps:
            outcome = run_tcp_transfer(policy, hops=hops, rate_mbps=rate,
                                       file_bytes=file_bytes, seed=seed)
            series.add(rate, outcome.throughput_mbps)

    ba = result.get_series("BA")
    backward_only = result.get_series("BA no-forward")
    gaps = [100.0 * (full - back) / back if back > 0 else 0.0
            for full, back in zip(ba.y_values, backward_only.y_values)]
    result.add_metric("gap_percent_at_lowest_rate", gaps[0])
    result.add_metric("gap_percent_at_highest_rate", gaps[-1])
    result.note("Paper: the BA vs backward-only gap widens as the unicast rate increases.")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "fig14"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"rates_mbps": (0.65, 1.3), "file_bytes": 40_000}
