"""Tables 5-7: relay-node detail, 2-hop chain vs star topology.

At the star's central relay, TCP data frames of both sessions share a
destination (the client) while the reverse TCP ACKs are destined to two
different servers.  Unicast aggregation therefore gains nothing from the
extra traffic (Table 5: UA frame size is essentially unchanged), while
broadcast aggregation can combine the ACKs for both servers with the data
frames (frame size grows from ~2.7 KB to ~3.4 KB), lowering size overhead
(Table 6) and the relative number of transmissions (Table 7).
"""

from __future__ import annotations

from typing import Dict

from repro.apps.file_transfer import PAPER_FILE_BYTES
from repro.core.policies import broadcast_aggregation, no_aggregation, unicast_aggregation
from repro.experiments.scenarios import run_star_tcp, run_tcp_transfer
from repro.stats.collect import relay_detail
from repro.stats.results import ExperimentResult, TableResult


def run(rate_mbps: float = 1.3, file_bytes: int = PAPER_FILE_BYTES,
        seed: int = 1) -> ExperimentResult:
    """Relay frame size / size overhead / transmission percentages, 2-hop vs star."""
    result = ExperimentResult(
        experiment_id="table5_6_7",
        description="Relay node frame size, size overhead and transmissions: 2-hop vs star",
    )

    detail_2hop: Dict[str, Dict[str, float]] = {}
    detail_star: Dict[str, Dict[str, float]] = {}
    for name, policy in (("NA", no_aggregation()), ("UA", unicast_aggregation()),
                         ("BA", broadcast_aggregation())):
        chain = run_tcp_transfer(policy, hops=2, rate_mbps=rate_mbps,
                                 file_bytes=file_bytes, seed=seed)
        detail_2hop[name] = relay_detail(chain.network, relay_indices=[2])
        star = run_star_tcp(policy, rate_mbps=rate_mbps, file_bytes=file_bytes, seed=seed)
        detail_star[name] = relay_detail(star.network, relay_indices=[2])

    frame_size = result.add_table(TableResult(
        title="Table 5: frame size (B)", columns=["2-hop", "star"]))
    size_overhead = result.add_table(TableResult(
        title="Table 6: size overhead (%)", columns=["2-hop", "star"]))
    transmissions = result.add_table(TableResult(
        title="Table 7: transmissions (% of NA)", columns=["2-hop", "star"]))

    for name in ("UA", "BA"):
        frame_size.add_row(name, [detail_2hop[name]["average_frame_size"],
                                  detail_star[name]["average_frame_size"]])
        size_overhead.add_row(name, [100.0 * detail_2hop[name]["size_overhead"],
                                     100.0 * detail_star[name]["size_overhead"]])
        transmissions.add_row(name, [
            100.0 * detail_2hop[name]["transmissions"] / detail_2hop["NA"]["transmissions"],
            100.0 * detail_star[name]["transmissions"] / detail_star["NA"]["transmissions"],
        ])
        result.add_metric(f"frame_size_2hop_{name}", detail_2hop[name]["average_frame_size"])
        result.add_metric(f"frame_size_star_{name}", detail_star[name]["average_frame_size"])

    ba_growth = (detail_star["BA"]["average_frame_size"]
                 - detail_2hop["BA"]["average_frame_size"])
    ua_growth = (detail_star["UA"]["average_frame_size"]
                 - detail_2hop["UA"]["average_frame_size"])
    result.add_metric("ba_star_frame_growth_bytes", ba_growth)
    result.add_metric("ua_star_frame_growth_bytes", ua_growth)
    result.note("Paper (Tables 5-7): UA frame size is flat (2662 -> 2651 B) while BA grows "
                "substantially (2727 -> 3432 B) in the star; BA transmissions drop from "
                "26.7% to 22.5% of NA.")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "table05_07"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"file_bytes": 40_000}
