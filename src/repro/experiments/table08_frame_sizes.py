"""Table 8: average frame size at every node, 2-hop vs 3-hop.

The TCP server transmits large aggregates (two or three MSS-sized segments),
the client transmits small ACK aggregates, and relays sit in between.  Going
from 2 to 3 hops, the per-node sizes drop slightly (the transfer slows down)
but the *difference* between BA and UA at the relay nodes grows — the sign
that more relay nodes create more bi-directional aggregation opportunities.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.file_transfer import PAPER_FILE_BYTES
from repro.core.policies import broadcast_aggregation, unicast_aggregation
from repro.experiments.scenarios import run_tcp_transfer
from repro.stats.collect import node_frame_sizes
from repro.stats.results import ExperimentResult, TableResult


def run(rate_mbps: float = 1.3, file_bytes: int = PAPER_FILE_BYTES,
        seed: int = 1) -> ExperimentResult:
    """Average frame size at the server, relay(s) and client for UA and BA."""
    result = ExperimentResult(
        experiment_id="table8",
        description="Frame size at all nodes for 2-hop and 3-hop networks",
    )
    table = result.add_table(TableResult(
        title="variant",
        columns=["server (2)", "relay (2)", "client (2)",
                 "server (3)", "relay1 (3)", "relay2 (3)", "client (3)"]))

    sizes: Dict[str, List[float]] = {}
    for name, policy in (("UA", unicast_aggregation()), ("BA", broadcast_aggregation())):
        two_hop = run_tcp_transfer(policy, hops=2, rate_mbps=rate_mbps,
                                   file_bytes=file_bytes, seed=seed)
        three_hop = run_tcp_transfer(policy, hops=3, rate_mbps=rate_mbps,
                                     file_bytes=file_bytes, seed=seed)
        sizes_2 = node_frame_sizes(two_hop.network)
        sizes_3 = node_frame_sizes(three_hop.network)
        row = [sizes_2[1], sizes_2[2], sizes_2[3],
               sizes_3[1], sizes_3[2], sizes_3[3], sizes_3[4]]
        sizes[name] = row
        table.add_row(name, row)

    # The relay-level BA-UA difference should grow with the hop count.
    relay_gap_2hop = sizes["BA"][1] - sizes["UA"][1]
    relay2_gap_3hop = sizes["BA"][5] - sizes["UA"][5]
    result.add_metric("relay_gap_2hop_bytes", relay_gap_2hop)
    result.add_metric("relay2_gap_3hop_bytes", relay2_gap_3hop)
    result.note("Paper (Table 8): the BA-UA relay frame-size difference is 65 B over 2 hops "
                "but 154 B (relay1) and 446 B (relay2) over 3 hops.")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "table08"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"file_bytes": 40_000}
