"""Table 3: detailed behaviour of the relay node in a 2-hop TCP transfer.

For NA, UA, BA and DBA the paper reports the relay's average frame size
(765 / 2662 / 2727 / 3477 bytes), the number of transmissions relative to NA
(100 / 33.7 / 26.7 / 21.1 %) and the MAC+PHY size overhead (15.1 / 6.83 /
6.55 / 5.8 %).  Aggregation should multiply the frame size by roughly the
aggregation ratio, cut transmissions by the same factor and shrink the header
overhead accordingly.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.file_transfer import PAPER_FILE_BYTES
from repro.core.policies import (
    AggregationPolicy,
    broadcast_aggregation,
    delayed_broadcast_aggregation,
    no_aggregation,
    unicast_aggregation,
)
from repro.experiments.scenarios import TcpRunResult, run_tcp_transfer
from repro.stats.collect import relay_detail
from repro.stats.results import ExperimentResult, TableResult

VARIANT_ORDER = ("NA", "UA", "BA", "DBA")


def _variants() -> Dict[str, AggregationPolicy]:
    return {
        "NA": no_aggregation(),
        "UA": unicast_aggregation(),
        "BA": broadcast_aggregation(),
        "DBA": broadcast_aggregation(),  # endpoints; relays get the delayed policy
    }


def _run_variant(name: str, policy: AggregationPolicy, hops: int, rate_mbps: float,
                 file_bytes: int, seed: int) -> TcpRunResult:
    relay_policy = delayed_broadcast_aggregation() if name == "DBA" else None
    return run_tcp_transfer(policy, hops=hops, rate_mbps=rate_mbps, file_bytes=file_bytes,
                            seed=seed, relay_policy=relay_policy)


def run(rate_mbps: float = 1.3, hops: int = 2, file_bytes: int = PAPER_FILE_BYTES,
        seed: int = 1) -> ExperimentResult:
    """Relay-node frame size, transmission percentage and size overhead for each variant."""
    result = ExperimentResult(
        experiment_id="table3",
        description="2-hop relay node detail (frame size, transmissions, size overhead)",
    )
    table = result.add_table(TableResult(
        title="variant",
        columns=["frame size (B)", "total TXs (% of NA)", "size overhead (%)",
                 "throughput (Mbps)"]))

    transmissions: Dict[str, float] = {}
    details: Dict[str, Dict[str, float]] = {}
    throughputs: Dict[str, float] = {}
    for name, policy in _variants().items():
        outcome = _run_variant(name, policy, hops, rate_mbps, file_bytes, seed)
        detail = relay_detail(outcome.network, relay_indices=[2])
        transmissions[name] = detail["transmissions"]
        details[name] = detail
        throughputs[name] = outcome.throughput_mbps

    baseline_tx: Optional[float] = transmissions.get("NA") or None
    for name in VARIANT_ORDER:
        detail = details[name]
        tx_percent = (100.0 * detail["transmissions"] / baseline_tx
                      if baseline_tx else 0.0)
        table.add_row(name, [detail["average_frame_size"], tx_percent,
                             100.0 * detail["size_overhead"], throughputs[name]])
        result.add_metric(f"frame_size_{name}", detail["average_frame_size"])
        result.add_metric(f"tx_percent_{name}", tx_percent)
        result.add_metric(f"size_overhead_percent_{name}", 100.0 * detail["size_overhead"])
    result.note("Paper (Table 3): frame sizes 765/2662/2727/3477 B, transmissions "
                "100/33.7/26.7/21.1 %, size overhead 15.1/6.83/6.55/5.8 % for NA/UA/BA/DBA.")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "table03"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"file_bytes": 40_000}
