"""Routing control overhead scaling: DSDV vs AODV vs static routes.

``rt01`` priced the proactive control plane against its beacon interval.
This experiment prices the **proactive/reactive trade-off** itself: DSDV
pays a fixed, always-on advertisement cost that is independent of traffic,
while AODV pays per *requested destination* — RREQ floods, RREP replies and
RERR repairs that scale with the number of active flows.  Static routes pay
nothing and repair nothing, anchoring both delivery and overhead.

Setup: a grid mesh (spacing below the ~12.5 m decodability limit) whose
nodes roam under random waypoint at the swept speed.  ``flow_count`` UDP CBR
flows run between deterministic, seed-sampled node pairs (the pair list is
prefix-nested and hop-balanced, so ``k`` flows are always a subset of
``k+1`` flows with a comparable mean path length).  Crucially the
**aggregate offered load is held constant**: each flow sends at
``1/(cbr_interval_s * flow_count)`` packets per second, so sweeping the flow
count changes only *how many destinations* the control plane must serve —
and how *sparse* each destination's traffic becomes — not how many data
bytes the mesh carries.  Those two are exactly the variables that separate
the protocols: AODV pays per destination (one expanding-ring flood each,
plus RERR repair under mobility), and once a flow's packet spacing exceeds
the ``route_lifetime`` its route cache expires between packets and *every*
packet pays a fresh discovery — the classic reactive-state-thrashing regime
that constant-load flow splitting drives the mesh into.

Reported per (routing, policy, speed) over the swept flow count:

* ``<routing> <policy> delivery @<speed>mps`` — aggregate end-to-end
  delivery ratio across all flows (received / sent);
* ``<routing> <policy> ctrl frac @<speed>mps`` — network-wide
  ``routing_overhead_fraction``: HELLO + DSDV/AODV bytes as a fraction of
  all transmitted MAC payload bytes, straight from ``mac.stats``.

How to read the comparison: AODV's fraction **grows** with the flow count
(every additional destination buys its own expanding-ring flood plus its
share of RERR/re-discovery as links churn), DSDV's stays **~flat** (its
beacons and full dumps are the same whether one pair or six pairs talk), and
static stays at exactly zero.  The crossing point — below it the reactive
protocol is cheaper, above it the proactive one — is the textbook result,
here measured through the paper's real MAC so NA/UA/BA aggregation policies
price the control packets differently.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.cbr import CbrSource, UdpSink
from repro.core.policies import (
    AggregationPolicy,
    broadcast_aggregation,
    no_aggregation,
    unicast_aggregation,
)
from repro.errors import ExperimentError
from repro.mobility.models import RandomWaypoint
from repro.net.discovery import HelloConfig
from repro.net.dynamic_routing import DsdvConfig
from repro.net.on_demand import AodvConfig
from repro.sim.simulator import Simulator
from repro.stats.results import ExperimentResult, Series
from repro.topology.mobile import MobileScenario, populate_grid

DEFAULT_FLOW_COUNTS = (1, 2, 4, 6)
DEFAULT_SPEEDS_MPS = (0.0, 2.0)
DEFAULT_ROUTINGS = ("static", "dsdv", "aodv")

#: Grid spacing: safely inside the ~12.5 m decodability limit, so adjacent
#: grid nodes are solid neighbors at the initial placement.
DEFAULT_GRID_SPACING_M = 8.0


def _grid_hops(pair: Tuple[int, int], grid_side: int) -> int:
    """Initial-placement hop distance of a flow (Manhattan on the grid)."""
    (row_a, col_a), (row_b, col_b) = (divmod(index - 1, grid_side)
                                      for index in pair)
    return abs(row_a - row_b) + abs(col_a - col_b)


def _sample_flows(node_indices: Sequence[int], flow_count: int, seed: int,
                  grid_side: int) -> List[Tuple[int, int]]:
    """Deterministic, prefix-nested, hop-balanced (source, destination) pairs.

    Drawn from a dedicated ``random.Random`` (independent of the simulator's
    streams), shuffled once, then greedily reordered so that every prefix's
    *mean hop distance* stays as close as possible to the population mean —
    the transit byte load is therefore comparable at every flow count, and
    the overhead fraction responds to the number of destinations rather than
    to which pair the shuffle happened to put first.  The ``k``-flow set is
    always a prefix of the ``k+1``-flow set and identical across
    routing/policy variants of the same seed.
    """
    pairs = [(a, b) for a in node_indices for b in node_indices if a != b]
    if flow_count > len(pairs):
        raise ExperimentError(
            f"cannot place {flow_count} distinct flows on {len(node_indices)} nodes")
    rng = random.Random(99991 * seed + 7)  # lint: disable=RPR001 -- param sampling seeded from the replica seed; runs before any simulator exists
    rng.shuffle(pairs)
    target = sum(_grid_hops(pair, grid_side) for pair in pairs) / len(pairs)
    ordered: List[Tuple[int, int]] = []
    total_hops = 0
    while pairs:
        best = min(pairs, key=lambda pair: abs(
            (total_hops + _grid_hops(pair, grid_side)) / (len(ordered) + 1)
            - target))
        pairs.remove(best)
        ordered.append(best)
        total_hops += _grid_hops(best, grid_side)
    return ordered[:flow_count]


def _install_grid_routes(network, flows: Sequence[Tuple[int, int]],
                         grid_side: int) -> None:
    """Static L-shaped (row-then-column) routes for each flow's forward path.

    The static baseline mirrors the paper's methodology: routes are named at
    build time from the *initial* grid coordinates and never change, so
    mobility decides whether each named hop still works.
    """
    def coords(index: int) -> Tuple[int, int]:
        return divmod(index - 1, grid_side)

    def index(row: int, col: int) -> int:
        return row * grid_side + col + 1

    for source, destination in flows:
        row, col = coords(source)
        dest_row, dest_col = coords(destination)
        path = [source]
        while row != dest_row:
            row += 1 if dest_row > row else -1
            path.append(index(row, col))
        while col != dest_col:
            col += 1 if dest_col > col else -1
            path.append(index(row, col))
        destination_ip = network.node(destination).ip
        for hop, next_hop in zip(path, path[1:]):
            network.node(hop).add_route(destination_ip, network.node(next_hop).ip)


def _run_once(policy: AggregationPolicy, routing: str, flow_count: int,
              speed: float, grid_side: int, grid_spacing_m: float,
              hello_interval: float, aodv_hello_interval: float,
              advertise_interval: float, route_lifetime: float,
              cbr_interval_s: float, cbr_payload_bytes: int, warmup: float,
              duration: float, rate_mbps: float, seed: int,
              spatial_index: str = "auto") -> Tuple[float, float]:
    """One mesh run; returns (aggregate delivery ratio, control fraction)."""
    sim = Simulator(seed=seed)
    config = None
    if routing == "dsdv":
        config = DsdvConfig(hello=HelloConfig(hello_interval=hello_interval),
                            advertise_interval=advertise_interval)
    elif routing == "aodv":
        # Near the RFC 3561 operating point: 1 s HELLOs and an expanding
        # ring that genuinely starts at TTL 1, so each requested destination
        # pays an escalating flood — the cost the experiment is designed to
        # expose.  The active-route lifetime sits between the per-flow
        # packet spacings at the two ends of the sweep, so splitting the
        # fixed load across more destinations pushes flows into the
        # rediscovery-per-packet regime.
        config = AodvConfig(hello=HelloConfig(hello_interval=aodv_hello_interval),
                            active_route_lifetime=route_lifetime,
                            ring_start_ttl=1, ring_ttl_increment=2)
    scenario = MobileScenario(sim, policy=policy, unicast_rate_mbps=rate_mbps,
                              stop_time=duration, routing=routing,
                              routing_config=config, spatial_index=spatial_index)
    model_factory = None
    if speed > 0:
        model_factory = lambda row, col, area: RandomWaypoint(
            area=area, speed_range=(speed, speed))
    populate_grid(scenario, grid_side, grid_spacing_m, model_factory)

    network = scenario.network
    node_indices = [node.index for node in network.nodes]
    flows = _sample_flows(node_indices, flow_count, seed, grid_side)
    if routing == "static":
        _install_grid_routes(network, flows, grid_side)

    # Constant aggregate offered load: each of the k flows sends at 1/k of
    # the base rate, so data bytes do not scale with the flow count.
    sinks: List[UdpSink] = []
    sources: List[CbrSource] = []
    for flow_index, (source_index, destination_index) in enumerate(flows):
        port = 9000 + flow_index
        sinks.append(UdpSink(network.node(destination_index), local_port=port))
        source = CbrSource(network.node(source_index),
                           network.node(destination_index).ip,
                           destination_port=port, local_port=port,
                           interval=cbr_interval_s * flow_count,
                           payload_bytes=cbr_payload_bytes)
        # Stagger the starts so k route discoveries do not collide at t=warmup.
        source.start(warmup + 0.05 * flow_index)
        sources.append(source)
    sim.run(until=duration)

    sent = sum(source.packets_sent for source in sources)
    received = sum(sink.packets_received for sink in sinks)
    delivery = received / sent if sent else 0.0
    payload = sum(node.mac_stats.payload_bytes_sent for node in network.nodes)
    control = sum(node.mac_stats.routing_bytes_sent for node in network.nodes)
    control_fraction = control / payload if payload else 0.0
    return delivery, control_fraction


def run(flow_counts: Sequence[int] = DEFAULT_FLOW_COUNTS,
        speeds_mps: Sequence[float] = DEFAULT_SPEEDS_MPS,
        routings: Sequence[str] = DEFAULT_ROUTINGS,
        grid_side: int = 3, grid_spacing_m: float = DEFAULT_GRID_SPACING_M,
        hello_interval: float = 0.5, aodv_hello_interval: float = 1.0,
        advertise_interval: float = 1.5, route_lifetime: float = 1.5,
        cbr_interval_s: float = 0.3, cbr_payload_bytes: int = 80,
        warmup: float = 3.0, duration: float = 16.0, rate_mbps: float = 0.65,
        include_no_aggregation: bool = True,
        include_unicast_aggregation: bool = False,
        seed: int = 1, spatial_index: str = "auto") -> ExperimentResult:
    """Sweep the flow count; report delivery and overhead per routing/policy/speed."""
    if grid_side < 2:
        raise ExperimentError("rt02 needs at least a 2x2 grid")
    if not flow_counts or any(count < 1 for count in flow_counts):
        raise ExperimentError("flow counts must be positive")
    if list(flow_counts) != sorted(set(flow_counts)):
        raise ExperimentError("flow counts must be strictly increasing")
    unknown = sorted(set(routings) - set(DEFAULT_ROUTINGS))
    if unknown:
        raise ExperimentError(
            f"unknown routing(s) {unknown}; valid: {sorted(DEFAULT_ROUTINGS)}")
    if warmup >= duration:
        raise ExperimentError("warmup must end before the run does")
    result = ExperimentResult(
        experiment_id="rt02",
        description="Control overhead scaling vs active flows: "
                    "DSDV vs AODV vs static (NA/UA/BA)",
    )
    variants = [("BA", broadcast_aggregation)]
    if include_unicast_aggregation:
        variants.insert(0, ("UA", unicast_aggregation))
    if include_no_aggregation:
        variants.insert(0, ("NA", no_aggregation))

    control_growth: Dict[str, Optional[float]] = {}
    for routing in routings:
        for label, policy_factory in variants:
            for speed in speeds_mps:
                suffix = f"{label} @{speed:g}mps"
                delivery_series = result.add_series(
                    Series(label=f"{routing} {suffix} delivery"))
                control_series = result.add_series(
                    Series(label=f"{routing} {suffix} ctrl frac"))
                for flow_count in flow_counts:
                    delivery, control = _run_once(
                        policy_factory(), routing=routing,
                        flow_count=flow_count, speed=speed,
                        grid_side=grid_side, grid_spacing_m=grid_spacing_m,
                        hello_interval=hello_interval,
                        aodv_hello_interval=aodv_hello_interval,
                        advertise_interval=advertise_interval,
                        route_lifetime=route_lifetime,
                        cbr_interval_s=cbr_interval_s,
                        cbr_payload_bytes=cbr_payload_bytes, warmup=warmup,
                        duration=duration, rate_mbps=rate_mbps, seed=seed,
                        spatial_index=spatial_index)
                    delivery_series.add(flow_count, delivery)
                    control_series.add(flow_count, control)
                if routing not in control_growth:
                    # Headline metric from the first (policy, speed) variant:
                    # overhead change from the fewest to the most flows.
                    control_growth[routing] = (
                        control_series.y_values[-1] - control_series.y_values[0])

    for routing, growth in control_growth.items():
        result.add_metric(f"{routing}_ctrl_frac_growth", growth)
    if "aodv" in control_growth and "dsdv" in control_growth:
        result.add_metric("aodv_minus_dsdv_growth",
                          control_growth["aodv"] - control_growth["dsdv"])
    result.note("Aggregate offered load is constant across the sweep (per-flow "
                "rate is 1/k of the base rate), so the flow count varies only "
                "the number of destinations the control plane must serve and "
                "how sparse each destination's traffic is relative to the "
                "active-route lifetime.")
    result.note("Beyond the paper: the proactive/reactive trade-off measured "
                "through the real MAC — DSDV's beacons are flow-independent, "
                "AODV pays one expanding-ring discovery (plus RERR repair "
                "under mobility) per requested destination, static routes pay "
                "zero control bytes and never repair.")
    return result


#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "rt02"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"flow_counts": (1, 6), "speeds_mps": (2.0,), "duration": 8.0,
               "warmup": 3.0, "include_no_aggregation": False}
