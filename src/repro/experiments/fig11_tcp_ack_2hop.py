"""Figure 11: 2-hop TCP ACK aggregation with broadcasts at the unicast rate.

With the broadcast portion transmitted at the same rate as the unicast
portion, BA beats UA at every rate (the paper reports a maximum gap of about
10 %), and both beat no aggregation by a wide margin.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.file_transfer import PAPER_FILE_BYTES
from repro.core.policies import broadcast_aggregation, no_aggregation, unicast_aggregation
from repro.experiments.scenarios import run_tcp_transfer
from repro.stats.results import ExperimentResult, Series

DEFAULT_RATES_MBPS = (0.65, 1.3, 1.95, 2.6)


def run(rates_mbps: Sequence[float] = DEFAULT_RATES_MBPS, hops: int = 2,
        file_bytes: int = PAPER_FILE_BYTES, seed: int = 1,
        include_no_aggregation: bool = True) -> ExperimentResult:
    """TCP throughput for NA, UA and BA (broadcast at the unicast rate)."""
    result = ExperimentResult(
        experiment_id="figure11",
        description="2-hop TCP throughput: BA (same-rate broadcasts) vs UA vs NA",
    )
    variants = [("UA", unicast_aggregation()), ("BA", broadcast_aggregation())]
    if include_no_aggregation:
        variants.insert(0, ("NA", no_aggregation()))
    for label, policy in variants:
        series = result.add_series(Series(label=label))
        for rate in rates_mbps:
            outcome = run_tcp_transfer(policy, hops=hops, rate_mbps=rate,
                                       file_bytes=file_bytes, seed=seed)
            series.add(rate, outcome.throughput_mbps)

    ua = result.get_series("UA")
    ba = result.get_series("BA")
    gaps = [100.0 * (b - u) / u if u > 0 else 0.0
            for u, b in zip(ua.y_values, ba.y_values)]
    result.add_metric("max_gap_ba_over_ua_percent", max(gaps))
    result.note("Paper: BA always outperforms UA; the maximum gap is about 10%.")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "fig11"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"rates_mbps": (0.65, 1.3), "file_bytes": 40_000}
