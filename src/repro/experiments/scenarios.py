"""Reusable scenario runners.

Three workloads cover the whole evaluation section of the paper:

* a one-way TCP file transfer over an N-hop chain (Figures 8, 10–14,
  Tables 3, 4, 8),
* the same transfer over the star topology with two simultaneous sessions
  (Figure 12, Tables 5–7),
* a saturating UDP flow over a chain, optionally with per-node broadcast
  flooding (Table 2, Figures 7 and 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.cbr import CbrSource, UdpSink
from repro.apps.file_transfer import (
    PAPER_FILE_BYTES,
    FileTransferReceiver,
    FileTransferSender,
    run_file_transfer_pair,
)
from repro.core.policies import AggregationPolicy
from repro.errors import ExperimentError
from repro.net.flooding import FloodingSource
from repro.node.hydra import HydraProfile, default_hydra_profile
from repro.sim.simulator import Simulator
from repro.topology.builders import build_linear_chain, build_star
from repro.topology.network import Network
from repro.units import mbps


# ---------------------------------------------------------------------------
# TCP over a linear chain
# ---------------------------------------------------------------------------

@dataclass
class TcpRunResult:
    """Outcome of one TCP file transfer over a chain."""

    throughput_mbps: float
    completion_time: Optional[float]
    network: Network
    sender: FileTransferSender
    receiver: FileTransferReceiver

    @property
    def complete(self) -> bool:
        """True when the whole file arrived."""
        return self.receiver.complete


def _policy_map(policy: AggregationPolicy, node_count: int,
                relay_policy: Optional[AggregationPolicy]) -> object:
    """Endpoints use ``policy``; relays optionally use ``relay_policy`` (DBA)."""
    if relay_policy is None:
        return policy
    mapping: Dict[int, AggregationPolicy] = {}
    for index in range(1, node_count + 1):
        is_relay = 1 < index < node_count
        mapping[index] = relay_policy if is_relay else policy
    return mapping


def run_tcp_transfer(policy: AggregationPolicy, hops: int = 2, rate_mbps: float = 0.65,
                     broadcast_rate_mbps: Optional[float] = None,
                     file_bytes: int = PAPER_FILE_BYTES, seed: int = 1,
                     relay_policy: Optional[AggregationPolicy] = None,
                     profile: Optional[HydraProfile] = None,
                     use_block_ack: bool = False,
                     max_sim_time: float = 600.0) -> TcpRunResult:
    """One-way file transfer from node 1 to node ``hops + 1`` (Figure 5)."""
    sim = Simulator(seed=seed)
    network = build_linear_chain(
        sim, hops=hops, policy=_policy_map(policy, hops + 1, relay_policy),
        profile=profile, unicast_rate_mbps=rate_mbps,
        broadcast_rate_mbps=broadcast_rate_mbps, use_block_ack=use_block_ack,
    )
    sender, receiver = run_file_transfer_pair(network.node(1), network.node(hops + 1),
                                              file_bytes=file_bytes)
    sim.run(until=max_sim_time)
    throughput = receiver.throughput_mbps(transfer_start=0.0)
    return TcpRunResult(throughput_mbps=throughput, completion_time=receiver.completion_time,
                        network=network, sender=sender, receiver=receiver)


# ---------------------------------------------------------------------------
# TCP over the star topology
# ---------------------------------------------------------------------------

@dataclass
class StarRunResult:
    """Outcome of the two-session star scenario (Figure 6)."""

    session_throughputs_mbps: List[float]
    network: Network
    receivers: List[FileTransferReceiver] = field(default_factory=list)

    @property
    def worst_case_throughput_mbps(self) -> float:
        """Throughput of the slowest session — the metric Figure 12 reports."""
        return min(self.session_throughputs_mbps) if self.session_throughputs_mbps else 0.0


def run_star_tcp(policy: AggregationPolicy, rate_mbps: float = 0.65,
                 broadcast_rate_mbps: Optional[float] = None,
                 file_bytes: int = PAPER_FILE_BYTES, seed: int = 1,
                 relay_policy: Optional[AggregationPolicy] = None,
                 profile: Optional[HydraProfile] = None,
                 max_sim_time: float = 1200.0) -> StarRunResult:
    """Two TCP sessions (3 → 1 and 4 → 1) through the central relay (node 2)."""
    sim = Simulator(seed=seed)
    policies = policy
    if relay_policy is not None:
        policies = {1: policy, 2: relay_policy, 3: policy, 4: policy}
    network = build_star(sim, policy=policies, profile=profile,
                         unicast_rate_mbps=rate_mbps,
                         broadcast_rate_mbps=broadcast_rate_mbps)

    receivers: List[FileTransferReceiver] = []
    throughputs: List[float] = []
    client = network.node(1)
    for port, server_index in ((5001, 3), (5002, 4)):
        receiver = FileTransferReceiver(client, local_port=port, expected_bytes=file_bytes)
        sender = FileTransferSender(network.node(server_index), destination=client.ip,
                                    destination_port=port, file_bytes=file_bytes)
        sender.start(0.0)
        receivers.append(receiver)
    sim.run(until=max_sim_time)
    for receiver in receivers:
        throughputs.append(receiver.throughput_mbps(transfer_start=0.0))
    return StarRunResult(session_throughputs_mbps=throughputs, network=network,
                         receivers=receivers)


# ---------------------------------------------------------------------------
# Saturating UDP (optionally with flooding)
# ---------------------------------------------------------------------------

@dataclass
class UdpRunResult:
    """Outcome of one UDP saturation run.

    ``throughput_mbps`` covers the post-warmup measurement window only;
    ``warmup_bytes`` records how many sink bytes the warmup excluded.
    """

    throughput_mbps: float
    packets_received: int
    network: Network
    sink: UdpSink
    warmup_bytes: int = 0
    flooders: List[FloodingSource] = field(default_factory=list)


def run_udp_saturation(policy: AggregationPolicy, hops: int = 2, rate_mbps: float = 0.65,
                       duration: float = 20.0, seed: int = 1,
                       payload_bytes: Optional[int] = None,
                       offered_overdrive: float = 2.0,
                       flooding_interval: Optional[float] = None,
                       flooding_payload_bytes: int = 64,
                       warmup: float = 1.0,
                       profile: Optional[HydraProfile] = None,
                       spatial_index: str = "auto") -> UdpRunResult:
    """Saturating UDP flow from node 1 to node ``hops + 1``, optional flooding on all nodes."""
    if duration <= warmup:
        raise ExperimentError("duration must exceed the warmup period")
    sim = Simulator(seed=seed)
    network = build_linear_chain(sim, hops=hops, policy=policy, profile=profile,
                                 unicast_rate_mbps=rate_mbps,
                                 spatial_index=spatial_index)
    source_node = network.node(1)
    sink_node = network.node(hops + 1)
    sink = UdpSink(sink_node)
    kwargs = {} if payload_bytes is None else {"payload_bytes": payload_bytes}
    source = CbrSource.saturating(source_node, sink_node.ip, link_rate_bps=mbps(rate_mbps),
                                  overdrive=offered_overdrive, **kwargs)
    source.start(0.001)

    flooders: List[FloodingSource] = []
    if flooding_interval is not None:
        for node in network.nodes:
            flooder = FloodingSource(sim, node.network, node.ip, interval=flooding_interval,
                                     payload_bytes=flooding_payload_bytes)
            flooder.start()
            flooders.append(flooder)

    # The sink counts every byte from t=0; a snapshot at the end of the
    # warmup lets it measure throughput over the remaining window only.
    if warmup > 0.0:
        sink.snapshot_at(warmup)
    sim.run(until=duration)
    throughput = sink.throughput_mbps(measurement_start=warmup, measurement_end=duration)
    return UdpRunResult(throughput_mbps=throughput, packets_received=sink.packets_received,
                        network=network, sink=sink, warmup_bytes=sink.bytes_at(warmup),
                        flooders=flooders)
