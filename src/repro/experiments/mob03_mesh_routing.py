"""Mobile mesh routing: DSDV delivery ratio and route repair vs node speed.

This experiment goes **beyond the paper**: Section 5 hardwires every
multi-hop route, so the PR 2 mobility subsystem could move nodes but never
re-route around them.  Here a sparse grid mesh (grid spacing below the
~12.5 m decodability limit, corners several hops apart) runs the full
dynamic control plane of :mod:`repro.net.dynamic_routing`: HELLO beacons
detect link churn as intermediate nodes roam under random-waypoint mobility,
and DSDV repairs the corner-to-corner path through whichever relays are
currently in range.

Reported per policy (NA / UA / BA) over the swept roamer speed:

* ``<policy> delivery`` — end-to-end delivery ratio of a corner-to-corner
  UDP CBR flow (received / sent);
* ``<policy> repair s`` — mean route-repair latency at the source: the gap
  between a "broken" and the next "restored" event for the flow destination
  in the source router's route log (0 when no break occurred);
* ``<policy> ctrl frac`` — network-wide control-plane overhead: HELLO + DSDV
  bytes as a fraction of all MAC payload bytes sent, straight from
  ``mac.stats`` so goodput numbers stay honest.
"""

from __future__ import annotations

from statistics import mean
from typing import Sequence, Tuple

from repro.apps.cbr import CbrSource, UdpSink
from repro.core.policies import (
    AggregationPolicy,
    broadcast_aggregation,
    no_aggregation,
    unicast_aggregation,
)
from repro.errors import ExperimentError
from repro.mobility.models import RandomWaypoint
from repro.net.discovery import HelloConfig
from repro.net.dynamic_routing import DsdvConfig
from repro.sim.simulator import Simulator
from repro.stats.results import ExperimentResult, Series
from repro.topology.mobile import MobileScenario, populate_grid

DEFAULT_SPEEDS_MPS = (1.0, 3.0, 6.0)

#: Grid spacing: safely inside the ~12.5 m decodability limit of the default
#: indoor propagation model, so adjacent grid nodes are solid neighbors while
#: diagonal-plus-one nodes are not.
DEFAULT_GRID_SPACING_M = 8.0


def _run_once(policy: AggregationPolicy, speed: float, grid_side: int,
              grid_spacing_m: float, hello_interval: float,
              advertise_interval: float, cbr_interval: float,
              cbr_payload_bytes: int, warmup: float, duration: float,
              rate_mbps: float, seed: int,
              spatial_index: str = "auto") -> Tuple[float, float, float]:
    """One mesh run; returns (delivery ratio, mean repair latency, ctrl fraction)."""
    sim = Simulator(seed=seed)
    config = DsdvConfig(hello=HelloConfig(hello_interval=hello_interval),
                        advertise_interval=advertise_interval)
    scenario = MobileScenario(sim, policy=policy, unicast_rate_mbps=rate_mbps,
                              stop_time=duration, routing="dsdv",
                              routing_config=config, spatial_index=spatial_index)

    # Corner nodes (source and destination) stay pinned; every interior node
    # roams the grid's bounding box under random waypoint.
    corners = ((0, 0), (grid_side - 1, grid_side - 1))

    def model_factory(row, col, area):
        if (row, col) in corners or speed <= 0:
            return None
        return RandomWaypoint(area=area, speed_range=(speed, speed))

    nodes = populate_grid(scenario, grid_side, grid_spacing_m, model_factory)

    network = scenario.network
    source_node = nodes[0]       # corner (0, 0)
    sink_node = nodes[-1]        # corner (grid_side - 1, grid_side - 1)
    sink = UdpSink(sink_node)
    source = CbrSource(source_node, sink_node.ip, interval=cbr_interval,
                       payload_bytes=cbr_payload_bytes)
    # Let DSDV converge on the initial topology before offering traffic.
    source.start(warmup)
    sim.run(until=duration)

    sent = source.packets_sent
    delivery = sink.packets_received / sent if sent else 0.0
    repairs = source_node.router.repair_latencies(sink_node.ip)
    repair_latency = mean(repairs) if repairs else 0.0
    payload = sum(node.mac_stats.payload_bytes_sent for node in network.nodes)
    control = sum(node.mac_stats.routing_bytes_sent for node in network.nodes)
    control_fraction = control / payload if payload else 0.0
    return delivery, repair_latency, control_fraction


def run(speeds_mps: Sequence[float] = DEFAULT_SPEEDS_MPS, grid_side: int = 3,
        grid_spacing_m: float = DEFAULT_GRID_SPACING_M,
        hello_interval: float = 0.5, advertise_interval: float = 1.5,
        cbr_interval: float = 0.06, cbr_payload_bytes: int = 500,
        warmup: float = 3.0, duration: float = 20.0, rate_mbps: float = 0.65,
        include_no_aggregation: bool = True, seed: int = 1,
        spatial_index: str = "auto") -> ExperimentResult:
    """Sweep roamer speed; report delivery, repair latency and overhead per policy."""
    if grid_side < 2:
        raise ExperimentError("mob03 needs at least a 2x2 grid")
    if warmup >= duration:
        raise ExperimentError("warmup must end before the run does")
    result = ExperimentResult(
        experiment_id="mob03",
        description="DSDV mesh: delivery ratio + route repair vs speed (NA/UA/BA)",
    )
    variants = [("UA", unicast_aggregation), ("BA", broadcast_aggregation)]
    if include_no_aggregation:
        variants.insert(0, ("NA", no_aggregation))
    for label, policy_factory in variants:
        delivery_series = result.add_series(Series(label=f"{label} delivery"))
        repair_series = result.add_series(Series(label=f"{label} repair s"))
        control_series = result.add_series(Series(label=f"{label} ctrl frac"))
        for speed in speeds_mps:
            delivery, repair, control = _run_once(
                policy_factory(), speed=speed, grid_side=grid_side,
                grid_spacing_m=grid_spacing_m, hello_interval=hello_interval,
                advertise_interval=advertise_interval, cbr_interval=cbr_interval,
                cbr_payload_bytes=cbr_payload_bytes, warmup=warmup,
                duration=duration, rate_mbps=rate_mbps, seed=seed,
                spatial_index=spatial_index)
            delivery_series.add(speed, delivery)
            repair_series.add(speed, repair)
            control_series.add(speed, control)

    result.note("Beyond the paper: corner-to-corner traffic crosses a grid mesh "
                "whose interior relays roam under random waypoint; DSDV "
                "(HELLO discovery + sequence-numbered advertisements) repairs "
                "the path instead of relying on the paper's static routes.")
    result.note("Control-plane beacons ride through the real MAC, so the "
                "aggregation policy prices them differently: under BA they "
                "share frames with data, under NA each beacon pays its own "
                "contention.")
    return result


#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "mob03"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"speeds_mps": (2.0,), "grid_side": 2, "duration": 6.0,
               "warmup": 2.0, "include_no_aggregation": False}
