"""The numbers the paper reports, for side-by-side comparison.

Only the values printed in the paper's tables (and the qualitative claims
made about its figures) are recorded here; EXPERIMENTS.md compares them with
what the reproduction measures.  Absolute throughputs from the prototype are
not expected to match a simulator — the comparison targets are orderings,
ratios and threshold positions.
"""

from __future__ import annotations

PAPER_VALUES = {
    # Table 2: 2-hop UDP throughput (Mbps) and improvement of UA over NA.
    "table2": {
        "rates_mbps": [0.65, 1.3],
        "no_aggregation_mbps": {0.65: 0.253, 1.3: 0.430},
        "unicast_aggregation_mbps": {0.65: 0.273, 1.3: 0.481},
        "improvement_percent": {0.65: 7.9, 1.3: 11.9},
    },
    # Figure 7: throughput vs maximum aggregation size; thresholds in KB.
    "figure7": {
        "threshold_kb": {0.65: 5, 1.3: 11, 1.95: 15},
        "threshold_samples": 120_000,
        "chosen_max_aggregation_kb": 5,
    },
    # Figure 8: TCP throughput improves with UA over NA for 2- and 3-hop, and
    # the improvement grows with the data rate.
    "figure8": {"qualitative": "UA > NA at every rate; gap grows with rate"},
    # Figure 9: with flooding, the aggregation-vs-none gap grows as the
    # flooding interval shrinks.
    "figure9": {
        "qualitative": "gap grows as flooding interval decreases",
        "throughput_with_flooding_5s_mbps": {0.65: 0.26, 1.3: 0.47},
        "throughput_without_flooding_mbps": {0.65: 0.27, 1.3: 0.48},
    },
    # Figure 10: fixed broadcast rates. BA(0.65) only wins at 0.65; BA(1.3)
    # wins up to 1.3 then ties; BA(2.6) always wins.
    "figure10": {"qualitative": "low fixed broadcast rates hurt at high unicast rates"},
    # Figure 11: broadcast at the unicast rate, 2-hop.
    "figure11": {"max_gap_ba_over_ua_percent": 10.0},
    # Figure 12: 3-hop linear and star topologies.
    "figure12": {
        "max_gap_3hop_percent": 12.2,
        "max_gap_star_percent": 11.0,
    },
    # Figure 13: delayed BA.
    "figure13": {"max_gap_2hop_percent": 2.0, "max_gap_3hop_percent": 4.0},
    # Figure 14: disabling forward aggregation costs more at higher rates.
    "figure14": {"qualitative": "BA vs BA-no-forward gap grows with rate"},
    # Table 3: 2-hop relay-node detail.
    "table3": {
        "frame_size_bytes": {"NA": 765, "UA": 2662, "BA": 2727, "DBA": 3477},
        "transmissions_percent": {"NA": 100.0, "UA": 33.7, "BA": 26.7, "DBA": 21.1},
        "size_overhead_percent": {"NA": 15.1, "UA": 6.83, "BA": 6.55, "DBA": 5.8},
    },
    # Table 4: 2-hop relay-node time overhead (%) per rate.
    "table4": {
        0.65: {"NA": 22.4, "UA": 6.7, "BA": 5.8, "DBA": 5.2},
        1.3: {"NA": 34.9, "UA": 14.3, "BA": 11.4, "DBA": 10.3},
        1.95: {"NA": 44.4, "UA": 19.3, "BA": 15.5, "DBA": 14.3},
        2.6: {"NA": 52.1, "UA": 24.8, "BA": 19.9, "DBA": 17.7},
    },
    # Table 5: relay-node frame size (bytes), 2-hop vs star.
    "table5": {
        "UA": {"2hop": 2662, "star": 2651},
        "BA": {"2hop": 2727, "star": 3432},
    },
    # Table 6: relay-node size overhead (%), 2-hop vs star.
    "table6": {
        "UA": {"2hop": 6.83, "star": 6.83},
        "BA": {"2hop": 6.55, "star": 5.93},
    },
    # Table 7: relay-node transmission percentages, 2-hop vs star.
    "table7": {
        "UA": {"2hop": 33.7, "star": 30.7},
        "BA": {"2hop": 26.7, "star": 22.5},
    },
    # Table 8: frame size (bytes) at every node, 2-hop and 3-hop.
    "table8": {
        "UA": {"server_2hop": 3897, "relay_2hop": 2662, "client_2hop": 463,
               "server_3hop": 3451, "relay1_3hop": 2384, "relay2_3hop": 2224,
               "client_3hop": 443},
        "BA": {"server_2hop": 3488, "relay_2hop": 2727, "client_2hop": 447,
               "server_3hop": 3313, "relay1_3hop": 2538, "relay2_3hop": 2670,
               "client_3hop": 430},
    },
    # Experimental constants (Section 5).
    "setup": {
        "snr_db": 25.0,
        "tx_power_mw": 7.7,
        "node_spacing_m": 2.5,
        "udp_mac_frame_bytes": 1140,
        "tcp_mss_bytes": 1357,
        "tcp_data_mac_frame_bytes": 1464,
        "tcp_ack_mac_frame_bytes": 160,
        "file_size_mb": 0.2,
        "rates_mbps": [0.65, 1.3, 1.95, 2.6],
    },
}
