"""Mobile relay handoff: 2-hop TCP while the relay drifts out of range.

This experiment goes **beyond the paper**: every TCP result in Section 5 runs
over a frozen chain.  Here the two endpoints sit just outside each other's
radio range, so all traffic must cross a relay — and the relay circles on a
deterministic orbit that carries it out of range of both endpoints and back
once per period.  While the relay is away the transfer stalls (MAC retries
exhaust, TCP backs off its RTO); when it returns, the connection must recover
and resume.  Sweeping the orbit period trades outage length against outage
frequency.

Reported per policy (NA / UA / BA) over the swept orbit period: end-to-end
throughput of a fixed-size file transfer (0 when the file does not complete
within ``max_sim_time``).  A stationary-relay baseline (relay pinned at the
orbit's closest point) is recorded per policy as the no-outage reference.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.apps.file_transfer import run_file_transfer_pair
from repro.core.policies import (
    AggregationPolicy,
    broadcast_aggregation,
    no_aggregation,
    unicast_aggregation,
)
from repro.errors import ExperimentError
from repro.mobility.models import CircularOrbit
from repro.sim.simulator import Simulator
from repro.stats.results import ExperimentResult, Series
from repro.topology.mobile import MobileScenario

DEFAULT_ORBIT_PERIODS_S = (10.0, 20.0, 40.0)

#: Endpoint separation: beyond the ~12.6 m decodability limit of the default
#: indoor propagation model, so the endpoints cannot hear each other directly.
DEFAULT_ENDPOINT_GAP_M = 14.0


def _run_once(policy: AggregationPolicy, orbit_period: Optional[float],
              orbit_radius_m: float, endpoint_gap_m: float, file_bytes: int,
              rate_mbps: float, max_sim_time: float, idle_reprobe: bool, seed: int):
    """One transfer; ``orbit_period=None`` pins the relay at its start point.

    Returns (throughput Mbps, fraction of the file delivered) — the fraction
    distinguishes "stalled forever" from "almost made it" when the transfer
    does not complete within ``max_sim_time``.
    """
    sim = Simulator(seed=seed)
    scenario = MobileScenario(sim, policy=policy, unicast_rate_mbps=rate_mbps,
                              stop_time=max_sim_time)
    half = endpoint_gap_m / 2.0
    scenario.add_node((-half, 0.0))
    # The relay starts at the midpoint (in range of both endpoints); its
    # orbit center sits orbit_radius above it, so once per period it climbs
    # to 2x the radius away from the endpoint axis and returns.
    model = None
    if orbit_period is not None:
        model = CircularOrbit(radius=orbit_radius_m, period=orbit_period)
    scenario.add_node((0.0, 0.0), model)
    scenario.add_node((half, 0.0))
    scenario.connect_chain(1, 2, 3)

    network = scenario.network
    options = {"idle_reprobe": True} if idle_reprobe else None
    _, receiver = run_file_transfer_pair(network.node(1), network.node(3),
                                         file_bytes=file_bytes,
                                         connection_options=options)
    sim.run(until=max_sim_time)
    fraction = min(receiver.bytes_received / file_bytes, 1.0)
    return receiver.throughput_mbps(transfer_start=0.0), fraction


def run(orbit_periods: Sequence[float] = DEFAULT_ORBIT_PERIODS_S,
        orbit_radius_m: float = 5.0, endpoint_gap_m: float = DEFAULT_ENDPOINT_GAP_M,
        file_bytes: int = 60_000, rate_mbps: float = 0.65,
        max_sim_time: float = 120.0, include_no_aggregation: bool = True,
        include_stationary_baseline: bool = True, tcp_idle_reprobe: bool = False,
        seed: int = 1) -> ExperimentResult:
    """Sweep the relay's orbit period; report TCP throughput per policy.

    ``tcp_idle_reprobe=True`` enables the bounded idle re-probe mitigation
    for the RTO/orbit phase-locking (off by default so the experiment's
    published numbers are unchanged): after repeated RTOs the sender probes
    the path every few seconds instead of riding the exponential backoff, so
    the transfer resumes promptly once the relay returns.
    """
    if any(period <= 0 for period in orbit_periods):
        raise ExperimentError("orbit periods must be positive")
    result = ExperimentResult(
        experiment_id="mob02",
        description="2-hop TCP throughput vs relay orbit period (NA/UA/BA)",
    )
    variants = [("UA", unicast_aggregation), ("BA", broadcast_aggregation)]
    if include_no_aggregation:
        variants.insert(0, ("NA", no_aggregation))
    for label, policy_factory in variants:
        series = result.add_series(Series(label=label))
        progress = result.add_series(Series(label=f"{label} received fraction"))
        completed = 0
        for period in orbit_periods:
            throughput, fraction = _run_once(
                policy_factory(), orbit_period=period, orbit_radius_m=orbit_radius_m,
                endpoint_gap_m=endpoint_gap_m, file_bytes=file_bytes,
                rate_mbps=rate_mbps, max_sim_time=max_sim_time,
                idle_reprobe=tcp_idle_reprobe, seed=seed)
            series.add(period, throughput)
            progress.add(period, fraction)
            completed += 1 if throughput > 0 else 0
        result.add_metric(f"completed_fraction_{label}", completed / len(orbit_periods))
        if include_stationary_baseline:
            baseline, _ = _run_once(
                policy_factory(), orbit_period=None, orbit_radius_m=orbit_radius_m,
                endpoint_gap_m=endpoint_gap_m, file_bytes=file_bytes,
                rate_mbps=rate_mbps, max_sim_time=max_sim_time,
                idle_reprobe=tcp_idle_reprobe, seed=seed)
            result.add_metric(f"stationary_baseline_{label}", baseline)

    result.add_metric("relay_min_link_distance_m", endpoint_gap_m / 2.0)
    result.add_metric("relay_peak_link_distance_m",
                      math.hypot(endpoint_gap_m / 2.0, 2.0 * orbit_radius_m))
    result.note("Beyond the paper: the relay of the Figure 5 chain is mobile; the "
                "endpoints are out of mutual range, so throughput collapses to the "
                "handoff dynamics of the orbiting relay.")
    result.note("Slow orbits can stall transfers entirely: TCP's exponentially "
                "backed-off RTO (capped at 60 s) phase-locks with the outage "
                "cycle, so end-to-end retries keep landing while the relay is "
                "away — see the received-fraction series for partial progress.")
    return result


#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "mob02"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"orbit_periods": (8.0,), "file_bytes": 30_000, "max_sim_time": 30.0,
               "include_stationary_baseline": False}
