"""Experiment runners: one module per table/figure of the paper's evaluation.

Every module exposes a ``run(...)`` function returning an
:class:`~repro.stats.results.ExperimentResult`.  The default parameters
reproduce the paper's setup; the benchmarks pass reduced file sizes /
durations so the whole suite stays fast, which changes absolute numbers but
not the qualitative shape.
"""

from repro.experiments.scenarios import (
    StarRunResult,
    TcpRunResult,
    UdpRunResult,
    run_star_tcp,
    run_tcp_transfer,
    run_udp_saturation,
)
from repro.experiments.paper_values import PAPER_VALUES

__all__ = [
    "TcpRunResult",
    "UdpRunResult",
    "StarRunResult",
    "run_tcp_transfer",
    "run_udp_saturation",
    "run_star_tcp",
    "PAPER_VALUES",
]
