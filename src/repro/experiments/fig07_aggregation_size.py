"""Figure 7: throughput as a function of the maximum aggregation size.

A saturating UDP flow over a single hop, sweeping the MAC's maximum
aggregation size at several PHY rates.  The paper observes that throughput
rises with the aggregation size up to a threshold (~120 Ksamples worth of
payload: 5 KB at 0.65 Mbps, ~11 KB at 1.3 Mbps, ~15 KB at 1.95 Mbps) and then
collapses towards zero because subframes transmitted beyond the channel
coherence limit fail their CRCs and the whole unicast portion is discarded.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.policies import unicast_aggregation
from repro.experiments.scenarios import run_udp_saturation
from repro.stats.results import ExperimentResult, Series
from repro.units import kilobytes

DEFAULT_RATES_MBPS = (0.65, 1.3, 1.95)
DEFAULT_SIZES_KB = (2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18)


def run(rates_mbps: Sequence[float] = DEFAULT_RATES_MBPS,
        sizes_kb: Iterable[float] = DEFAULT_SIZES_KB,
        duration: float = 15.0, seed: int = 1) -> ExperimentResult:
    """Sweep the maximum aggregation size for each rate over a 1-hop UDP flow."""
    result = ExperimentResult(
        experiment_id="figure7",
        description="Throughput vs maximum aggregation size (1-hop saturating UDP)",
    )
    for rate in rates_mbps:
        series = result.add_series(Series(label=f"{rate} Mbps"))
        for size_kb in sizes_kb:
            policy = unicast_aggregation(max_aggregate_bytes=kilobytes(size_kb))
            outcome = run_udp_saturation(policy, hops=1, rate_mbps=rate,
                                         duration=duration, seed=seed)
            series.add(size_kb, outcome.throughput_mbps)
        peak_index = series.y_values.index(series.peak)
        result.add_metric(f"peak_size_kb_{rate}", series.x_values[peak_index])
    result.note("The paper reports thresholds of 5/11/15 KB at 0.65/1.3/1.95 Mbps "
                "(all ~120 Ksamples), with throughput collapsing beyond them.")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "fig07"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"rates_mbps": (0.65,), "sizes_kb": (2, 4, 6, 8), "duration": 4.0}
