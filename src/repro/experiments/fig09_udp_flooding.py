"""Figure 9: 2-hop UDP throughput under flooding.

Every node generates broadcast (flooding) frames at a fixed interval while a
saturating UDP flow crosses the 2-hop chain.  With aggregation enabled
(unicast + broadcast aggregation), the flooding frames ride along with the
data frames, so shrinking the flooding interval costs far less throughput
than it does without aggregation.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.policies import broadcast_aggregation, no_aggregation
from repro.experiments.scenarios import run_udp_saturation
from repro.stats.results import ExperimentResult, Series

DEFAULT_RATES_MBPS = (0.65, 1.3)
DEFAULT_FLOOD_INTERVALS_S = (0.25, 0.5, 1.0, 2.0, 5.0)


def run(rates_mbps: Sequence[float] = DEFAULT_RATES_MBPS,
        flooding_intervals: Sequence[float] = DEFAULT_FLOOD_INTERVALS_S,
        duration: float = 20.0, flooding_payload_bytes: int = 64,
        seed: int = 1, spatial_index: str = "auto") -> ExperimentResult:
    """Sweep the flooding interval for aggregation vs no aggregation at each rate."""
    result = ExperimentResult(
        experiment_id="figure9",
        description="2-hop UDP throughput vs flooding interval, aggregation vs none",
    )
    for rate in rates_mbps:
        agg_series = result.add_series(Series(label=f"aggregation {rate} Mbps"))
        none_series = result.add_series(Series(label=f"no aggregation {rate} Mbps"))
        for interval in flooding_intervals:
            agg = run_udp_saturation(broadcast_aggregation(), hops=2, rate_mbps=rate,
                                     duration=duration, flooding_interval=interval,
                                     flooding_payload_bytes=flooding_payload_bytes, seed=seed,
                                     spatial_index=spatial_index)
            none = run_udp_saturation(no_aggregation(), hops=2, rate_mbps=rate,
                                      duration=duration, flooding_interval=interval,
                                      flooding_payload_bytes=flooding_payload_bytes, seed=seed,
                                      spatial_index=spatial_index)
            agg_series.add(interval, agg.throughput_mbps)
            none_series.add(interval, none.throughput_mbps)
        # The gap at the smallest interval should exceed the gap at the largest.
        smallest_gap = agg_series.y_values[0] - none_series.y_values[0]
        largest_gap = agg_series.y_values[-1] - none_series.y_values[-1]
        result.add_metric(f"gap_at_smallest_interval_{rate}", smallest_gap)
        result.add_metric(f"gap_at_largest_interval_{rate}", largest_gap)
    result.note("Paper: the performance gap between aggregation and no aggregation "
                "increases as the flooding interval decreases.")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "fig09"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"rates_mbps": (0.65,), "flooding_intervals": (0.5, 2.0), "duration": 4.0}
