"""Figure 12: TCP over more complex topologies (3-hop chain and star).

More relay nodes (3-hop) and more congestion (star, two sessions through one
relay) both increase the aggregation opportunities, so the BA-over-UA gap
grows compared with the 2-hop case: the paper reports maxima of 12.2 % for
3-hop and 11 % for the star (worst-case session throughput).
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.file_transfer import PAPER_FILE_BYTES
from repro.core.policies import broadcast_aggregation, no_aggregation, unicast_aggregation
from repro.experiments.scenarios import run_star_tcp, run_tcp_transfer
from repro.stats.results import ExperimentResult, Series

DEFAULT_RATES_MBPS = (0.65, 1.3, 1.95, 2.6)


def run(rates_mbps: Sequence[float] = DEFAULT_RATES_MBPS,
        file_bytes: int = PAPER_FILE_BYTES, seed: int = 1,
        include_no_aggregation: bool = True) -> ExperimentResult:
    """BA vs UA over the 3-hop chain and the two-session star."""
    result = ExperimentResult(
        experiment_id="figure12",
        description="TCP throughput over 3-hop linear and star topologies (BA vs UA)",
    )

    # --- 3-hop linear -----------------------------------------------------
    for label, policy in (("UA 3-hop", unicast_aggregation()),
                          ("BA 3-hop", broadcast_aggregation())):
        series = result.add_series(Series(label=label))
        for rate in rates_mbps:
            outcome = run_tcp_transfer(policy, hops=3, rate_mbps=rate,
                                       file_bytes=file_bytes, seed=seed)
            series.add(rate, outcome.throughput_mbps)
    if include_no_aggregation:
        series = result.add_series(Series(label="NA 3-hop"))
        for rate in rates_mbps:
            outcome = run_tcp_transfer(no_aggregation(), hops=3, rate_mbps=rate,
                                       file_bytes=file_bytes, seed=seed)
            series.add(rate, outcome.throughput_mbps)

    # --- star (worst-case session) -----------------------------------------
    for label, policy in (("UA star", unicast_aggregation()),
                          ("BA star", broadcast_aggregation())):
        series = result.add_series(Series(label=label))
        for rate in rates_mbps:
            outcome = run_star_tcp(policy, rate_mbps=rate, file_bytes=file_bytes, seed=seed)
            series.add(rate, outcome.worst_case_throughput_mbps)

    for topology in ("3-hop", "star"):
        ua = result.get_series(f"UA {topology}")
        ba = result.get_series(f"BA {topology}")
        gaps = [100.0 * (b - u) / u if u > 0 else 0.0
                for u, b in zip(ua.y_values, ba.y_values)]
        result.add_metric(f"max_gap_percent_{topology}", max(gaps))
    result.note("Paper: maximum BA-over-UA gap of 12.2% (3-hop) and 11% (star), both "
                "larger than the 10% observed over 2 hops.")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "fig12"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"rates_mbps": (0.65,), "file_bytes": 40_000}
