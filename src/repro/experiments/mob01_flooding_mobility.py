"""Mobile flooding: broadcast delivery ratio vs node speed for BA/UA/NA.

This experiment goes **beyond the paper**: Section 5's testbed is stationary,
so its flooding results (Figure 9) never see the neighbor set change.  Here a
pair of stationary anchor nodes carries a saturating UDP flow while the
remaining nodes roam the area under random-waypoint mobility, every node
flooding broadcast control packets.  Log-normal shadowing makes motion change
link loss, not just distance, so flood frames are lost whenever sender and
receiver drift out of range — and the aggregation policy decides how cheaply
the surviving floods ride along with the data traffic.

Reported per policy (NA / UA / BA) over the swept node speed:

* ``<policy> delivery`` — flood delivery ratio: packets received across all
  nodes divided by packets sent times (N - 1) potential receivers;
* ``<policy> udp Mbps`` — goodput of the anchor pair's UDP flow, showing what
  the flooding load costs the data traffic under each policy.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.apps.cbr import CbrSource, UdpSink
from repro.channel.propagation import LogNormalShadowing
from repro.core.policies import (
    AggregationPolicy,
    broadcast_aggregation,
    no_aggregation,
    unicast_aggregation,
)
from repro.errors import ExperimentError
from repro.mobility.models import RandomWaypoint
from repro.net.flooding import FloodingSource
from repro.sim.simulator import Simulator
from repro.stats.results import ExperimentResult, Series
from repro.topology.mobile import MobileScenario
from repro.units import mbps

DEFAULT_SPEEDS_MPS = (0.5, 2.0, 6.0)

#: Spacing of the two stationary anchor nodes (the paper's 2.5 m).
ANCHOR_SPACING_M = 2.5


def _run_once(policy: AggregationPolicy, speed: float, node_count: int, area_m: float,
              flooding_interval: float, flooding_payload_bytes: int, duration: float,
              rate_mbps: float, shadowing_sigma_db: float, pause_time: float,
              seed: int, spatial_index: str = "auto") -> Tuple[float, float]:
    """One mobile flooding run; returns (delivery ratio, UDP goodput Mbps)."""
    sim = Simulator(seed=seed)
    propagation: Optional[LogNormalShadowing] = None
    if shadowing_sigma_db > 0:
        propagation = LogNormalShadowing(sigma_db=shadowing_sigma_db)
    scenario = MobileScenario(sim, policy=policy, propagation=propagation,
                              unicast_rate_mbps=rate_mbps, stop_time=duration,
                              spatial_index=spatial_index)

    # Two stationary anchors near the center carry the UDP flow.
    center = area_m / 2.0
    scenario.add_node((center - ANCHOR_SPACING_M / 2.0, center))
    scenario.add_node((center + ANCHOR_SPACING_M / 2.0, center))
    # Roaming nodes: placement and trajectories are drawn from dedicated
    # seeded streams, so runs replicate per seed and across processes.
    placement = sim.random.stream("mob01.placement")
    area = (0.0, 0.0, area_m, area_m)
    for _ in range(node_count - 2):
        position = (placement.uniform(0.0, area_m), placement.uniform(0.0, area_m))
        model = None
        if speed > 0:
            model = RandomWaypoint(area=area, speed_range=(speed, speed),
                                   pause_time=pause_time)
        scenario.add_node(position, model)
    scenario.connect_pair(1, 2)

    network = scenario.network
    sink = UdpSink(network.node(2))
    source = CbrSource.saturating(network.node(1), network.node(2).ip,
                                  link_rate_bps=mbps(rate_mbps))
    source.start(0.001)
    flooders = []
    for node in network.nodes:
        flooder = FloodingSource(sim, node.network, node.ip,
                                 interval=flooding_interval,
                                 payload_bytes=flooding_payload_bytes)
        flooder.start()
        flooders.append(flooder)

    sim.run(until=duration)
    sent = sum(flooder.packets_sent for flooder in flooders)
    received = sum(node.network.stats.delivered_broadcast for node in network.nodes)
    potential = sent * (len(network.nodes) - 1)
    ratio = received / potential if potential else 0.0
    throughput = sink.throughput_mbps(measurement_start=0.0, measurement_end=duration)
    return ratio, throughput


def run(speeds_mps: Sequence[float] = DEFAULT_SPEEDS_MPS, node_count: int = 6,
        area_m: float = 26.0, flooding_interval: float = 0.25,
        flooding_payload_bytes: int = 64, duration: float = 8.0,
        rate_mbps: float = 0.65, shadowing_sigma_db: float = 4.0,
        pause_time: float = 0.0, seed: int = 1,
        spatial_index: str = "auto") -> ExperimentResult:
    """Sweep node speed; report flood delivery ratio and UDP goodput per policy."""
    if node_count < 2:
        raise ExperimentError("mob01 needs at least the two anchor nodes")
    result = ExperimentResult(
        experiment_id="mob01",
        description="flood delivery ratio vs node speed under mobility (NA/UA/BA)",
    )
    variants = [("NA", no_aggregation), ("UA", unicast_aggregation),
                ("BA", broadcast_aggregation)]
    for label, policy_factory in variants:
        delivery = result.add_series(Series(label=f"{label} delivery"))
        udp = result.add_series(Series(label=f"{label} udp Mbps"))
        for speed in speeds_mps:
            ratio, throughput = _run_once(
                policy_factory(), speed=speed, node_count=node_count, area_m=area_m,
                flooding_interval=flooding_interval,
                flooding_payload_bytes=flooding_payload_bytes, duration=duration,
                rate_mbps=rate_mbps, shadowing_sigma_db=shadowing_sigma_db,
                pause_time=pause_time, seed=seed, spatial_index=spatial_index)
            delivery.add(speed, ratio)
            udp.add(speed, throughput)

    top_speed = max(speeds_mps)
    ba = result.get_series("BA delivery")
    na = result.get_series("NA delivery")
    result.add_metric("ba_minus_na_delivery_at_top_speed",
                      ba.value_at(top_speed) - na.value_at(top_speed))
    result.note("Beyond the paper: Section 5 keeps all nodes stationary; here the "
                "flooding workload of Figure 9 runs while nodes roam under "
                "random-waypoint mobility and log-normal shadowing.")
    return result


#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "mob01"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"speeds_mps": (1.0, 4.0), "node_count": 4, "duration": 2.5,
               "flooding_interval": 0.2}
