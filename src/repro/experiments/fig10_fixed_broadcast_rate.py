"""Figure 10: TCP ACK aggregation with a *fixed* broadcast rate.

The broadcast portion (which carries the classified TCP ACKs) is pinned to
0.65, 1.3 or 2.6 Mbps while the unicast rate is swept.  A slow pinned
broadcast rate wins only while the unicast rate is comparable; once the
unicast rate exceeds it, the time spent transmitting the slow broadcast ACKs
dominates and BA falls back to (or below) plain unicast aggregation.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.file_transfer import PAPER_FILE_BYTES
from repro.core.policies import broadcast_aggregation, unicast_aggregation
from repro.experiments.scenarios import run_tcp_transfer
from repro.stats.results import ExperimentResult, Series

DEFAULT_UNICAST_RATES_MBPS = (0.65, 1.3, 1.95, 2.6)
DEFAULT_BROADCAST_RATES_MBPS = (0.65, 1.3, 2.6)


def run(unicast_rates_mbps: Sequence[float] = DEFAULT_UNICAST_RATES_MBPS,
        broadcast_rates_mbps: Sequence[float] = DEFAULT_BROADCAST_RATES_MBPS,
        hops: int = 2, file_bytes: int = PAPER_FILE_BYTES, seed: int = 1) -> ExperimentResult:
    """Sweep the unicast rate for UA and for BA with each pinned broadcast rate."""
    result = ExperimentResult(
        experiment_id="figure10",
        description="2-hop TCP throughput: BA with fixed broadcast rates vs UA",
    )
    ua_series = result.add_series(Series(label="UA"))
    for rate in unicast_rates_mbps:
        ua = run_tcp_transfer(unicast_aggregation(), hops=hops, rate_mbps=rate,
                              file_bytes=file_bytes, seed=seed)
        ua_series.add(rate, ua.throughput_mbps)

    for broadcast_rate in broadcast_rates_mbps:
        series = result.add_series(Series(label=f"BA (bcast {broadcast_rate} Mbps)"))
        for rate in unicast_rates_mbps:
            ba = run_tcp_transfer(
                broadcast_aggregation(broadcast_rate_mbps=broadcast_rate),
                hops=hops, rate_mbps=rate, broadcast_rate_mbps=broadcast_rate,
                file_bytes=file_bytes, seed=seed)
            series.add(rate, ba.throughput_mbps)
        # Record where this pinned rate stops beating UA.
        advantage = [ba_y - ua_y for ba_y, ua_y in zip(series.y_values, ua_series.y_values)]
        result.add_metric(f"advantage_at_max_rate_bcast_{broadcast_rate}", advantage[-1])
        result.add_metric(f"advantage_at_min_rate_bcast_{broadcast_rate}", advantage[0])
    result.note("Paper: BA(0.65) only helps at 0.65 Mbps unicast; BA(1.3) helps up to "
                "1.3 Mbps; BA(2.6) helps across the whole range.")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "fig10"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"unicast_rates_mbps": (0.65, 1.3), "broadcast_rates_mbps": (1.3,), "file_bytes": 40_000}
