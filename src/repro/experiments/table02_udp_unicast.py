"""Table 2: 2-hop UDP throughput with and without unicast aggregation.

The paper reports 0.253 vs 0.273 Mbps at 0.65 Mbps (+7.9 %) and 0.430 vs
0.481 Mbps at 1.3 Mbps (+11.9 %): aggregation helps, and helps more at the
higher rate because the fixed overheads weigh more there.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.policies import no_aggregation, unicast_aggregation
from repro.experiments.scenarios import run_udp_saturation
from repro.stats.results import ExperimentResult, TableResult

DEFAULT_RATES_MBPS = (0.65, 1.3)


def run(rates_mbps: Sequence[float] = DEFAULT_RATES_MBPS, duration: float = 20.0,
        seed: int = 1) -> ExperimentResult:
    """Measure 2-hop UDP throughput for NA and UA at each rate."""
    result = ExperimentResult(
        experiment_id="table2",
        description="2-hop UDP throughput, no aggregation vs unicast aggregation",
    )
    table = result.add_table(TableResult(
        title="rate (Mbps)", columns=["NA (Mbps)", "UA (Mbps)", "difference (%)"]))
    for rate in rates_mbps:
        na = run_udp_saturation(no_aggregation(), hops=2, rate_mbps=rate,
                                duration=duration, seed=seed)
        ua = run_udp_saturation(unicast_aggregation(), hops=2, rate_mbps=rate,
                                duration=duration, seed=seed)
        difference = (100.0 * (ua.throughput_mbps - na.throughput_mbps) / na.throughput_mbps
                      if na.throughput_mbps > 0 else 0.0)
        table.add_row(f"{rate}", [na.throughput_mbps, ua.throughput_mbps, difference])
        result.add_metric(f"improvement_percent_{rate}", difference)
    result.note("Paper: +7.9% at 0.65 Mbps and +11.9% at 1.3 Mbps; the improvement "
                "should grow with the rate.")
    return result

#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "table02"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"rates_mbps": (0.65,), "duration": 4.0}
