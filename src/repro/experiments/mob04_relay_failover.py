"""Relay failover: DSDV reconvergence onto a backup path vs static outage.

``mob02`` showed what happens when the only relay of a 2-hop path orbits out
of range under the paper's static-routing assumption: the transfer stalls for
the whole outage (and TCP's backed-off RTO can phase-lock with the orbit).
This experiment replaces that permanent outage with *measured reconvergence*:
the topology offers a **backup relay** on a detour, and the DSDV control
plane (:mod:`repro.net.dynamic_routing`) re-routes onto it when HELLO expiry
declares the orbiting primary relay gone.

Topology (endpoints out of mutual range, gap beyond the ~12.5 m decodability
limit)::

            orbit (radius r, period P)
              .--O--.
             /       \\          primary relay: starts at the midpoint,
      A ----+----R----+---- B    orbits out of range once per period
             \\       /
              `--S--'            backup relay: pinned below the axis,
                                 always in range of both endpoints

Reported per routing mode over the swept orbit period, for a UDP CBR flow
A → B:

* ``dsdv delivery`` / ``static delivery`` — delivery ratio (received/sent);
  static routes pin the path through the primary relay, so its delivery
  collapses with the outage fraction while DSDV's stays near 1;
* ``dsdv reconvergence s`` — mean route-repair latency at the source (gap
  between "broken" and "restored" in the source router's route log), i.e.
  how long delivery was down before the backup path took over;
* ``dsdv outage s`` / ``static outage s`` — the longest gap between
  consecutive sink arrivals, the application's view of the same repair.
"""

from __future__ import annotations

import math
from statistics import mean
from typing import Sequence, Tuple

from repro.apps.cbr import CbrSource, UdpSink
from repro.core.policies import AggregationPolicy, broadcast_aggregation
from repro.errors import ExperimentError
from repro.mobility.models import CircularOrbit
from repro.net.discovery import HelloConfig
from repro.net.dynamic_routing import DsdvConfig
from repro.sim.simulator import Simulator
from repro.stats.results import ExperimentResult, Series
from repro.topology.mobile import MobileScenario

DEFAULT_ORBIT_PERIODS_S = (20.0, 40.0)

#: Endpoint separation: beyond the ~12.5 m decodability limit of the default
#: indoor propagation model, so all traffic must cross one of the relays.
DEFAULT_ENDPOINT_GAP_M = 14.0


def _run_once(policy: AggregationPolicy, routing: str, orbit_period: float,
              orbit_radius_m: float, endpoint_gap_m: float,
              backup_offset_m: float, hello_interval: float,
              advertise_interval: float, cbr_interval: float,
              cbr_payload_bytes: int, warmup: float, duration: float,
              rate_mbps: float, seed: int) -> Tuple[float, float, float]:
    """One failover run; returns (delivery ratio, mean repair s, max arrival gap s)."""
    sim = Simulator(seed=seed)
    config = DsdvConfig(hello=HelloConfig(hello_interval=hello_interval),
                        advertise_interval=advertise_interval)
    scenario = MobileScenario(
        sim, policy=policy, unicast_rate_mbps=rate_mbps, stop_time=duration,
        routing=routing, routing_config=config if routing == "dsdv" else None)

    half = endpoint_gap_m / 2.0
    a = scenario.add_node((-half, 0.0))
    # Primary relay: starts at the midpoint; its orbit center sits radius
    # above, carrying it to 2x radius off-axis (out of range of both
    # endpoints) once per period.
    relay = scenario.add_node((0.0, 0.0),
                              CircularOrbit(radius=orbit_radius_m,
                                            period=orbit_period))
    backup = scenario.add_node((0.0, -backup_offset_m))
    b = scenario.add_node((half, 0.0))
    if routing == "static":
        # The paper's assumption: the path is pinned through the primary
        # relay, exactly like mob02 — outages last as long as the orbit
        # keeps the relay away.
        scenario.connect_chain(a.index, relay.index, b.index)

    network = scenario.network
    sink = UdpSink(network.node(b.index))
    source = CbrSource(network.node(a.index), b.ip, interval=cbr_interval,
                       payload_bytes=cbr_payload_bytes)
    source.start(warmup)
    sim.run(until=duration)

    sent = source.packets_sent
    delivery = sink.packets_received / sent if sent else 0.0
    # The application's outage view: the largest inter-arrival gap, extended
    # by silence at either end of the run.
    largest_gap = sink.largest_arrival_gap
    if sink.first_arrival is None:
        largest_gap = duration - warmup
    else:
        largest_gap = max(largest_gap, sink.first_arrival - warmup,
                          duration - sink.last_arrival)
    repair = 0.0
    if routing == "dsdv":
        repairs = network.node(a.index).router.repair_latencies(b.ip)
        repair = mean(repairs) if repairs else 0.0
    return delivery, repair, largest_gap


def run(orbit_periods: Sequence[float] = DEFAULT_ORBIT_PERIODS_S,
        orbit_radius_m: float = 6.0, endpoint_gap_m: float = DEFAULT_ENDPOINT_GAP_M,
        backup_offset_m: float = 5.0, hello_interval: float = 0.5,
        advertise_interval: float = 1.5, cbr_interval: float = 0.05,
        cbr_payload_bytes: int = 500, warmup: float = 3.0,
        duration: float = 60.0, rate_mbps: float = 0.65,
        include_static_baseline: bool = True, seed: int = 1) -> ExperimentResult:
    """Sweep the orbit period; compare DSDV failover with the static baseline."""
    if any(period <= 0 for period in orbit_periods):
        raise ExperimentError("orbit periods must be positive")
    half = endpoint_gap_m / 2.0
    if math.hypot(half, backup_offset_m) >= 12.0:
        raise ExperimentError("backup relay would sit at the edge of decodability")
    result = ExperimentResult(
        experiment_id="mob04",
        description="relay failover: DSDV reconvergence vs static outage",
    )
    modes = [("dsdv", "dsdv")]
    if include_static_baseline:
        modes.append(("static", "static"))
    for label, routing in modes:
        delivery_series = result.add_series(Series(label=f"{label} delivery"))
        outage_series = result.add_series(Series(label=f"{label} outage s"))
        reconvergence_series = None
        if routing == "dsdv":
            reconvergence_series = result.add_series(
                Series(label="dsdv reconvergence s"))
        for period in orbit_periods:
            delivery, repair, largest_gap = _run_once(
                broadcast_aggregation(), routing=routing, orbit_period=period,
                orbit_radius_m=orbit_radius_m, endpoint_gap_m=endpoint_gap_m,
                backup_offset_m=backup_offset_m, hello_interval=hello_interval,
                advertise_interval=advertise_interval,
                cbr_interval=cbr_interval, cbr_payload_bytes=cbr_payload_bytes,
                warmup=warmup, duration=duration, rate_mbps=rate_mbps,
                seed=seed)
            delivery_series.add(period, delivery)
            outage_series.add(period, largest_gap)
            if reconvergence_series is not None:
                reconvergence_series.add(period, repair)

    dsdv_delivery = result.get_series("dsdv delivery")
    result.add_metric("dsdv_min_delivery", min(dsdv_delivery.y_values))
    if include_static_baseline:
        static_delivery = result.get_series("static delivery")
        result.add_metric("dsdv_minus_static_delivery",
                          min(dsdv_delivery.y_values) - min(static_delivery.y_values))
    result.add_metric("relay_peak_link_distance_m",
                      math.hypot(half, 2.0 * orbit_radius_m))
    result.add_metric("backup_link_distance_m", math.hypot(half, backup_offset_m))
    result.note("Replaces mob02's permanent outage with measured reconvergence: "
                "when HELLO expiry declares the orbiting relay gone, DSDV "
                "re-routes onto the backup relay and delivery resumes; the "
                "static baseline stays down until the orbit returns.")
    result.note("Reconvergence is bounded by the HELLO hold time plus the "
                "advertisement that re-propagates the destination's sequence "
                "number along the backup path.")
    return result


#: Campaign registry hooks (see :mod:`repro.campaign.registry`).
EXPERIMENT_ID = "mob04"
#: Reduced sweep used by campaign runs unless ``--full`` is given.
FAST_PARAMS = {"orbit_periods": (15.0,), "duration": 18.0, "warmup": 2.0,
               "cbr_interval": 0.08, "include_static_baseline": False}
