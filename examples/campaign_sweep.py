"""Replicated campaign example: Figure 9 over several seeds, in parallel.

Runs the Figure 9 flooding sweep over five seeds on up to four worker
processes, prints the aggregated mean ± 95% CI per point, and demonstrates
that a second pass is served from the on-disk cache.

Run with::

    PYTHONPATH=src python examples/campaign_sweep.py
"""

from __future__ import annotations

import tempfile

from repro.campaign import CampaignRunner, ResultCache


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="campaign-cache-") as cache_dir:
        cache = ResultCache(cache_dir)
        runner = CampaignRunner(jobs=4, cache=cache, timeout=300.0,
                                progress=lambda line: print(f"  {line}"))

        print("first pass (cold cache):")
        outcome = runner.run_campaign("fig09", seeds=[1, 2, 3, 4, 5])
        print()
        print(outcome.aggregate.to_text())
        print()
        for label, series in outcome.aggregate.series.items():
            for x, y, err in zip(series.x_values, series.y_values, series.y_errors):
                print(f"  {label:28} interval={x:<5} {y:.4f} ± {err:.4f} Mbps")

        print()
        print("second pass (warm cache):")
        runner.run_campaign("fig09", seeds=[1, 2, 3, 4, 5])
        print(f"  {cache.stats_line}")


if __name__ == "__main__":
    main()
