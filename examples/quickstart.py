#!/usr/bin/env python3
"""Quickstart: a 2-hop TCP file transfer with and without aggregation.

Builds the paper's basic scenario (Figure 5 with two hops), runs the same
0.2 MB one-way file transfer under no aggregation (NA), unicast aggregation
(UA) and broadcast aggregation with TCP-ACK classification (BA), and prints
the end-to-end throughput plus the relay node's view of the traffic.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Simulator,
    broadcast_aggregation,
    build_linear_chain,
    no_aggregation,
    unicast_aggregation,
)
from repro.apps import run_file_transfer_pair
from repro.units import megabytes


def run_variant(name, policy, rate_mbps=1.3, file_bytes=megabytes(0.2)):
    """Run one transfer and return (throughput, relay summary)."""
    sim = Simulator(seed=42)
    network = build_linear_chain(sim, hops=2, policy=policy, unicast_rate_mbps=rate_mbps)
    sender, receiver = run_file_transfer_pair(network.node(1), network.node(3),
                                              file_bytes=file_bytes)
    sim.run(until=300.0)
    relay = network.node(2).mac_stats
    return receiver.throughput_mbps(transfer_start=0.0), relay.summary()


def main() -> None:
    print("2-hop TCP file transfer (0.2 MB, 1.3 Mbps PHY rate)")
    print("-" * 72)
    for name, policy in (("NA  (no aggregation)", no_aggregation()),
                         ("UA  (unicast aggregation)", unicast_aggregation()),
                         ("BA  (broadcast aggregation + TCP-ACK classification)",
                          broadcast_aggregation())):
        throughput, relay = run_variant(name, policy)
        print(f"\n{name}")
        print(f"  end-to-end throughput : {throughput:.3f} Mbps")
        print(f"  relay transmissions   : {relay['data_transmissions']}")
        print(f"  relay avg frame size  : {relay['average_frame_size']:.0f} B")
        print(f"  relay subframes/frame : {relay['average_subframes_per_frame']:.2f}")
        print(f"  relay time overhead   : {100 * relay['time_overhead']:.1f} %")


if __name__ == "__main__":
    main()
