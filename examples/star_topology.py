#!/usr/bin/env python3
"""Two TCP sessions through a congested relay (the Figure 12 star scenario).

Nodes 3 and 4 each send a file to node 1 through the central relay (node 2).
At the relay, the TCP data of both sessions shares one next hop while the
reverse TCP ACKs are destined to two different servers — the case where only
broadcast aggregation (which does not require a common destination) can merge
everything into one transmission.

Run with::

    python examples/star_topology.py
"""

from __future__ import annotations

from repro import broadcast_aggregation, unicast_aggregation
from repro.experiments import run_star_tcp
from repro.stats.collect import relay_detail
from repro.units import megabytes


def main() -> None:
    rate_mbps = 1.3
    file_bytes = megabytes(0.2)
    print(f"Star topology, two 2-hop TCP sessions (3->1 and 4->1) at {rate_mbps} Mbps")
    print("-" * 72)
    for name, policy in (("UA", unicast_aggregation()), ("BA", broadcast_aggregation())):
        outcome = run_star_tcp(policy, rate_mbps=rate_mbps, file_bytes=file_bytes, seed=11)
        detail = relay_detail(outcome.network, relay_indices=[2])
        session_1, session_2 = outcome.session_throughputs_mbps
        print(f"\n{name}:")
        print(f"  session throughputs          : {session_1:.3f} / {session_2:.3f} Mbps")
        print(f"  worst-case session throughput: {outcome.worst_case_throughput_mbps:.3f} Mbps")
        print(f"  relay transmissions          : {detail['transmissions']:.0f}")
        print(f"  relay average frame size     : {detail['average_frame_size']:.0f} B")
        print(f"  relay subframes per frame    : {detail['average_subframes_per_frame']:.2f}")


if __name__ == "__main__":
    main()
