#!/usr/bin/env python3
"""Broadcast aggregation under flooding (the Figure 9 scenario).

A saturating UDP flow crosses a 2-hop chain while every node floods broadcast
control frames (as a routing protocol would during route discovery).  The
script sweeps the flooding interval and compares full aggregation against no
aggregation, showing how aggregation absorbs the flooding overhead.

Run with::

    python examples/flooding_scenario.py
"""

from __future__ import annotations

from repro import broadcast_aggregation, no_aggregation
from repro.experiments import run_udp_saturation


def main() -> None:
    rate_mbps = 1.3
    print(f"2-hop saturating UDP at {rate_mbps} Mbps with per-node flooding")
    print(f"{'flood interval':>16} {'aggregation':>14} {'no aggregation':>16} {'gap':>8}")
    for interval in (0.25, 0.5, 1.0, 2.0, 5.0):
        aggregated = run_udp_saturation(broadcast_aggregation(), hops=2, rate_mbps=rate_mbps,
                                        duration=12.0, flooding_interval=interval, seed=7)
        plain = run_udp_saturation(no_aggregation(), hops=2, rate_mbps=rate_mbps,
                                   duration=12.0, flooding_interval=interval, seed=7)
        gap = aggregated.throughput_mbps - plain.throughput_mbps
        print(f"{interval:>14.2f}s {aggregated.throughput_mbps:>12.3f}Mb "
              f"{plain.throughput_mbps:>14.3f}Mb {gap:>7.3f}Mb")

    # Show how much of the aggregated traffic was flooding riding along for free.
    relay = aggregated.network.node(2).mac_stats
    print("\nrelay node with aggregation (0.25 s flooding):")
    print(f"  data transmissions        : {relay.data_transmissions}")
    print(f"  broadcast subframes sent  : {relay.broadcast_subframes_sent}")
    print(f"  unicast subframes sent    : {relay.unicast_subframes_sent}")


if __name__ == "__main__":
    main()
