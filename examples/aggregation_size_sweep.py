#!/usr/bin/env python3
"""Sweep of the maximum aggregation size (the Figure 7 experiment).

Shows the throughput-vs-aggregation-size curve for several PHY rates and the
collapse beyond the ~120 Ksample channel-coherence ceiling of the Hydra PHY,
which is why the paper settles on a 5 KB maximum aggregation size.

Run with::

    python examples/aggregation_size_sweep.py
"""

from __future__ import annotations

from repro.experiments import fig07_aggregation_size
from repro.phy.timing import PhyTimingConfig
from repro.phy.rates import hydra_rate_table
from repro.units import kilobytes


def main() -> None:
    result = fig07_aggregation_size.run(rates_mbps=(0.65, 1.3, 1.95),
                                        sizes_kb=(2, 3, 4, 5, 6, 8, 10, 12, 14, 16),
                                        duration=10.0)
    print(result.to_text())

    timing = PhyTimingConfig()
    rates = hydra_rate_table()
    print("\nAggregation sizes at the 120 Ksample coherence ceiling:")
    for mbps in (0.65, 1.3, 1.95):
        rate = rates.by_mbps(mbps)
        ceiling_bytes = timing.bytes_for_samples(120_000, rate)
        print(f"  {mbps:>5} Mbps: {ceiling_bytes / 1024:.1f} KB")
    print("\nThe paper picks 5 KB so that every supported rate stays below the ceiling.")
    chosen = kilobytes(5)
    print(f"Chosen maximum aggregation size: {chosen} bytes")


if __name__ == "__main__":
    main()
