"""Figure 14 benchmark: BA vs BA without forward aggregation (3-hop TCP)."""

from __future__ import annotations

from bench_common import BENCH_FILE_BYTES, run_once

from repro.experiments import fig14_forward_backward


def test_fig14_forward_aggregation_matters_more_at_high_rates(benchmark):
    result = run_once(benchmark, fig14_forward_backward.run,
                      rates_mbps=(0.65, 2.6), hops=3, file_bytes=BENCH_FILE_BYTES)
    print(result.to_text())

    full = result.get_series("BA")
    backward_only = result.get_series("BA no-forward")
    na = result.get_series("NA")
    # Full BA dominates backward-only BA, which still beats no aggregation.
    assert full.value_at(2.6) > backward_only.value_at(2.6)
    assert backward_only.value_at(2.6) > na.value_at(2.6)
    # The gap between BA and backward-only grows with the unicast rate.
    assert (result.metrics["gap_percent_at_highest_rate"]
            > result.metrics["gap_percent_at_lowest_rate"])
