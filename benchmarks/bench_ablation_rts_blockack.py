"""Ablation benchmarks beyond the paper's evaluation.

Two design knobs the paper discusses but does not sweep:

* the RTS/CTS exchange (Hydra always uses it) — with aggregation the
  handshake is amortised over more payload, so disabling it changes little;
* the block-ACK extension (Section 7 future work) — with the paper's
  all-or-nothing CRC rule a single corrupted subframe forces the whole
  unicast portion to be retransmitted; block ACKs retransmit only what was
  lost.  At the clean 25 dB operating point both behave the same, which is
  exactly why the paper could defer it.
"""

from __future__ import annotations

from bench_common import BENCH_FILE_BYTES, run_once

from repro.core import broadcast_aggregation
from repro.experiments import run_tcp_transfer
from repro.node.hydra import default_hydra_profile


def _throughput_with(use_rts_cts=True, use_block_ack=False):
    profile = default_hydra_profile()
    profile.use_rts_cts = use_rts_cts
    outcome = run_tcp_transfer(broadcast_aggregation(), hops=2, rate_mbps=2.6,
                               file_bytes=BENCH_FILE_BYTES, seed=5, profile=profile,
                               use_block_ack=use_block_ack)
    return outcome.throughput_mbps


def test_ablation_rts_cts_cost(benchmark):
    def run_pair():
        return _throughput_with(use_rts_cts=True), _throughput_with(use_rts_cts=False)

    with_rts, without_rts = run_once(benchmark, run_pair)
    print(f"BA 2-hop @2.6 Mbps: with RTS/CTS {with_rts:.3f} Mbps, "
          f"without {without_rts:.3f} Mbps")
    # Dropping the handshake can only help on a clean channel, and by a
    # bounded amount because aggregation already amortises it.
    assert without_rts >= with_rts * 0.95
    assert without_rts <= with_rts * 1.6


def test_ablation_block_ack_matches_baseline_on_clean_channel(benchmark):
    def run_pair():
        return _throughput_with(use_block_ack=False), _throughput_with(use_block_ack=True)

    baseline, block_ack = run_once(benchmark, run_pair)
    print(f"BA 2-hop @2.6 Mbps: all-or-nothing {baseline:.3f} Mbps, "
          f"block ACK {block_ack:.3f} Mbps")
    assert block_ack > 0.8 * baseline
    assert block_ack < 1.25 * baseline
