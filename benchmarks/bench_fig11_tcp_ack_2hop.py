"""Figure 11 benchmark: 2-hop TCP, BA (same-rate broadcasts) vs UA vs NA."""

from __future__ import annotations

from bench_common import BENCH_FILE_BYTES, run_once

from repro.experiments import fig11_tcp_ack_2hop


def test_fig11_ba_beats_ua_beats_na(benchmark):
    result = run_once(benchmark, fig11_tcp_ack_2hop.run,
                      rates_mbps=(0.65, 1.3, 2.6), file_bytes=BENCH_FILE_BYTES)
    print(result.to_text())

    na = result.get_series("NA")
    ua = result.get_series("UA")
    ba = result.get_series("BA")
    for rate in (0.65, 1.3, 2.6):
        assert ba.value_at(rate) >= ua.value_at(rate)
        assert ua.value_at(rate) > na.value_at(rate)
    # Throughput increases with the PHY rate for every variant.
    assert ba.value_at(2.6) > ba.value_at(0.65)
    # The BA-over-UA gap is a single-digit-to-~10% effect, as in the paper.
    assert 0.0 <= result.metrics["max_gap_ba_over_ua_percent"] < 30.0
