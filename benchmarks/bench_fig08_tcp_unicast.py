"""Figure 8 benchmark: TCP throughput vs rate, unicast aggregation vs none."""

from __future__ import annotations

from bench_common import BENCH_FILE_BYTES, run_once

from repro.experiments import fig08_tcp_unicast


def test_fig08_ua_beats_na_and_gap_grows_with_rate(benchmark):
    result = run_once(benchmark, fig08_tcp_unicast.run,
                      rates_mbps=(0.65, 2.6), hops_list=(2, 3),
                      file_bytes=BENCH_FILE_BYTES)
    print(result.to_text())

    for hops in (2, 3):
        na = result.get_series(f"NA {hops}-hop")
        ua = result.get_series(f"UA {hops}-hop")
        # UA wins at every rate on both paths.
        for rate in (0.65, 2.6):
            assert ua.value_at(rate) > na.value_at(rate)
        # The relative gap grows with the data rate.
        gap_low = ua.value_at(0.65) / na.value_at(0.65)
        gap_high = ua.value_at(2.6) / na.value_at(2.6)
        assert gap_high > gap_low
    # Throughput drops when adding a hop (3 hops share the same collision domain).
    assert result.get_series("UA 3-hop").value_at(2.6) < result.get_series("UA 2-hop").value_at(2.6)
