"""Table 4 benchmark: relay-node time overhead vs data rate."""

from __future__ import annotations

from bench_common import BENCH_FILE_BYTES, run_once

from repro.experiments import table04_time_overhead


def test_table04_overhead_grows_with_rate_and_shrinks_with_aggregation(benchmark):
    result = run_once(benchmark, table04_time_overhead.run,
                      rates_mbps=(0.65, 2.6), file_bytes=BENCH_FILE_BYTES)
    print(result.to_text())

    overhead = {(name, rate): result.metrics[f"time_overhead_{name}_{rate}"]
                for name in ("NA", "UA", "BA", "DBA") for rate in (0.65, 2.6)}

    # Overhead grows with the data rate for every variant (paper: 22% -> 52% for NA).
    for name in ("NA", "UA", "BA", "DBA"):
        assert overhead[(name, 2.6)] > overhead[(name, 0.65)]
    # Aggregation cuts the overhead substantially at both rates.
    for rate in (0.65, 2.6):
        assert overhead[("UA", rate)] < overhead[("NA", rate)]
        assert overhead[("BA", rate)] <= overhead[("UA", rate)] * 1.05
    # The no-aggregation overhead at 2.6 Mbps is dominant (paper: ~52%).
    assert overhead[("NA", 2.6)] > 35.0
