"""city01 benchmark: a 2,000-node city is tractable because broadcasts are
pruned to the transmitter's neighbourhood by the channel's spatial index."""

from __future__ import annotations

from bench_common import run_once

from repro.experiments import city01_scale

NODE_COUNTS = (500, 1000, 2000)


def test_city01_scale(benchmark):
    result = run_once(benchmark, city01_scale.run,
                      scenario="city01_scale",
                      node_counts=NODE_COUNTS,
                      protocols=("flooding", "aodv"), flow_count=100,
                      duration=2.0, warmup=0.5)
    print(result.to_text())

    # The sub-O(N) acceptance gate: at the largest city, the channel
    # evaluated only a small neighbourhood's worth of link budgets per
    # transmission instead of the N-1 a full scan would pay.  The measured
    # fraction is ~0.014 at N=2000 (8 m lattice, ~26-node neighbourhood);
    # 0.1 leaves headroom without ever letting a full scan (1.0) pass.
    assert result.metrics["candidates_fraction_max_n"] < 0.1
    assert result.metrics["max_node_count"] == float(NODE_COUNTS[-1])

    # The candidates fraction must *fall* as the city grows: the reachable
    # neighbourhood is fixed by physics, so its share of N-1 shrinks.
    for protocol in ("flooding", "aodv"):
        fractions = result.get_series(f"{protocol} cand frac").y_values
        assert fractions == sorted(fractions, reverse=True)

    # Flooding does not rebroadcast, so per-potential-receiver delivery
    # decays as ~neighbourhood/N — the degradation city01 exists to show.
    assert result.metrics["flooding_delivery_drop"] > 0.0
    flooding = result.get_series("flooding delivery").y_values
    assert flooding == sorted(flooding, reverse=True)

    # AODV's expanding-ring discoveries stay local, so the routed flows keep
    # delivering at every city size.
    aodv = result.get_series("aodv delivery").y_values
    assert min(aodv) > 0.5
