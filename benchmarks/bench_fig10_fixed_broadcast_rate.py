"""Figure 10 benchmark: BA with pinned broadcast rates vs UA."""

from __future__ import annotations

from bench_common import BENCH_FILE_BYTES, run_once

from repro.experiments import fig10_fixed_broadcast_rate


def test_fig10_slow_pinned_broadcast_rate_hurts_at_high_unicast_rates(benchmark):
    result = run_once(benchmark, fig10_fixed_broadcast_rate.run,
                      unicast_rates_mbps=(0.65, 2.6), broadcast_rates_mbps=(0.65, 2.6),
                      file_bytes=BENCH_FILE_BYTES)
    print(result.to_text())

    ua = result.get_series("UA")
    slow_pin = result.get_series("BA (bcast 0.65 Mbps)")
    fast_pin = result.get_series("BA (bcast 2.6 Mbps)")

    # Broadcasting ACKs at 0.65 Mbps is fine when the unicast rate is 0.65 Mbps...
    assert slow_pin.value_at(0.65) >= 0.95 * ua.value_at(0.65)
    # ...but at 2.6 Mbps unicast the slow broadcast portion drags BA down to (or below) UA.
    assert slow_pin.value_at(2.6) <= 1.02 * ua.value_at(2.6)
    # Pinning the broadcast rate high keeps BA ahead of UA across the range.
    assert fast_pin.value_at(2.6) > ua.value_at(2.6)
    # And the fast pin dominates the slow pin at the high unicast rate.
    assert fast_pin.value_at(2.6) > slow_pin.value_at(2.6)
