"""Table 8 benchmark: frame size at every node, 2-hop vs 3-hop."""

from __future__ import annotations

from bench_common import BENCH_FILE_BYTES, run_once

from repro.experiments import table08_frame_sizes


def test_table08_per_node_frame_sizes(benchmark):
    result = run_once(benchmark, table08_frame_sizes.run,
                      rate_mbps=1.3, file_bytes=BENCH_FILE_BYTES)
    print(result.to_text())

    table = result.tables[0]
    for variant in ("UA", "BA"):
        # The server transmits large data aggregates, the client small ACK frames.
        assert table.cell(variant, "server (2)") > table.cell(variant, "client (2)")
        assert table.cell(variant, "server (3)") > table.cell(variant, "client (3)")
        # Relay frames sit between client and server sizes.
        assert (table.cell(variant, "client (2)") < table.cell(variant, "relay (2)")
                < table.cell(variant, "server (2)") * 1.2)
    # BA relays aggregate at least as much as UA relays on both path lengths.
    # (The paper additionally observes the gap *growing* with hop count; in this
    # reproduction the 2-hop BA relay already aggregates close to the 5 KB
    # budget, so the extra hop adds little — recorded in EXPERIMENTS.md.)
    assert result.metrics["relay_gap_2hop_bytes"] > 0.0
    assert result.metrics["relay2_gap_3hop_bytes"] > 0.0
