"""mob04 benchmark: DSDV failover onto a backup relay vs the static outage."""

from __future__ import annotations

from bench_common import run_once

from repro.experiments import mob04_relay_failover

PERIODS = (20.0, 40.0)


def test_mob04_relay_failover(benchmark):
    result = run_once(benchmark, mob04_relay_failover.run,
                      orbit_periods=PERIODS, duration=60.0)
    print(result.to_text())

    for period in PERIODS:
        dsdv = result.get_series("dsdv delivery").value_at(period)
        static = result.get_series("static delivery").value_at(period)
        # The whole point of the subsystem: delivery resumes via the backup
        # path instead of waiting out the orbit.
        assert dsdv > 0.6
        assert dsdv > static + 0.3
        reconvergence = result.get_series("dsdv reconvergence s").value_at(period)
        assert 0.0 < reconvergence < 6.0
        assert (result.get_series("dsdv outage s").value_at(period)
                < result.get_series("static outage s").value_at(period))

    # Geometry sanity: the orbit really leaves decodability, the backup
    # really stays inside it.
    assert result.metrics["relay_peak_link_distance_m"] > 12.5
    assert result.metrics["backup_link_distance_m"] < 12.5
