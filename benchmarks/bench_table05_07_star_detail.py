"""Tables 5-7 benchmark: relay-node detail, 2-hop chain vs star topology."""

from __future__ import annotations

from bench_common import BENCH_FILE_BYTES, run_once

from repro.experiments import table05_07_star_detail


def test_table05_07_star_helps_ba_but_not_ua(benchmark):
    result = run_once(benchmark, table05_07_star_detail.run,
                      rate_mbps=1.3, file_bytes=BENCH_FILE_BYTES)
    print(result.to_text())

    # Table 5's key observation: moving to the star helps BA's relay aggregation
    # more than UA's (ACKs for two different servers plus data for the shared
    # client can all ride in one BA frame, while UA gains nothing).  Our 2-hop
    # baseline already aggregates close to the 5 KB budget, so the absolute
    # growth is smaller than the paper's +705 B, but the ordering holds.
    assert result.metrics["ba_star_frame_growth_bytes"] > result.metrics["ua_star_frame_growth_bytes"]

    frame_size = result.tables[0]
    assert frame_size.cell("BA", "star") > frame_size.cell("UA", "star")
    transmissions = result.tables[2]
    # Table 7: BA needs relatively fewer transmissions than UA in both topologies.
    assert transmissions.cell("BA", "2-hop") < transmissions.cell("UA", "2-hop")
    assert transmissions.cell("BA", "star") < transmissions.cell("UA", "star")
