"""Figure 9 benchmark: 2-hop UDP throughput under flooding, aggregation vs none."""

from __future__ import annotations

from bench_common import BENCH_UDP_DURATION, run_once

from repro.experiments import fig09_udp_flooding


def test_fig09_aggregation_absorbs_flooding_overhead(benchmark):
    result = run_once(benchmark, fig09_udp_flooding.run,
                      scenario="fig09_udp_flooding",
                      rates_mbps=(1.3,), flooding_intervals=(0.25, 1.0, 5.0),
                      duration=BENCH_UDP_DURATION)
    print(result.to_text())

    aggregated = result.get_series("aggregation 1.3 Mbps")
    plain = result.get_series("no aggregation 1.3 Mbps")
    # Aggregation wins at every flooding interval.
    for interval in (0.25, 1.0, 5.0):
        assert aggregated.value_at(interval) > plain.value_at(interval)
    # The gap grows as the flooding interval shrinks (more flooding pressure).
    gap_heavy = aggregated.value_at(0.25) - plain.value_at(0.25)
    gap_light = aggregated.value_at(5.0) - plain.value_at(5.0)
    assert gap_heavy > gap_light
    # Flooding hurts the unaggregated stack more than the aggregated one.
    assert plain.value_at(0.25) < plain.value_at(5.0)
