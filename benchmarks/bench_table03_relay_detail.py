"""Table 3 benchmark: 2-hop relay-node frame size, transmissions and size overhead."""

from __future__ import annotations

from bench_common import BENCH_FILE_BYTES, run_once

from repro.experiments import table03_relay_detail


def test_table03_relay_detail_trends(benchmark):
    result = run_once(benchmark, table03_relay_detail.run,
                      rate_mbps=1.3, file_bytes=BENCH_FILE_BYTES)
    print(result.to_text())

    frame = {name: result.metrics[f"frame_size_{name}"] for name in ("NA", "UA", "BA", "DBA")}
    tx = {name: result.metrics[f"tx_percent_{name}"] for name in ("NA", "UA", "BA", "DBA")}
    overhead = {name: result.metrics[f"size_overhead_percent_{name}"]
                for name in ("NA", "UA", "BA", "DBA")}

    # Paper Table 3 ordering: frame size NA < UA <= BA <= DBA.
    assert frame["NA"] < frame["UA"]
    assert frame["UA"] <= frame["BA"] * 1.05
    assert frame["BA"] <= frame["DBA"] * 1.05
    # NA averages near the (1464 + 160)/2 mix; aggregation roughly triples it.
    assert 500 < frame["NA"] < 1100
    assert frame["UA"] > 2 * frame["NA"]
    # Transmissions: NA = 100%, aggregation cuts them to well below half.
    assert tx["NA"] == 100.0
    assert tx["UA"] < 50.0
    assert tx["BA"] <= tx["UA"]
    assert tx["DBA"] <= tx["BA"] * 1.1
    # Size overhead shrinks monotonically with more aggressive aggregation.
    assert overhead["NA"] > overhead["UA"] >= overhead["BA"] * 0.95
