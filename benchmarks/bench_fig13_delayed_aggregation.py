"""Figure 13 benchmark: delayed broadcast aggregation (DBA) vs BA."""

from __future__ import annotations

from bench_common import BENCH_FILE_BYTES, run_once

from repro.experiments import fig13_delayed_aggregation


def test_fig13_dba_close_to_ba_and_aggregates_more(benchmark):
    result = run_once(benchmark, fig13_delayed_aggregation.run,
                      rates_mbps=(1.3, 2.6), hops_list=(2,),
                      file_bytes=BENCH_FILE_BYTES)
    print(result.to_text())

    ba = result.get_series("BA 2-hop")
    dba = result.get_series("DBA 2-hop")
    for rate in (1.3, 2.6):
        # The paper reports single-digit differences in either direction at low
        # rates and a slight DBA edge at high rates: they must stay close.
        assert dba.value_at(rate) > 0.75 * ba.value_at(rate)
        assert dba.value_at(rate) < 1.35 * ba.value_at(rate)
    # Both complete the transfer at a sane throughput.
    assert ba.value_at(2.6) > 0.3
