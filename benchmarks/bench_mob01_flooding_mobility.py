"""mob01 benchmark: flood delivery ratio under mobility, NA/UA/BA."""

from __future__ import annotations

from bench_common import run_once

from repro.experiments import mob01_flooding_mobility

SPEEDS = (1.0, 4.0)


def test_mob01_mobile_flooding(benchmark):
    result = run_once(benchmark, mob01_flooding_mobility.run,
                      speeds_mps=SPEEDS, node_count=5, duration=4.0,
                      flooding_interval=0.2)
    print(result.to_text())

    for label in ("NA", "UA", "BA"):
        delivery = result.get_series(f"{label} delivery")
        udp = result.get_series(f"{label} udp Mbps")
        assert len(delivery.y_values) == len(SPEEDS)
        # Mobility plus shadowing must actually cost deliveries (some nodes
        # out of range some of the time) without silencing the flood.
        for ratio in delivery.y_values:
            assert 0.0 < ratio < 1.0
        # The anchor pair's UDP flow keeps running under the flood load.
        for throughput in udp.y_values:
            assert throughput > 0.0

    # Aggregation absorbs the flooding load: the UDP flow is never worse off
    # under BA than with no aggregation at the same speed.
    ba_udp = result.get_series("BA udp Mbps")
    na_udp = result.get_series("NA udp Mbps")
    for speed in SPEEDS:
        assert ba_udp.value_at(speed) >= na_udp.value_at(speed)
