"""Campaign-engine benchmark: seed-replicated fig07 at campaign-smoke scale.

Times one cold campaign (registry lookup → per-seed runs → CI aggregation)
and asserts the engine's contracts: warm re-runs are served entirely from
cache, and the aggregate carries one 95% CI half-width per point.
"""

from __future__ import annotations

from bench_common import run_once, campaign_fast_params

from repro.campaign import CampaignRunner, ResultCache


def test_campaign_fig07_replicated(benchmark, tmp_path):
    params = campaign_fast_params("fig07", duration=2.0, sizes_kb=(2, 4))
    cache = ResultCache(str(tmp_path / "cache"))
    runner = CampaignRunner(jobs=1, cache=cache)

    outcome = run_once(benchmark, runner.run_campaign, "fig07",
                       seeds=[1, 2, 3], overrides=params)
    print(outcome.aggregate.to_text())

    series = outcome.aggregate.get_series("0.65 Mbps")
    assert len(series.y_errors) == len(series.y_values) == 2
    assert all(error >= 0.0 for error in series.y_errors)

    warm = runner.run_campaign("fig07", seeds=[1, 2, 3], overrides=params)
    assert [o.status for o in warm.outcomes] == ["cached"] * 3
    assert warm.aggregate.to_dict() == outcome.aggregate.to_dict()
