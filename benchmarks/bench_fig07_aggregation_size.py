"""Figure 7 benchmark: throughput vs maximum aggregation size (1-hop UDP)."""

from __future__ import annotations

from bench_common import BENCH_UDP_DURATION, run_once

from repro.experiments import fig07_aggregation_size


def test_fig07_threshold_and_collapse(benchmark):
    result = run_once(benchmark, fig07_aggregation_size.run,
                      rates_mbps=(0.65, 1.3), sizes_kb=(2, 4, 5, 6, 8, 12),
                      duration=BENCH_UDP_DURATION)
    print(result.to_text())

    series_065 = result.get_series("0.65 Mbps")
    series_13 = result.get_series("1.3 Mbps")
    # Throughput rises with aggregation size up to the 0.65 Mbps threshold (5 KB)...
    assert series_065.value_at(5) > series_065.value_at(2)
    # ...and collapses once the 120 Ksample coherence limit is crossed.
    assert series_065.value_at(8) < 0.3 * series_065.value_at(5)
    # At 1.3 Mbps the threshold sits higher (the paper reports ~11 KB), so 8 KB still works.
    assert series_13.value_at(8) > 0.5 * series_13.value_at(5)
    # The paper picks 5 KB as the operating point: it must be usable at both rates.
    assert result.metrics["peak_size_kb_0.65"] >= 4
