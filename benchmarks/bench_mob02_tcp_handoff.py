"""mob02 benchmark: 2-hop TCP through a relay that orbits out of range."""

from __future__ import annotations

from bench_common import run_once

from repro.experiments import mob02_tcp_handoff

PERIODS = (8.0, 16.0)


def test_mob02_relay_handoff(benchmark):
    result = run_once(benchmark, mob02_tcp_handoff.run,
                      orbit_periods=PERIODS, file_bytes=30_000, max_sim_time=60.0,
                      include_no_aggregation=False)
    print(result.to_text())

    fast, slow = PERIODS
    for label in ("UA", "BA"):
        throughput = result.get_series(label)
        progress = result.get_series(f"{label} received fraction")
        assert len(throughput.y_values) == len(PERIODS)
        # The fast orbit (short outages) hands the transfer back often enough
        # to complete; the slow orbit's long outages interact with TCP's RTO
        # backoff (retries phase-lock into outages), so only progress — not
        # completion — is guaranteed within the horizon.
        assert throughput.value_at(fast) > 0.0
        assert progress.value_at(fast) == 1.0
        assert progress.value_at(slow) > 0.3
        # Outages can only hurt: the stationary-relay baseline (no outage)
        # bounds every mobile throughput from above.
        baseline = result.metrics[f"stationary_baseline_{label}"]
        assert baseline > 0.0
        for period in PERIODS:
            assert throughput.value_at(period) < baseline

    # The endpoints are genuinely out of mutual range; all traffic relayed.
    assert result.metrics["relay_min_link_distance_m"] > 0.0
