"""rt02 benchmark: reactive overhead grows with flows, proactive stays flat."""

from __future__ import annotations

from bench_common import run_once

from repro.experiments import rt02_overhead_scaling

FLOW_COUNTS = (1, 6)
SPEED = 2.0


def test_rt02_overhead_scaling(benchmark):
    result = run_once(benchmark, rt02_overhead_scaling.run,
                      scenario="rt02_overhead_scaling",
                      flow_counts=FLOW_COUNTS, speeds_mps=(SPEED,),
                      duration=8.0, warmup=3.0, include_no_aggregation=False)
    print(result.to_text())

    aodv_growth = result.metrics["aodv_ctrl_frac_growth"]
    dsdv_growth = result.metrics["dsdv_ctrl_frac_growth"]
    # The headline trade-off: splitting a fixed load across more destinations
    # costs AODV an expanding-ring discovery (and re-discovery, once the
    # per-flow packet spacing crosses the active-route lifetime) per flow,
    # while DSDV's beacons do not care how many pairs talk.
    assert aodv_growth > 0.03
    assert aodv_growth > abs(dsdv_growth) + 0.02
    assert result.metrics["static_ctrl_frac_growth"] == 0.0
    assert result.metrics["aodv_minus_dsdv_growth"] > 0.0

    static_ctrl = result.get_series(f"static BA @{SPEED:g}mps ctrl frac")
    assert all(value == 0.0 for value in static_ctrl.y_values)

    # AODV's always-on cost is only HELLO liveness, so at a single active
    # flow the reactive protocol is the cheaper control plane.
    aodv_ctrl = result.get_series(f"aodv BA @{SPEED:g}mps ctrl frac")
    dsdv_ctrl = result.get_series(f"dsdv BA @{SPEED:g}mps ctrl frac")
    assert aodv_ctrl.value_at(FLOW_COUNTS[0]) < dsdv_ctrl.value_at(FLOW_COUNTS[0])

    # Both dynamic protocols keep the mesh delivering despite mobility.
    for routing in ("aodv", "dsdv"):
        delivery = result.get_series(f"{routing} BA @{SPEED:g}mps delivery")
        assert min(delivery.y_values) > 0.6
