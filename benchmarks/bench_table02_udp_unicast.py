"""Table 2 benchmark: 2-hop UDP throughput, no aggregation vs unicast aggregation."""

from __future__ import annotations

from bench_common import BENCH_UDP_DURATION, run_once

from repro.experiments import table02_udp_unicast


def test_table02_unicast_aggregation_improves_udp(benchmark):
    result = run_once(benchmark, table02_udp_unicast.run,
                      scenario="table02_udp_unicast",
                      rates_mbps=(0.65, 1.3), duration=BENCH_UDP_DURATION)
    print(result.to_text())

    table = result.tables[0]
    for rate in ("0.65", "1.3"):
        assert table.cell(rate, "UA (Mbps)") > table.cell(rate, "NA (Mbps)")
    # The improvement grows with the data rate (paper: 7.9% -> 11.9%).
    assert result.metrics["improvement_percent_1.3"] > result.metrics["improvement_percent_0.65"]
