"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper with reduced
parameters (smaller file, shorter UDP runs, fewer swept points) so the whole
suite completes in minutes.  The asserted properties are the paper's
*qualitative* results — orderings, gap growth, threshold positions — which
hold at the reduced scale; run the ``repro.experiments`` modules with their
defaults to regenerate the full-scale numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

#: Reduced file size used by the TCP benchmarks (the paper uses 0.2 MB).
BENCH_FILE_BYTES = 80_000
#: Reduced duration for UDP saturation runs (seconds of simulated time).
BENCH_UDP_DURATION = 8.0

#: Where the committed ``BENCH_<scenario>.json`` trajectory files live.
BENCH_RESULTS_DIR = os.environ.get(
    "BENCH_RESULTS_DIR",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "results"))


def run_once(benchmark, function, *args, scenario=None, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    Canonical benches additionally pass ``scenario=<name>``: the run is then
    measured with the :mod:`repro.bench` telemetry harness and appended to the
    committed ``BENCH_<scenario>.json`` perf trajectory (wall-clock seconds,
    events, events/second, simulated-seconds per wall-second).  Set
    ``BENCH_JSON=0`` in the environment to measure without recording.
    """
    if scenario is None:
        return benchmark.pedantic(function, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    from repro.bench import measure, record_measurement

    measured = {}

    def timed(*call_args, **call_kwargs):
        result, record = measure(function, *call_args, **call_kwargs)
        measured.update(record)
        return result

    result = benchmark.pedantic(timed, args=args, kwargs=kwargs, rounds=1, iterations=1)
    if os.environ.get("BENCH_JSON", "1") != "0":
        record_measurement(scenario, measured, source="pytest",
                           results_dir=BENCH_RESULTS_DIR)
    return result


def campaign_fast_params(experiment_id, **overrides):
    """The campaign registry's reduced parameter set for one experiment.

    Benchmarks that want to exercise a runner at "campaign smoke" scale can
    use this instead of hand-maintaining a second copy of the reduced sweep
    (see ``FAST_PARAMS`` in each ``repro.experiments`` module).
    """
    from repro.campaign.registry import get_registry

    return get_registry().get(experiment_id).resolve_params(overrides, fast=True)
