"""Figure 12 benchmark: TCP over the 3-hop chain and the star topology."""

from __future__ import annotations

from bench_common import BENCH_FILE_BYTES, run_once

from repro.experiments import fig12_topologies


def test_fig12_ba_gap_grows_with_topology_complexity(benchmark):
    result = run_once(benchmark, fig12_topologies.run,
                      rates_mbps=(1.3, 2.6), file_bytes=BENCH_FILE_BYTES,
                      include_no_aggregation=True)
    print(result.to_text())

    for topology in ("3-hop", "star"):
        ua = result.get_series(f"UA {topology}")
        ba = result.get_series(f"BA {topology}")
        for rate in (1.3, 2.6):
            assert ba.value_at(rate) >= 0.98 * ua.value_at(rate)
        assert result.metrics[f"max_gap_percent_{topology}"] > 0.0
    # No aggregation stays the slowest option over 3 hops.
    na = result.get_series("NA 3-hop")
    ua3 = result.get_series("UA 3-hop")
    assert na.value_at(2.6) < ua3.value_at(2.6)
