"""The BENCH_<scenario>.json trajectory files and the regression gate.

The CI perf gate and every "this PR made it faster" claim rest on this
module, so the file-handling rules get pinned directly: the baseline only
moves explicitly, history is append-only and capped, and the check verdict
uses the committed baseline, not the latest record.
"""

from __future__ import annotations

import json

from repro.bench import check_against_baseline, load_history, measure, record_measurement
from repro.bench.history import HISTORY_LIMIT, bench_path


def _record(eps: float) -> dict:
    return {"wall_seconds": 1.0, "events": int(eps), "events_per_second": eps,
            "simulated_seconds": 5.0, "sim_seconds_per_wall_second": 5.0}


def test_first_record_becomes_the_baseline(tmp_path):
    directory = str(tmp_path)
    record_measurement("scn", _record(100.0), source="pytest", results_dir=directory)
    document = load_history("scn", results_dir=directory)
    assert document["baseline"]["events_per_second"] == 100.0
    assert len(document["history"]) == 1


def test_appending_history_never_moves_the_baseline(tmp_path):
    directory = str(tmp_path)
    record_measurement("scn", _record(100.0), source="pytest", results_dir=directory)
    record_measurement("scn", _record(250.0), source="module", label="after opt",
                       results_dir=directory)
    document = load_history("scn", results_dir=directory)
    assert document["baseline"]["events_per_second"] == 100.0
    assert [entry["events_per_second"] for entry in document["history"]] == [100.0, 250.0]
    assert document["history"][1]["label"] == "after opt"


def test_rebaseline_promotes_the_new_record(tmp_path):
    directory = str(tmp_path)
    record_measurement("scn", _record(100.0), source="pytest", results_dir=directory)
    record_measurement("scn", _record(250.0), source="module", set_baseline=True,
                       results_dir=directory)
    assert load_history("scn", results_dir=directory)["baseline"]["events_per_second"] == 250.0


def test_history_is_capped_oldest_first(tmp_path):
    directory = str(tmp_path)
    for value in range(HISTORY_LIMIT + 10):
        record_measurement("scn", _record(float(value)), source="pytest",
                           results_dir=directory)
    history = load_history("scn", results_dir=directory)["history"]
    assert len(history) == HISTORY_LIMIT
    assert history[0]["events_per_second"] == 10.0
    # The baseline (the very first record) survives the cap.
    assert load_history("scn", results_dir=directory)["baseline"]["events_per_second"] == 0.0


def test_check_passes_within_tolerance_and_fails_beyond(tmp_path):
    directory = str(tmp_path)
    record_measurement("scn", _record(100.0), source="pytest", results_dir=directory)
    ok = check_against_baseline("scn", _record(85.0), tolerance=0.2,
                                results_dir=directory)
    bad = check_against_baseline("scn", _record(75.0), tolerance=0.2,
                                 results_dir=directory)
    assert ok["ok"] and ok["ratio"] == 0.85
    assert not bad["ok"] and bad["ratio"] == 0.75


def test_check_compares_against_baseline_not_latest(tmp_path):
    directory = str(tmp_path)
    record_measurement("scn", _record(100.0), source="pytest", results_dir=directory)
    record_measurement("scn", _record(400.0), source="module", results_dir=directory)
    # 90 e/s would be a 4.4x regression vs the latest record but is within
    # 20% of the committed baseline — the gate must use the baseline.
    verdict = check_against_baseline("scn", _record(90.0), tolerance=0.2,
                                     results_dir=directory)
    assert verdict["ok"]


def test_check_without_baseline_passes_vacuously(tmp_path):
    verdict = check_against_baseline("absent", _record(50.0), results_dir=str(tmp_path))
    assert verdict["ok"] and verdict["ratio"] is None and verdict["baseline_eps"] is None


def test_corrupt_file_is_treated_as_fresh(tmp_path):
    directory = str(tmp_path)
    with open(bench_path("scn", results_dir=directory), "w", encoding="utf-8") as handle:
        handle.write("{not json")
    document = load_history("scn", results_dir=directory)
    assert document == {"scenario": "scn", "schema": 1, "baseline": None, "history": []}
    # ...and recording over it produces a valid document again.
    record_measurement("scn", _record(10.0), source="pytest", results_dir=directory)
    with open(bench_path("scn", results_dir=directory), encoding="utf-8") as handle:
        assert json.load(handle)["baseline"]["events_per_second"] == 10.0


def test_measure_counts_events_and_simulated_time():
    from repro.sim.simulator import Simulator

    def tiny_run():
        sim = Simulator(seed=1)
        for tick in range(50):
            sim.schedule(0.1 * tick, lambda: None)
        sim.run(until=10.0)

    _, record = measure(tiny_run)
    assert record["events"] >= 50
    assert record["simulated_seconds"] >= 9.0
    assert record["wall_seconds"] > 0.0
    assert record["events_per_second"] > 0.0
