"""CLI behaviour: exit codes, JSON output, config loading and the self-check.

The self-check test is the PR's acceptance criterion made executable:
``python -m repro.lint check src/repro`` must exit 0 at head, and any
suppression in the tree must carry a justification.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import check_paths, load_config
from repro.lint.cli import EXIT_OK, EXIT_USAGE, EXIT_VIOLATIONS, main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


VIOLATING = """
    import random

    def sample():
        return random.random()
"""

CLEAN = """
    def sample(sim):
        return sim.random.stream("app").random()
"""


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "repro/net/app.py", CLEAN)
        assert main(["check", str(tmp_path)]) == EXIT_OK
        assert "0 violation(s)" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        write(tmp_path, "repro/net/app.py", VIOLATING)
        assert main(["check", str(tmp_path)]) == EXIT_VIOLATIONS
        out = capsys.readouterr().out
        assert "net/app.py" in out and "RPR001" in out

    def test_unjustified_suppression_exits_one(self, tmp_path, capsys):
        write(tmp_path, "repro/net/app.py", """
            import random

            def sample():
                return random.random()  # lint: disable=RPR001
        """)
        assert main(["check", str(tmp_path)]) == EXIT_VIOLATIONS
        assert "RPR000" in capsys.readouterr().out

    def test_justified_suppression_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "repro/net/app.py", """
            import random

            def sample():
                return random.random()  # lint: disable=RPR001 -- fixture: testing the suppression path
        """)
        assert main(["check", str(tmp_path)]) == EXIT_OK
        assert "1 justified" in capsys.readouterr().out

    def test_missing_path_exits_usage(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "nope")]) == EXIT_USAGE
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_explain_exits_usage(self, capsys):
        assert main(["explain", "RPR999"]) == EXIT_USAGE
        assert "unknown rule" in capsys.readouterr().err


class TestOutputs:
    def test_json_format_shape(self, tmp_path, capsys):
        write(tmp_path, "repro/net/app.py", VIOLATING)
        assert main(["check", str(tmp_path), "--format", "json"]) == EXIT_VIOLATIONS
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["checked_files"] == 1
        (violation,) = payload["violations"]
        assert violation["rule"] == "RPR001"
        assert violation["path"] == "net/app.py"
        assert payload["counts"]["by_rule"] == {"RPR001": 1}

    def test_output_file_written_for_ci_artifact(self, tmp_path, capsys):
        write(tmp_path, "repro/net/app.py", VIOLATING)
        report_path = tmp_path / "out" / "lint-report.json"
        main(["check", str(tmp_path), "--format", "json",
              "--output", str(report_path)])
        capsys.readouterr()
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["counts"]["violations"] == 1

    def test_list_rules_names_all_six(self, capsys):
        assert main(["list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"):
            assert rule_id in out

    def test_explain_prints_rationale_and_suppression_syntax(self, capsys):
        assert main(["explain", "RPR003"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "sorted" in out
        assert "lint: disable=RPR003 --" in out


class TestConfig:
    def test_lint_toml_override_widens_allowlist(self, tmp_path, capsys):
        write(tmp_path, "repro/net/app.py", VIOLATING)
        (tmp_path / "lint.toml").write_text(textwrap.dedent("""
            [lint.RPR001]
            allow = ["net/*"]
        """), encoding="utf-8")
        assert main(["check", str(tmp_path)]) == EXIT_OK
        capsys.readouterr()

    def test_bad_config_exits_usage(self, tmp_path, capsys):
        write(tmp_path, "repro/net/app.py", CLEAN)
        config = tmp_path / "broken.toml"
        config.write_text("[lint.RPR001]\nallow = 3\n", encoding="utf-8")
        assert main(["check", str(tmp_path), "--config", str(config)]) == EXIT_USAGE
        assert "error" in capsys.readouterr().err

    def test_repo_lint_toml_matches_embedded_defaults(self):
        # The repo-root lint.toml documents the contract; drifting from the
        # embedded defaults would make CLI runs behave differently from
        # check_source-based tests.
        from repro.lint import DEFAULT_CONFIG
        config = load_config(REPO_ROOT / "lint.toml")
        assert config.rules == DEFAULT_CONFIG


class TestSelfCheck:
    def test_src_repro_is_lint_clean_at_head(self):
        report = check_paths([SRC_REPRO], load_config(REPO_ROOT / "lint.toml"))
        assert report.checked_files > 100
        problems = [f"{v.path}:{v.line}: {v.rule_id} {v.message}"
                    for v in report.violations]
        assert not problems, "\n".join(problems)
        assert all(s.justified for s in report.suppressions)

    def test_module_entry_point_exits_zero_on_head(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "check", str(SRC_REPRO)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr
