"""Fixture-snippet tests for each lint rule: violating, clean and suppressed.

Each snippet is checked through :func:`repro.lint.engine.check_source` at a
package-relative path chosen so the rule under test is in scope, exactly as
the CLI would see an on-disk file there.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import LintConfig, check_source
from repro.lint.engine import META_RULE_ID


def lint(source: str, rel_path: str, config=None):
    return check_source(textwrap.dedent(source), rel_path,
                        config if config is not None else LintConfig())


def rule_ids(report):
    return [v.rule_id for v in report.violations]


# ----------------------------------------------------------------------
# RPR001 — randomness
# ----------------------------------------------------------------------
class TestRPR001:
    def test_flags_unseeded_random_constructor(self):
        report = lint(
            """
            import random

            def jitter():
                return random.Random().random()
            """,
            "net/discovery.py")
        # The Random() construction is the finding; the chained .random()
        # call on its result is the same hazard, not a second one.
        assert rule_ids(report).count("RPR001") == 1

    def test_flags_module_level_function(self):
        report = lint(
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
            "apps/traffic.py")
        assert "RPR001" in rule_ids(report)

    def test_flags_from_import_and_urandom_and_uuid(self):
        report = lint(
            """
            import os
            import uuid
            from random import randint

            def token():
                return uuid.uuid4(), os.urandom(8), randint(0, 3)
            """,
            "core/aggregator.py")
        ids = rule_ids(report)
        assert ids.count("RPR001") == 3  # random from-import, uuid4(), urandom()

    def test_clean_when_using_streams(self):
        report = lint(
            """
            def backoff(sim):
                rng = sim.random.stream("mac.backoff")
                return rng.randrange(16)
            """,
            "mac/backoff.py")
        assert report.ok

    def test_random_import_for_typing_is_clean(self):
        report = lint(
            """
            import random

            def seed_stream(rng: random.Random) -> float:
                return rng.random()
            """,
            "mac/backoff.py")
        assert report.ok

    def test_allowlisted_module_is_exempt(self):
        report = lint(
            """
            import random

            def make(seed):
                return random.Random(seed)
            """,
            "sim/randomness.py")
        assert report.ok

    def test_suppressed_with_justification(self):
        report = lint(
            """
            import random

            def sample(seed):
                return random.Random(seed)  # lint: disable=RPR001 -- derived from the replica seed
            """,
            "experiments/sweep.py")
        assert report.ok
        assert len(report.suppressions) == 1
        assert report.suppressions[0].justified

    def test_suppression_without_justification_raises_meta_rule(self):
        report = lint(
            """
            import random

            def sample(seed):
                return random.Random(seed)  # lint: disable=RPR001
            """,
            "experiments/sweep.py")
        assert rule_ids(report) == [META_RULE_ID]
        assert not report.suppressions[0].justified


# ----------------------------------------------------------------------
# RPR002 — wall clock / environment
# ----------------------------------------------------------------------
class TestRPR002:
    def test_flags_time_time(self):
        report = lint(
            """
            import time

            def stamp(sim):
                return time.time()
            """,
            "sim/trace.py")
        assert "RPR002" in rule_ids(report)

    def test_flags_datetime_now_and_environ(self):
        report = lint(
            """
            import datetime
            import os

            def snapshot():
                return datetime.datetime.now(), os.environ["HOME"], os.getenv("SEED")
            """,
            "net/routing.py")
        assert rule_ids(report).count("RPR002") == 3

    def test_flags_from_time_import(self):
        report = lint(
            """
            from time import perf_counter, sleep

            def measure():
                return perf_counter()
            """,
            "phy/device.py")
        # the from-import itself is the finding; sleep is not a clock read
        assert rule_ids(report).count("RPR002") == 1

    def test_clean_in_allowlisted_obs_module(self):
        report = lint(
            """
            import time

            def wall():
                return time.time()
            """,
            "obs/profiler.py")
        assert report.ok

    def test_sim_now_is_clean(self):
        report = lint(
            """
            def stamp(sim):
                return sim.now
            """,
            "sim/timer.py")
        assert report.ok

    def test_suppressed_with_justification(self):
        report = lint(
            """
            import time

            def log_line(sim):
                return time.time()  # lint: disable=RPR002 -- human-facing log timestamp, not simulation state
            """,
            "net/routing.py")
        assert report.ok
        assert len(report.suppressions) == 1


# ----------------------------------------------------------------------
# RPR003 — unsorted set/dict iteration feeding sinks
# ----------------------------------------------------------------------
class TestRPR003:
    def test_flags_set_literal_iteration(self):
        report = lint(
            """
            def flood(sim, neighbors):
                pending = {n for n in neighbors}
                for n in pending:
                    sim.schedule(0.0, n.receive)
            """,
            "net/flooding.py")
        assert "RPR003" in rule_ids(report)

    def test_flags_self_attr_set_iteration(self):
        report = lint(
            """
            class Router:
                def __init__(self):
                    self.peers = set()

                def advertise(self, mac):
                    for peer in self.peers:
                        mac.send(peer)
            """,
            "net/routing.py")
        assert "RPR003" in rule_ids(report)

    def test_flags_dict_keys_feeding_sink(self):
        report = lint(
            """
            class Table:
                def __init__(self):
                    self.routes = {}

                def broadcast_all(self, mac):
                    for dst in self.routes.keys():
                        mac.broadcast(dst)
            """,
            "net/routing.py")
        assert "RPR003" in rule_ids(report)

    def test_sorted_wrapping_is_clean(self):
        report = lint(
            """
            class Router:
                def __init__(self):
                    self.peers = set()

                def advertise(self, mac):
                    for peer in sorted(self.peers):
                        mac.send(peer)
                    for dst in list(sorted(self.peers)):
                        mac.broadcast(dst)
            """,
            "net/routing.py")
        assert report.ok

    def test_dict_view_without_sink_is_clean(self):
        report = lint(
            """
            def total(counts):
                acc = 0.0
                for value in counts.values():
                    acc += value
                return acc
            """,
            "net/stats_helpers.py")
        assert report.ok

    def test_out_of_scope_module_is_clean(self):
        report = lint(
            """
            def render(rows):
                for row in {r for r in rows}:
                    print(row)
            """,
            "obs/report.py")
        assert report.ok

    def test_suppressed_with_justification(self):
        report = lint(
            """
            def drain(sim, items):
                for item in set(items):  # lint: disable=RPR003 -- order-insensitive teardown, results are summed
                    sim.schedule(0.0, item.close)
            """,
            "net/teardown.py")
        assert report.ok
        assert len(report.suppressions) == 1


# ----------------------------------------------------------------------
# RPR004 — __slots__ in hot-path modules
# ----------------------------------------------------------------------
class TestRPR004:
    def test_flags_class_without_slots(self):
        report = lint(
            """
            class Frame:
                def __init__(self, size):
                    self.size = size
            """,
            "phy/frame_extra.py")
        assert "RPR004" in rule_ids(report)

    def test_flags_incomplete_slots(self):
        report = lint(
            """
            class Frame:
                __slots__ = ("size",)

                def __init__(self, size):
                    self.size = size

                def arm(self):
                    self.deadline = 0.0
            """,
            "mac/extra.py")
        violations = [v for v in report.violations if v.rule_id == "RPR004"]
        assert len(violations) == 1
        assert "deadline" in violations[0].message

    def test_flags_dataclass_without_slots_true(self):
        report = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class Config:
                rate: float = 1.0
            """,
            "channel/extra.py")
        assert "RPR004" in rule_ids(report)

    def test_clean_slotted_class_and_slots_dataclass(self):
        report = lint(
            """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Config:
                rate: float = 1.0

            class Frame:
                __slots__ = ("size", "deadline")

                def __init__(self, size):
                    self.size = size
                    self.deadline = 0.0
            """,
            "phy/extra.py")
        assert report.ok

    def test_enum_protocol_and_exception_are_exempt(self):
        report = lint(
            """
            import enum
            from typing import Protocol

            class Kind(enum.Enum):
                DATA = "data"

                def __init__(self, label):
                    self.label = label

            class Listener(Protocol):
                def on_frame(self) -> None: ...

            class PhyError(Exception):
                pass
            """,
            "phy/kinds.py")
        assert report.ok

    def test_base_class_slots_resolved_within_module(self):
        report = lint(
            """
            class Base:
                __slots__ = ("sim",)

                def __init__(self, sim):
                    self.sim = sim

            class Derived(Base):
                __slots__ = ("rate",)

                def __init__(self, sim, rate):
                    super().__init__(sim)
                    self.rate = rate
            """,
            "sim/extra.py")
        assert report.ok

    def test_non_hot_path_module_is_clean(self):
        report = lint(
            """
            class Report:
                def __init__(self):
                    self.rows = []
            """,
            "obs/report.py")
        assert report.ok

    def test_suppressed_with_justification(self):
        report = lint(
            """
            class Adapter:  # lint: disable=RPR004 -- wraps a third-party object that needs __dict__
                def __init__(self, inner):
                    self.inner = inner
            """,
            "sim/adapter.py")
        assert report.ok
        assert len(report.suppressions) == 1


# ----------------------------------------------------------------------
# RPR005 — guarded instrumentation
# ----------------------------------------------------------------------
class TestRPR005:
    def test_flags_unguarded_tracer_emit(self):
        report = lint(
            """
            def on_send(self, frame):
                self.sim.tracer.emit(self.name, "mac", "send", size=frame.size)
            """,
            "mac/extra.py")
        assert "RPR005" in rule_ids(report)

    def test_flags_unguarded_metrics_inc(self):
        report = lint(
            """
            def on_drop(self):
                self._metrics.inc("mac.queue_drops", node=self.name)
            """,
            "mac/extra.py")
        assert "RPR005" in rule_ids(report)

    def test_flags_unguarded_journey_record(self):
        report = lint(
            """
            def on_deliver(self, subframe):
                self._journey.record(self.sim.now, self.name, "mac",
                                     "deliver", subframe.packet)
            """,
            "mac/extra.py")
        assert "RPR005" in rule_ids(report)

    def test_flags_unguarded_journey_begin(self):
        report = lint(
            """
            def send(self, packet):
                journey = self.sim.journey
                journey.begin(self.sim.now, self.name, "net", packet)
            """,
            "mac/extra.py")
        assert "RPR005" in rule_ids(report)

    def test_guarded_calls_are_clean(self):
        report = lint(
            """
            def on_send(self, frame):
                tracer = self.sim.tracer
                if tracer.enabled:
                    tracer.emit(self.name, "mac", "send", size=frame.size)
                metrics = self._metrics
                if metrics.enabled:
                    metrics.inc("mac.sent", node=self.name)
                journey = self._journey
                if journey.enabled:
                    journey.record(self.sim.now, self.name, "mac", "tx",
                                   frame.packet)
            """,
            "mac/extra.py")
        assert report.ok

    def test_guarded_calls_list_is_configurable(self):
        from repro.lint.config import LintConfig

        config = LintConfig()
        config.rules["RPR005"]["guarded_calls"] = ["audit.note"]
        report = lint(
            """
            def on_send(self, frame):
                self.sim.tracer.emit(self.name, "mac", "send")
                self._audit.note(frame)
            """,
            "mac/extra.py", config=config)
        findings = [v for v in report.violations if v.rule_id == "RPR005"]
        assert len(findings) == 1
        assert "audit" in findings[0].message

    def test_early_return_guard_is_clean(self):
        report = lint(
            """
            def emit_sample(self):
                if not self.enabled:
                    return
                self._metrics.inc("sample")
            """,
            "phy/extra.py")
        assert report.ok

    def test_non_hot_path_module_is_clean(self):
        report = lint(
            """
            def summarize(tracer):
                tracer.record("done")
            """,
            "obs/report.py")
        assert report.ok

    def test_suppressed_with_justification(self):
        report = lint(
            """
            def on_fatal(self):
                self.sim.tracer.emit(self.name, "mac", "fatal")  # lint: disable=RPR005 -- error path, executes at most once per run
            """,
            "mac/extra.py")
        assert report.ok
        assert len(report.suppressions) == 1


# ----------------------------------------------------------------------
# RPR006 — mutable default arguments
# ----------------------------------------------------------------------
class TestRPR006:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "dict()",
                                         "deque()", "defaultdict(list)"])
    def test_flags_mutable_defaults(self, default):
        report = lint(
            f"""
            from collections import defaultdict, deque

            def callback(event, acc={default}):
                acc.append(event)
            """,
            "net/handlers.py")
        assert "RPR006" in rule_ids(report)

    def test_flags_keyword_only_and_lambda_defaults(self):
        report = lint(
            """
            def schedule(sim, *, listeners=[]):
                return listeners

            late = lambda acc={}: acc
            """,
            "sim/extra_hooks.py")
        assert rule_ids(report).count("RPR006") == 2

    def test_none_default_is_clean(self):
        report = lint(
            """
            def callback(event, acc=None):
                if acc is None:
                    acc = []
                acc.append(event)
            """,
            "net/handlers.py")
        assert report.ok

    def test_immutable_defaults_are_clean(self):
        report = lint(
            """
            def configure(rate=1.0, name="mac", flags=(), frozen=frozenset()):
                return rate, name, flags, frozen
            """,
            "net/handlers.py")
        assert report.ok

    def test_suppressed_with_justification(self):
        report = lint(
            """
            def memoized(cache={}):  # lint: disable=RPR006 -- intentional cross-call memo table
                return cache
            """,
            "net/handlers.py")
        assert report.ok
        assert len(report.suppressions) == 1


# ----------------------------------------------------------------------
# Engine behaviour shared across rules
# ----------------------------------------------------------------------
class TestEngine:
    def test_syntax_error_is_reported_not_raised(self):
        report = lint("def broken(:\n", "net/broken.py")
        assert not report.ok
        assert report.errors and "syntax error" in report.errors[0]

    def test_suppression_comment_only_hides_named_rule(self):
        report = lint(
            """
            import random

            def sample():
                return random.random()  # lint: disable=RPR002 -- wrong rule named
            """,
            "net/sample.py")
        # RPR001 still fires; the RPR002 suppression matched nothing.
        assert "RPR001" in rule_ids(report)
        assert not report.suppressions

    def test_multi_rule_suppression(self):
        report = lint(
            """
            import random, time

            def sample():
                return random.random(), time.time()  # lint: disable=RPR001,RPR002 -- fixture exercising multi-rule suppression
            """,
            "net/sample.py")
        assert report.ok
        assert {s.rule_id for s in report.suppressions} == {"RPR001", "RPR002"}

    def test_report_dict_counts(self):
        report = lint(
            """
            import random

            def sample():
                return random.random()
            """,
            "net/sample.py")
        payload = report.as_dict()
        assert payload["ok"] is False
        assert payload["counts"]["violations"] == 1
        assert payload["counts"]["by_rule"] == {"RPR001": 1}
