"""Unit tests for the simulator run loop."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_schedule_and_run_advances_clock(sim):
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.schedule(0.5, lambda: seen.append(sim.now))
    end = sim.run()
    assert seen == [0.5, 1.5]
    assert end == 1.5
    assert sim.now == 1.5


def test_schedule_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_stops_before_later_events(sim):
    seen = []
    sim.schedule(1.0, lambda: seen.append("early"))
    sim.schedule(5.0, lambda: seen.append("late"))
    sim.run(until=2.0)
    assert seen == ["early"]
    assert sim.now == 2.0
    # The late event is still pending and fires on a subsequent run.
    sim.run()
    assert seen == ["early", "late"]


def test_run_until_with_empty_queue_advances_to_horizon(sim):
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_stop_halts_run_loop(sim):
    seen = []

    def stopper():
        seen.append(sim.now)
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.0]
    assert sim.pending_events == 1


def test_events_scheduled_during_run_are_executed(sim):
    seen = []

    def chain(depth):
        seen.append((sim.now, depth))
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert [d for _, d in seen] == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_cancel_pending_event(sim):
    seen = []
    handle = sim.schedule(1.0, lambda: seen.append("x"))
    sim.cancel(handle)
    sim.run()
    assert seen == []


def test_cancel_none_is_ignored(sim):
    sim.cancel(None)  # must not raise


def test_priority_orders_simultaneous_events(sim):
    seen = []
    sim.schedule(1.0, lambda: seen.append("app"), priority=Simulator.PRIORITY_APP)
    sim.schedule(1.0, lambda: seen.append("phy"), priority=Simulator.PRIORITY_PHY)
    sim.schedule(1.0, lambda: seen.append("mac"), priority=Simulator.PRIORITY_MAC)
    sim.run()
    assert seen == ["phy", "mac", "app"]


def test_events_processed_counter(sim):
    for _ in range(7):
        sim.schedule(0.1, lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_max_events_limits_run(sim):
    for i in range(10):
        sim.schedule(float(i), lambda: None)
    sim.run(max_events=4)
    assert sim.events_processed == 4
    assert sim.pending_events == 6


def test_reset_clears_queue_and_clock(sim):
    sim.schedule(5.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run(until=2.0)
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_nested_run_rejected(sim):
    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(0.1, reenter)
    sim.run()
