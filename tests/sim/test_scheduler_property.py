"""Property and regression tests for the scheduler's ordering invariants.

A randomized (seeded) op-sequence test interleaves push/cancel/pop/peek/clear
against a sorted-list reference model, checking the ``(time, priority,
sequence)`` contract after every step; explicit regression tests pin the
``clear()`` stale-handle bug (cancelling a cleared event used to drive the
live-event count negative).
"""

from __future__ import annotations

import random

import pytest

from repro.sim.scheduler import Scheduler
from repro.sim.simulator import Simulator


# ---------------------------------------------------------------------------
# clear() stale-handle regression
# ---------------------------------------------------------------------------

def test_clear_deactivates_outstanding_handles():
    sched = Scheduler()
    handles = [sched.push(float(t), lambda: None) for t in range(3)]
    sched.clear()
    assert len(sched) == 0
    for handle in handles:
        assert not handle.active
        sched.cancel(handle)  # must be a no-op, not a negative-count bug
        assert len(sched) == 0
    assert sched.empty
    sched.push(1.0, lambda: None)
    assert len(sched) == 1


def test_direct_handle_cancel_keeps_count_and_clock_consistent():
    # EventHandle.cancel() used to bypass the scheduler's accounting, leaving
    # pending_events overcounted and run(until=...) unable to advance.
    sim = Simulator(seed=7)
    handle = sim.schedule(5.0, lambda: None)
    handle.cancel()
    assert sim.pending_events == 0
    assert sim.run(until=10.0) == pytest.approx(10.0)
    handle.cancel()  # idempotent, never double-decrements
    assert sim.pending_events == 0


def test_simulator_cancel_after_reset_keeps_pending_nonnegative():
    sim = Simulator(seed=7)
    handles = [sim.schedule(delay, lambda: None) for delay in (0.5, 1.0, 2.0)]
    sim.reset()
    assert sim.pending_events == 0
    for handle in handles:
        sim.cancel(handle)
        assert sim.pending_events == 0
    sim.schedule(0.1, lambda: None)
    assert sim.pending_events == 1
    assert sim.run() == pytest.approx(0.1)


# ---------------------------------------------------------------------------
# Randomized model-based property test
# ---------------------------------------------------------------------------

class _ReferenceModel:
    """Sorted list of (time, priority, push_index) mirroring live events."""

    def __init__(self) -> None:
        self.entries = []  # (time, priority, push_index, token)

    def push(self, time, priority, push_index, token):
        self.entries.append((time, priority, push_index, token))
        self.entries.sort(key=lambda e: e[:3])

    def remove(self, token):
        self.entries = [e for e in self.entries if e[3] is not token]

    def pop_expected(self):
        return self.entries.pop(0) if self.entries else None

    def peek_time(self):
        return self.entries[0][0] if self.entries else None

    def __len__(self):
        return len(self.entries)


@pytest.mark.parametrize("seed", range(6))
def test_scheduler_matches_reference_model(seed):
    rng = random.Random(seed)
    sched = Scheduler()
    model = _ReferenceModel()
    live = []       # (handle, token) for events the model believes are queued
    retired = []    # handles already popped, cancelled or cleared
    push_index = 0

    for _ in range(400):
        op = rng.choices(["push", "pop", "cancel", "peek", "stale_cancel", "clear"],
                         weights=[40, 25, 15, 10, 8, 2])[0]
        if op == "push":
            # A coarse grid of times/priorities forces plenty of ties, which
            # is exactly where the (time, priority, sequence) contract bites.
            time = float(rng.randrange(10))
            priority = rng.choice((0, 10, 50))
            token = object()
            handle = sched.push(time, lambda _: None, args=(token,), priority=priority)
            model.push(time, priority, push_index, token)
            live.append((handle, token))
            push_index += 1
        elif op == "pop":
            event = sched.pop()
            expected = model.pop_expected()
            if expected is None:
                assert event is None
            else:
                exp_time, exp_priority, _, exp_token = expected
                assert (event.time, event.priority) == (exp_time, exp_priority)
                # FIFO among ties: the popped event must be *exactly* the one
                # the model predicts, not merely an equal-keyed sibling.
                assert event.args[0] is exp_token
                index = next(i for i, (_, token) in enumerate(live)
                             if token is exp_token)
                retired.append(live.pop(index)[0])
        elif op == "cancel" and live:
            index = rng.randrange(len(live))
            handle, token = live.pop(index)
            if rng.random() < 0.5:
                handle.cancel()  # direct handle path must account identically
            else:
                sched.cancel(handle)
            model.remove(token)
            retired.append(handle)
        elif op == "peek":
            assert sched.peek_time() == model.peek_time()
        elif op == "stale_cancel" and retired:
            # Cancelling a fired/cancelled/cleared handle must never change
            # the live count.
            before = len(sched)
            sched.cancel(rng.choice(retired))
            assert len(sched) == before
        elif op == "clear":
            sched.clear()
            retired.extend(handle for handle, _ in live)
            live.clear()
            model.entries.clear()

        assert len(sched) == len(model)
        assert len(sched) >= 0
        assert sched.empty == (len(model) == 0)

    # Drain: the full (time, priority, FIFO) order must match the model.
    while True:
        event = sched.pop()
        expected = model.pop_expected()
        if event is None:
            assert expected is None
            break
        assert (event.time, event.priority) == expected[:2]
        assert event.args[0] is expected[3]


# ---------------------------------------------------------------------------
# Heap compaction: cancelled events must not accumulate unboundedly
# ---------------------------------------------------------------------------

def test_restart_heavy_workload_keeps_heap_bounded():
    # A restarted timer = push + cancel of the previous expiration.  Before
    # compaction every cancelled event stayed buried until its (ever later)
    # time surfaced, so frequent restarts grew the heap without limit.
    sched = Scheduler()
    handle = sched.push(1.0, lambda: None)
    for restart in range(2, 50_002):
        new_handle = sched.push(float(restart), lambda: None)
        sched.cancel(handle)
        handle = new_handle
    assert len(sched) == 1
    # Bound: live events plus at most the compaction threshold's worth of
    # cancelled stragglers (the fraction only bites above the floor).
    assert sched.heap_size <= 2 * Scheduler.COMPACT_MIN_CANCELLED + 2
    assert sched.cancelled_in_heap <= sched.heap_size


def test_many_timers_restarting_stays_bounded_and_pops_in_order():
    # Interleaved RTO/HELLO-style timers: 32 logical timers each restarted
    # hundreds of times, then everything drains in exact (time, priority,
    # FIFO) order.
    rng = random.Random(11)
    sched = Scheduler()
    model = _ReferenceModel()
    timers = {}
    push_index = 0
    for _ in range(8_000):
        slot = rng.randrange(32)
        if slot in timers:
            old_handle, old_token = timers.pop(slot)
            sched.cancel(old_handle)
            model.remove(old_token)
        time = float(rng.randrange(1, 10_000))
        token = object()
        timers[slot] = (sched.push(time, lambda _: None, args=(token,)), token)
        model.push(time, 0, push_index, token)
        push_index += 1
        assert len(sched) == len(model)
        assert sched.heap_size <= max(
            2 * len(model), 2 * Scheduler.COMPACT_MIN_CANCELLED + len(model))
    while True:
        event = sched.pop()
        expected = model.pop_expected()
        if event is None:
            assert expected is None
            break
        assert event.time == expected[0]
        assert event.args[0] is expected[3]


def test_compaction_preserves_handle_semantics():
    sched = Scheduler()
    keep = sched.push(5.0, lambda: None)
    victims = [sched.push(float(i + 10), lambda: None) for i in range(200)]
    for victim in victims:
        victim.cancel()  # direct handle path routes through the scheduler
    assert len(sched) == 1
    assert sched.heap_size < 200  # compaction ran
    for victim in victims:
        assert not victim.active
        sched.cancel(victim)  # still a no-op after compaction
    assert len(sched) == 1
    assert keep.active
    assert sched.pop().time == 5.0
    assert sched.pop() is None
