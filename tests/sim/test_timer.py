"""Unit tests for one-shot and periodic timers."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.timer import PeriodicTimer, Timer


def test_timer_fires_after_delay(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    assert timer.running
    sim.run()
    assert fired == [2.0]
    assert not timer.running
    assert timer.expirations == 1


def test_timer_cancel_prevents_firing(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.running


def test_timer_restart_supersedes_previous_schedule(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    timer.start(3.0)
    sim.run()
    assert fired == [3.0]
    assert timer.expirations == 1


def test_timer_remaining_and_expiry_time(sim):
    timer = Timer(sim, lambda: None)
    timer.start(4.0)
    sim.schedule(1.0, lambda: None)
    sim.run(until=1.0)
    assert timer.expiry_time == pytest.approx(4.0)
    assert timer.remaining() == pytest.approx(3.0)


def test_timer_requires_callable(sim):
    with pytest.raises(SimulationError):
        Timer(sim, None)  # type: ignore[arg-type]


def test_timer_can_be_restarted_from_its_own_callback(sim):
    fired = []

    def on_expire():
        fired.append(sim.now)
        if len(fired) < 3:
            timer.start(1.0)

    timer = Timer(sim, on_expire)
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_periodic_timer_ticks_until_stopped(sim):
    ticks = []
    periodic = PeriodicTimer(sim, period=0.5, callback=lambda: ticks.append(sim.now))
    periodic.start()
    sim.schedule(2.25, periodic.stop)
    sim.run()
    assert ticks == [0.5, 1.0, 1.5, 2.0]
    assert periodic.ticks == 4


def test_periodic_timer_initial_delay(sim):
    ticks = []
    periodic = PeriodicTimer(sim, period=1.0, callback=lambda: ticks.append(sim.now))
    periodic.start(initial_delay=0.0)
    sim.schedule(2.5, periodic.stop)
    sim.run()
    assert ticks[0] == 0.0


def test_periodic_timer_rejects_nonpositive_period(sim):
    with pytest.raises(SimulationError):
        PeriodicTimer(sim, period=0.0, callback=lambda: None)
    timer = PeriodicTimer(sim, period=1.0, callback=lambda: None)
    with pytest.raises(SimulationError):
        timer.period = -1.0
