"""Unit tests for random streams, the tracer and monitors."""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.sim.monitor import CounterMonitor, TimeSeriesMonitor, TimeWeightedMonitor
from repro.sim.randomness import RandomStreams


# ---------------------------------------------------------------------------
# RandomStreams
# ---------------------------------------------------------------------------

def test_same_seed_and_label_give_same_sequence():
    a = RandomStreams(7).stream("mac.node1")
    b = RandomStreams(7).stream("mac.node1")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_labels_give_different_sequences():
    streams = RandomStreams(7)
    a = streams.stream("mac.node1")
    b = streams.stream("mac.node2")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_give_different_sequences():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(3)
    assert streams.stream("phy") is streams.stream("phy")
    assert "phy" in streams


def test_fork_derives_independent_root():
    root = RandomStreams(9)
    fork_a = root.fork("run-a")
    fork_b = root.fork("run-b")
    assert fork_a.root_seed != fork_b.root_seed
    assert RandomStreams(9).fork("run-a").root_seed == fork_a.root_seed


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

def test_tracer_disabled_records_nothing(sim):
    sim.tracer.emit("node1", "mac", "tx", bytes=100)
    assert sim.tracer.records == []


def test_tracer_records_and_filters(traced_sim):
    traced_sim.tracer.emit("node1", "mac", "tx", bytes=100)
    traced_sim.tracer.emit("node2", "mac", "rx", bytes=100)
    traced_sim.tracer.emit("node1", "phy", "tx_start")
    assert len(traced_sim.tracer.records) == 3
    assert len(traced_sim.tracer.filter(category="mac")) == 2
    assert len(traced_sim.tracer.filter(source="node1")) == 2
    assert len(traced_sim.tracer.filter(category="mac", event="rx")) == 1
    text = str(traced_sim.tracer.records[0])
    assert "mac.tx" in text


def test_tracer_listener_invoked(traced_sim):
    seen = []
    traced_sim.tracer.add_listener(seen.append)
    traced_sim.tracer.emit("n", "cat", "ev")
    assert len(seen) == 1 and seen[0].event == "ev"


def test_tracer_max_records(sim):
    sim.tracer.enabled = True
    sim.tracer.max_records = 2
    for i in range(5):
        sim.tracer.emit("n", "c", f"e{i}")
    assert len(sim.tracer.records) == 2
    assert sim.tracer.dropped == 3


def test_tracer_overflow_still_reaches_listeners(sim):
    """Storage truncates at max_records but the listener stream is complete."""
    sim.tracer.enabled = True
    sim.tracer.max_records = 1
    seen = []
    sim.tracer.add_listener(seen.append)
    for i in range(4):
        sim.tracer.emit("n", "c", f"e{i}")
    assert [record.event for record in sim.tracer.records] == ["e0"]
    assert sim.tracer.dropped == 3
    assert [record.event for record in seen] == ["e0", "e1", "e2", "e3"]
    sim.tracer.clear()
    assert sim.tracer.records == []
    assert sim.tracer.dropped == 0


# ---------------------------------------------------------------------------
# Monitors
# ---------------------------------------------------------------------------

def test_counter_monitor_accumulates():
    counters = CounterMonitor()
    counters.increment("tx")
    counters.increment("tx", 2)
    counters.increment("bytes", 100.5)
    assert counters.get("tx") == 3
    assert counters.get("bytes") == 100.5
    assert counters.get("missing") == 0.0
    counters.reset()
    assert counters.as_dict() == {}


def test_time_series_monitor_statistics():
    series = TimeSeriesMonitor("sizes")
    for t, v in [(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)]:
        series.record(t, v)
    assert series.count == 3
    assert series.mean() == pytest.approx(4.0)
    assert series.total() == pytest.approx(12.0)
    assert series.minimum() == 2.0
    assert series.maximum() == 6.0
    assert series.stddev() == pytest.approx(1.632993, rel=1e-5)


def test_time_series_monitor_empty():
    series = TimeSeriesMonitor()
    assert series.mean() == 0.0
    assert series.stddev() == 0.0


def test_time_weighted_monitor_average():
    sim = Simulator()
    level = TimeWeightedMonitor(sim, initial=0.0)
    sim.schedule(1.0, level.set, 10.0)
    sim.schedule(3.0, level.set, 0.0)
    sim.schedule(4.0, lambda: None)
    sim.run()
    # 1 s at 0, 2 s at 10, 1 s at 0 -> average 5.0
    assert level.time_average() == pytest.approx(5.0)


def test_time_weighted_monitor_adjust():
    sim = Simulator()
    level = TimeWeightedMonitor(sim, initial=1.0)
    sim.schedule(2.0, level.adjust, 3.0)
    sim.schedule(4.0, lambda: None)
    sim.run()
    assert level.value == 4.0
    assert level.time_average() == pytest.approx((1.0 * 2 + 4.0 * 2) / 4.0)
