"""Unit tests for the event scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulingError
from repro.sim.scheduler import Scheduler


def test_push_and_pop_in_time_order():
    sched = Scheduler()
    fired = []
    sched.push(2.0, fired.append, ("b",))
    sched.push(1.0, fired.append, ("a",))
    sched.push(3.0, fired.append, ("c",))
    times = []
    while not sched.empty:
        event = sched.pop()
        times.append(event.time)
        event.fire()
    assert times == [1.0, 2.0, 3.0]
    assert fired == ["a", "b", "c"]


def test_equal_times_fire_in_scheduling_order():
    sched = Scheduler()
    order = []
    for label in range(5):
        sched.push(1.0, order.append, (label,))
    while not sched.empty:
        sched.pop().fire()
    assert order == [0, 1, 2, 3, 4]


def test_priority_breaks_ties_before_sequence():
    sched = Scheduler()
    order = []
    sched.push(1.0, order.append, ("low",), priority=10)
    sched.push(1.0, order.append, ("high",), priority=0)
    while not sched.empty:
        sched.pop().fire()
    assert order == ["high", "low"]


def test_cancel_removes_event_from_live_count():
    sched = Scheduler()
    handle = sched.push(1.0, lambda: None)
    assert len(sched) == 1
    sched.cancel(handle)
    assert len(sched) == 0
    assert sched.pop() is None


def test_cancelled_event_does_not_fire():
    sched = Scheduler()
    fired = []
    keep = sched.push(1.0, fired.append, ("keep",))
    drop = sched.push(1.0, fired.append, ("drop",))
    sched.cancel(drop)
    while True:
        event = sched.pop()
        if event is None:
            break
        event.fire()
    assert fired == ["keep"]
    assert keep.active is False or keep.fired is False  # handle survives


def test_cancel_is_idempotent():
    sched = Scheduler()
    handle = sched.push(1.0, lambda: None)
    sched.cancel(handle)
    sched.cancel(handle)
    assert len(sched) == 0


def test_peek_time_skips_cancelled_head():
    sched = Scheduler()
    first = sched.push(1.0, lambda: None)
    sched.push(2.0, lambda: None)
    sched.cancel(first)
    assert sched.peek_time() == 2.0


def test_non_callable_callback_rejected():
    sched = Scheduler()
    with pytest.raises(SchedulingError):
        sched.push(1.0, "not callable")  # type: ignore[arg-type]


def test_clear_empties_queue():
    sched = Scheduler()
    for i in range(10):
        sched.push(float(i), lambda: None)
    sched.clear()
    assert sched.empty
    assert sched.pop() is None


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
def test_pop_order_is_always_sorted(times):
    sched = Scheduler()
    for t in times:
        sched.push(t, lambda: None)
    popped = []
    while not sched.empty:
        popped.append(sched.pop().time)
    assert popped == sorted(times)
