"""Determinism of the hot-path optimisation layer.

The speed overhaul added several caches along the per-frame path: the
channel's per-link budget memo, the error model's probability memo, the
PHY's linear-noise cache and the frame's sample-offset cache.  Every one of
them is only sound if it changes *when math runs*, never *which numbers come
out* — this file pins that contract in the nastiest configuration we can
build (time-varying shadowing + node mobility, where the memo must
invalidate on both coherence epochs and position changes), in-process and
across campaign pool workers.
"""

from __future__ import annotations

from repro.apps.cbr import CbrSource, UdpSink
from repro.campaign.runner import CampaignRunner
from repro.channel.medium import WirelessChannel
from repro.channel.propagation import LogNormalShadowing
from repro.core.policies import broadcast_aggregation
from repro.mobility.models import RandomWaypoint
from repro.sim.simulator import Simulator
from repro.topology.builders import build_linear_chain
from repro.units import mbps

DURATION = 3.0
TINY_TABLE02 = {"rates_mbps": (0.65,), "duration": 2.5}


def _mobile_udp_signature(seed: int, link_budget_memo: bool) -> str:
    """Full observable outcome of a mobile, time-varying-channel UDP run.

    Deliberately the worst case for the link-budget memo: log-normal
    shadowing redrawn every 0.5 s (coherence epochs) *and* a mobile relay
    (positions change under the memo), so a stale cache entry anywhere would
    shift a reception and change these counters.
    """
    sim = Simulator(seed=seed)
    propagation = LogNormalShadowing(sigma_db=4.0, coherence_time=0.5)
    channel = WirelessChannel(sim, propagation=propagation,
                              link_budget_memo=link_budget_memo)
    network = build_linear_chain(sim, hops=2, policy=broadcast_aggregation(),
                                 unicast_rate_mbps=0.65, channel=channel)
    relay = network.node(2)
    relay.set_mobility(RandomWaypoint(area=(-5.0, -5.0, 10.0, 5.0),
                                      speed_range=(1.0, 3.0)),
                       stop_time=DURATION)
    sink_node = network.node(3)
    sink = UdpSink(sink_node)
    source = CbrSource.saturating(network.node(1), sink_node.ip,
                                  link_rate_bps=mbps(0.65), overdrive=1.5)
    source.start(0.001)
    sim.run(until=DURATION)
    return repr((
        sink.packets_received,
        sink.bytes_received,
        sink.first_arrival,
        sink.last_arrival,
        [node.phy.frames_sent for node in network.nodes],
        [node.phy.frames_received for node in network.nodes],
        [node.phy.frames_collided for node in network.nodes],
        [node.phy.tx_airtime for node in network.nodes],
    ))


def test_link_budget_memo_is_invisible_on_mobile_time_varying_channel():
    # Memo on vs memo off must be byte-identical: the cache may only serve
    # entries whose (coherence epoch, tx position, rx position) key still
    # matches exactly, so mobility and epoch rollovers force recomputation.
    assert (_mobile_udp_signature(1, link_budget_memo=True)
            == _mobile_udp_signature(1, link_budget_memo=False))


def test_mobile_memo_runs_still_diverge_across_seeds():
    # Guard against the signature degenerating into something seed-blind.
    assert (_mobile_udp_signature(1, link_budget_memo=True)
            != _mobile_udp_signature(2, link_budget_memo=True))


def test_repeated_runs_in_one_process_are_byte_identical():
    # The probability/offset/noise caches live on per-run objects, but a
    # second run in the same process must not see any process-level leakage
    # (e.g. a module-global memo keyed on something seed-independent).
    first = _mobile_udp_signature(7, link_budget_memo=True)
    second = _mobile_udp_signature(7, link_budget_memo=True)
    assert first == second


def test_stationary_campaign_across_pool_workers_matches_inline():
    # The stationary fast path (memoised link budgets validated by identity
    # of the static position tuples, lazy transmission retirement) must
    # replicate byte for byte in fresh pool workers, or the campaign cache
    # would mix histories across machines/processes.
    inline = CampaignRunner(jobs=1).run_campaign("table02", seeds=[1, 2],
                                                 overrides=TINY_TABLE02)
    pooled = CampaignRunner(jobs=2).run_campaign("table02", seeds=[1, 2],
                                                 overrides=TINY_TABLE02)
    assert pooled.replicas[1].to_dict() == inline.replicas[1].to_dict()
    assert pooled.replicas[2].to_dict() == inline.replicas[2].to_dict()
    assert pooled.aggregate.to_dict() == inline.aggregate.to_dict()
