"""Differential proof that the spatial index changes speed, never bytes.

The channel's ``spatial_index=`` policy swaps candidate *enumeration* —
exhaustive scan vs uniform-grid lookup — while a detect-floor cull applied
identically in every mode decides who actually hears each frame.  If that
contract holds, a grid-indexed run is byte-for-byte identical to a
full-scan run of the same seed: same series, same metrics, same counters.
This file is the differential harness that pins it, mirroring
``test_perf_determinism.py``'s memo on/off pattern:

* every covered experiment family (stationary fig09, mobile-mesh rt02 and
  mob03, mobile + shadowing mob01) run twice, ``"scan"`` vs ``"grid"``,
  compared via ``ExperimentResult.to_dict()`` — the full observable output;
* the ``"auto"`` policy crossing its node-count threshold compared against
  both forced modes on an 80-node scenario (above the threshold), so the
  switchover itself is proven byte-neutral;
* campaign runs replicated across pool workers under ``"grid"``, proving
  the index also replicates in fresh processes (where any ordering derived
  from ``id()`` or set iteration would come unstuck).
"""

from __future__ import annotations

import pytest

from repro.campaign.runner import CampaignRunner
from repro.core.policies import broadcast_aggregation
from repro.experiments import (
    fig09_udp_flooding,
    mob01_flooding_mobility,
    mob03_mesh_routing,
    rt02_overhead_scaling,
)
from repro.net.flooding import FloodingSource
from repro.sim.simulator import Simulator
from repro.topology.city import populate_city
from repro.topology.mobile import MobileScenario

# Reduced parameter sets: one sweep point each, long enough for real
# contention, short enough that running every family twice stays cheap.
FIG09_PARAMS = {"rates_mbps": (0.65,), "flooding_intervals": (0.5,),
                "duration": 1.5}
MOB01_PARAMS = {"speeds_mps": (2.0,), "node_count": 5, "duration": 2.0,
                "flooding_interval": 0.25}
MOB03_PARAMS = {"speeds_mps": (2.0,), "grid_side": 2, "duration": 4.0,
                "warmup": 2.0, "include_no_aggregation": False}
RT02_PARAMS = {"flow_counts": (1,), "speeds_mps": (2.0,),
               "routings": ("aodv",), "duration": 5.0, "warmup": 2.0,
               "include_no_aggregation": False}

CASES = [
    pytest.param(fig09_udp_flooding, FIG09_PARAMS, id="fig09-stationary"),
    pytest.param(rt02_overhead_scaling, RT02_PARAMS, id="rt02-aodv-mesh"),
    pytest.param(mob01_flooding_mobility, MOB01_PARAMS,
                 id="mob01-mobile-shadowing"),
    pytest.param(mob03_mesh_routing, MOB03_PARAMS, id="mob03-dsdv-mesh"),
]


@pytest.mark.parametrize("module, params", CASES)
def test_grid_indexed_run_is_byte_identical_to_full_scan(module, params):
    # to_dict() is the experiment's entire observable output (series points,
    # metrics, notes); equality here means no float anywhere differed.
    scan = module.run(seed=3, spatial_index="scan", **params).to_dict()
    grid = module.run(seed=3, spatial_index="grid", **params).to_dict()
    assert grid == scan


@pytest.mark.parametrize("module, params",
                         [pytest.param(fig09_udp_flooding, FIG09_PARAMS,
                                       id="fig09")])
def test_differential_runs_still_diverge_across_seeds(module, params):
    # Guard against the comparison degenerating into something seed-blind.
    assert (module.run(seed=3, spatial_index="grid", **params).to_dict()
            != module.run(seed=4, spatial_index="grid", **params).to_dict())


def _city_flood_signature(seed: int, spatial_index: str) -> str:
    """Full observable outcome of an 80-node flooding run.

    80 nodes sits *above* AUTO_SPATIAL_THRESHOLD (64), so ``"auto"`` takes
    the grid path here — comparing it against both forced modes proves the
    auto switchover is byte-neutral exactly where it engages.
    """
    sim = Simulator(seed=seed)
    scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                              unicast_rate_mbps=0.65, stop_time=1.0,
                              spatial_index=spatial_index)
    nodes = populate_city(scenario, 80)
    flooders = []
    for node in nodes[::13]:
        flooder = FloodingSource(sim, node.network, node.ip, interval=0.2,
                                 payload_bytes=64)
        flooder.start()
        flooders.append(flooder)
    sim.run(until=1.0)
    return repr((
        [flooder.packets_sent for flooder in flooders],
        [node.network.stats.delivered_broadcast for node in nodes],
        [node.phy.frames_sent for node in nodes],
        [node.phy.frames_received for node in nodes],
        [node.phy.frames_collided for node in nodes],
    ))


def test_auto_threshold_crossing_is_byte_neutral():
    scan = _city_flood_signature(5, "scan")
    auto = _city_flood_signature(5, "auto")
    grid = _city_flood_signature(5, "grid")
    assert auto == scan
    assert grid == scan


def test_auto_signature_still_diverges_across_seeds():
    assert _city_flood_signature(5, "auto") != _city_flood_signature(6, "auto")


def test_grid_campaign_across_pool_workers_matches_inline():
    # The grid index is rebuilt from scratch in every pool worker; candidate
    # order must come out identical there (registration order), or replicas
    # would diverge from the inline run.
    overrides = {**FIG09_PARAMS, "spatial_index": "grid"}
    inline = CampaignRunner(jobs=1).run_campaign("fig09", seeds=[1, 2],
                                                 overrides=overrides)
    pooled = CampaignRunner(jobs=2).run_campaign("fig09", seeds=[1, 2],
                                                 overrides=overrides)
    assert pooled.replicas[1].to_dict() == inline.replicas[1].to_dict()
    assert pooled.replicas[2].to_dict() == inline.replicas[2].to_dict()
    assert pooled.aggregate.to_dict() == inline.aggregate.to_dict()


def test_scan_and_grid_campaigns_agree_across_pool_workers():
    # Replica payloads carry no parameter echo, so scan-mode and grid-mode
    # campaigns of the same seeds must produce identical replica dicts.
    scan = CampaignRunner(jobs=2).run_campaign(
        "fig09", seeds=[1, 2], overrides={**FIG09_PARAMS,
                                          "spatial_index": "scan"})
    grid = CampaignRunner(jobs=2).run_campaign(
        "fig09", seeds=[1, 2], overrides={**FIG09_PARAMS,
                                          "spatial_index": "grid"})
    assert grid.replicas[1].to_dict() == scan.replicas[1].to_dict()
    assert grid.replicas[2].to_dict() == scan.replicas[2].to_dict()
