"""Integration tests: applications over the full stack and topology builders."""

from __future__ import annotations

import pytest

from repro.apps.cbr import PAPER_UDP_PAYLOAD_BYTES, CbrSource, UdpSink
from repro.apps.file_transfer import run_file_transfer_pair
from repro.core import broadcast_aggregation, no_aggregation, unicast_aggregation
from repro.errors import ConfigurationError
from repro.node.hydra import default_hydra_profile
from repro.sim import Simulator
from repro.topology import build_linear_chain, build_star
from repro.units import mbps


# ---------------------------------------------------------------------------
# Topology builders
# ---------------------------------------------------------------------------

def test_linear_chain_structure():
    sim = Simulator(seed=51)
    network = build_linear_chain(sim, hops=3, policy=broadcast_aggregation())
    assert len(network) == 4
    assert [node.index for node in network.nodes] == [1, 2, 3, 4]
    # Static routes: node 1 reaches node 4 via node 2.
    assert network.node(1).routing_table.next_hop(network.node(4).ip) == network.node(2).ip
    assert network.node(4).routing_table.next_hop(network.node(1).ip) == network.node(3).ip
    # Adjacent spacing is the paper's 2.5 m.
    assert network.node(2).position[0] - network.node(1).position[0] == pytest.approx(2.5)


def test_linear_chain_rejects_zero_hops():
    sim = Simulator(seed=52)
    with pytest.raises(ConfigurationError):
        build_linear_chain(sim, hops=0, policy=broadcast_aggregation())


def test_star_structure_and_routes():
    sim = Simulator(seed=53)
    network = build_star(sim, policy=broadcast_aggregation())
    assert len(network) == 4
    centre = network.node(2)
    # Leaves route to each other through the centre.
    assert network.node(3).routing_table.next_hop(network.node(1).ip) == centre.ip
    assert network.node(4).routing_table.next_hop(network.node(1).ip) == centre.ip
    assert centre.routing_table.next_hop(network.node(1).ip) == network.node(1).ip


def test_per_node_policy_mapping():
    sim = Simulator(seed=54)
    from repro.core import delayed_broadcast_aggregation
    policies = {1: broadcast_aggregation(), 2: delayed_broadcast_aggregation(),
                3: broadcast_aggregation()}
    network = build_linear_chain(sim, hops=2, policy=policies)
    assert network.node(2).policy.is_delayed
    assert not network.node(1).policy.is_delayed
    with pytest.raises(ConfigurationError):
        build_linear_chain(sim, hops=3, policy=policies)  # node 4 missing


def test_hydra_profile_defaults_match_paper_table1():
    profile = default_hydra_profile()
    assert [round(r.data_rate_mbps, 2) for r in profile.rate_table][:4] == [0.65, 1.3, 1.95, 2.6]
    assert profile.tx_power_dbm == pytest.approx(8.9, abs=0.2)  # 7.7 mW
    assert profile.use_rts_cts
    resolved = profile.with_rates(2.6, 0.65)
    assert resolved.unicast_rate().data_rate_mbps == 2.6
    assert resolved.broadcast_rate().data_rate_mbps == 0.65
    assert profile.broadcast_rate() is None


def test_network_rate_setters():
    sim = Simulator(seed=55)
    network = build_linear_chain(sim, hops=2, policy=broadcast_aggregation(),
                                 unicast_rate_mbps=0.65)
    network.set_unicast_rate(2.6)
    network.set_broadcast_rate(1.3)
    for node in network.nodes:
        assert node.mac.unicast_rate.data_rate_mbps == 2.6
        assert node.mac.broadcast_rate.data_rate_mbps == 1.3


# ---------------------------------------------------------------------------
# CBR / sink over the stack
# ---------------------------------------------------------------------------

def test_cbr_source_and_sink_measure_goodput():
    sim = Simulator(seed=56)
    network = build_linear_chain(sim, hops=2, policy=unicast_aggregation(),
                                 unicast_rate_mbps=1.3)
    sink = UdpSink(network.node(3))
    source = CbrSource(network.node(1), network.node(3).ip, interval=0.05)
    source.start()
    sim.run(until=5.0)
    assert sink.packets_received > 50
    assert sink.throughput_mbps(0.0, 5.0) > 0.1
    assert source.offered_load_bps == pytest.approx(PAPER_UDP_PAYLOAD_BYTES * 8 / 0.05)
    source.stop()


def test_saturating_source_fills_the_pipe():
    sim = Simulator(seed=57)
    network = build_linear_chain(sim, hops=2, policy=unicast_aggregation(),
                                 unicast_rate_mbps=0.65)
    sink = UdpSink(network.node(3))
    source = CbrSource.saturating(network.node(1), network.node(3).ip,
                                  link_rate_bps=mbps(0.65))
    source.start(0.001)
    sim.run(until=10.0)
    throughput = sink.throughput_mbps(0.0, 10.0)
    # A 2-hop path at 0.65 Mbps PHY rate yields roughly a quarter of the PHY rate.
    assert 0.15 < throughput < 0.45
    # Queues must have built up at the source for aggregation to engage.
    assert network.node(1).mac_stats.average_subframes_per_frame > 1.5


def test_cbr_validation():
    sim = Simulator(seed=58)
    network = build_linear_chain(sim, hops=1, policy=no_aggregation())
    with pytest.raises(ConfigurationError):
        CbrSource(network.node(1), network.node(2).ip, interval=0.0)
    with pytest.raises(ConfigurationError):
        CbrSource(network.node(1), network.node(2).ip, payload_bytes=0, local_port=9100)


# ---------------------------------------------------------------------------
# File transfer over the stack
# ---------------------------------------------------------------------------

def test_file_transfer_completes_and_reports_throughput():
    sim = Simulator(seed=59)
    network = build_linear_chain(sim, hops=2, policy=broadcast_aggregation(),
                                 unicast_rate_mbps=1.3)
    sender, receiver = run_file_transfer_pair(network.node(1), network.node(3),
                                              file_bytes=60_000)
    sim.run(until=60.0)
    assert receiver.complete
    assert receiver.bytes_received >= 60_000
    assert receiver.throughput_mbps(0.0) > 0.1
    assert sender.finished


def test_classified_acks_flow_through_relay_broadcast_queue():
    """The relay forwards TCP ACKs via its broadcast queue when BA is enabled."""
    sim = Simulator(seed=60)
    network = build_linear_chain(sim, hops=2, policy=broadcast_aggregation(),
                                 unicast_rate_mbps=1.3)
    _, receiver = run_file_transfer_pair(network.node(1), network.node(3), file_bytes=60_000)
    sim.run(until=60.0)
    relay = network.node(2)
    assert receiver.complete
    assert relay.mac_stats.classified_ack_subframes_sent > 10
    assert relay.mac_stats.broadcast_subframes_sent > 10


def test_na_ua_ba_throughput_ordering_2hop():
    """The paper's headline qualitative result: NA < UA < BA."""
    throughputs = {}
    for name, policy in (("NA", no_aggregation()), ("UA", unicast_aggregation()),
                         ("BA", broadcast_aggregation())):
        sim = Simulator(seed=61)
        network = build_linear_chain(sim, hops=2, policy=policy, unicast_rate_mbps=2.6)
        _, receiver = run_file_transfer_pair(network.node(1), network.node(3),
                                             file_bytes=100_000)
        sim.run(until=120.0)
        assert receiver.complete
        throughputs[name] = receiver.throughput_mbps(0.0)
    assert throughputs["NA"] < throughputs["UA"] < throughputs["BA"]
