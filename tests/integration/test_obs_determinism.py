"""Observability must be a pure observer: byte-identical results on or off.

Every instrument added by ``repro.obs`` (tracer adoption, metrics counters,
frame capture, the profiled scheduler loop) only *reads* simulation state —
no RNG draws, no scheduling.  These tests enforce the contract the rest of
the suite assumes: the same seed produces byte-identical results whether an
observability session is active or not, in-process and when an observed
inline campaign is compared against unobserved pool workers.
"""

from __future__ import annotations

import pytest

from repro.campaign.runner import CampaignRunner
from repro.core.policies import broadcast_aggregation, unicast_aggregation
from repro.experiments import (fig09_udp_flooding, mob01_flooding_mobility,
                               rt02_overhead_scaling)
from repro.experiments.scenarios import run_tcp_transfer, run_udp_saturation
from repro.obs.session import observe

TINY_FIG09 = {"rates_mbps": (0.65,), "flooding_intervals": (0.5,),
              "duration": 2.0}
TINY_RT02 = {"flow_counts": (2,), "speeds_mps": (2.0,),
             "routings": ("aodv",), "warmup": 1.0, "duration": 4.0,
             "include_no_aggregation": False}
TINY_MOB01 = {"speeds_mps": (2.0,), "node_count": 4, "duration": 2.0}


def _udp_signature(seed: int) -> str:
    result = run_udp_saturation(broadcast_aggregation(), duration=2.0,
                                flooding_interval=0.5, seed=seed)
    return repr((result.throughput_mbps, result.packets_received,
                 result.sink.bytes_received, result.sink.first_arrival,
                 result.sink.last_arrival))


def _tcp_signature(seed: int) -> str:
    result = run_tcp_transfer(unicast_aggregation(), file_bytes=20_000,
                              seed=seed)
    return repr((result.throughput_mbps, result.completion_time,
                 result.receiver.bytes_received, result.complete))


@pytest.mark.parametrize("signature", [_udp_signature, _tcp_signature],
                         ids=["udp_saturation", "tcp_transfer"])
def test_full_observability_is_byte_neutral(signature):
    plain = signature(7)
    with observe(trace=True, metrics=True, capture=True, profile=True) as session:
        observed = signature(7)
    assert observed == plain
    # ...and the session really was watching, not silently disabled.
    assert session.simulators
    assert any(sim.tracer.records for sim in session.simulators)
    assert any(len(sim.metrics) for sim in session.simulators)
    assert len(session.capture) > 0
    assert session.profiler.events > 0


def test_tracer_overflow_does_not_change_results():
    # A tiny storage bound exercises the overflow path mid-run; dropping
    # records must not perturb the simulation itself.
    plain = _udp_signature(3)
    with observe(trace=True, max_trace_records=10) as session:
        bounded = _udp_signature(3)
    assert bounded == plain
    assert any(sim.tracer.dropped > 0 for sim in session.simulators)


def test_observed_experiment_sweep_is_byte_neutral():
    # fig09 creates several simulators per run; the session adopts each one.
    plain = repr(fig09_udp_flooding.run(**TINY_FIG09, seed=5).to_dict())
    with observe(trace=True, metrics=True, capture=True) as session:
        observed = repr(fig09_udp_flooding.run(**TINY_FIG09, seed=5).to_dict())
    assert observed == plain
    assert len(session.simulators) >= 2


@pytest.mark.parametrize("experiment,params", [
    (fig09_udp_flooding, TINY_FIG09),
    (rt02_overhead_scaling, TINY_RT02),
    (mob01_flooding_mobility, TINY_MOB01),
], ids=["fig09", "rt02", "mob01"])
def test_journey_tracing_is_byte_neutral_and_conserves_packets(experiment,
                                                               params):
    # Journeys are recorded in a side table keyed by packet uid — never on
    # the packet itself — so following every packet must not change a byte.
    plain = repr(experiment.run(**params, seed=11).to_dict())
    with observe(journey=True) as session:
        journeyed = repr(experiment.run(**params, seed=11).to_dict())
    assert journeyed == plain
    # The recorder really followed traffic...
    assert session.journey_count() > 0
    # ...and every followed packet is accounted for on every node of every
    # simulator: offered == delivered + transferred + Σ drops + in-flight.
    report = session.conservation_report()
    assert report["balanced"], report
    for entry in report["simulations"]:
        assert entry["audit"]["violations"] == []
        for node, ledger in entry["audit"]["nodes"].items():
            assert ledger["balanced"], (node, ledger)
            assert ledger["leaked"] == 0, (node, ledger)


def test_journey_cap_counts_overflow_without_perturbing_the_run():
    plain = repr(fig09_udp_flooding.run(**TINY_FIG09, seed=4).to_dict())
    with observe(journey=True, max_journeys=25) as session:
        capped = repr(fig09_udp_flooding.run(**TINY_FIG09, seed=4).to_dict())
    assert capped == plain
    recorders = [recorder for _, recorder in session.journey_recorders()]
    assert any(recorder.dropped > 0 for recorder in recorders)
    assert all(len(recorder) <= 25 for recorder in recorders)
    # Truncated recorders still audit cleanly over the journeys they kept.
    assert session.conservation_report()["balanced"]


def test_observed_inline_campaign_matches_unobserved_pool_workers():
    # Inline jobs run in this process and get adopted by the active session;
    # pool workers run unobserved in fresh processes.  Both must produce the
    # same bytes, or observing a campaign would invalidate its cache.
    with observe(trace=True, metrics=True, capture=True):
        inline = CampaignRunner(jobs=1).run_campaign(
            "fig09", seeds=[1, 2], overrides=TINY_FIG09)
    pooled = CampaignRunner(jobs=2).run_campaign(
        "fig09", seeds=[1, 2], overrides=TINY_FIG09)
    assert inline.replicas[1].to_dict() == pooled.replicas[1].to_dict()
    assert inline.replicas[2].to_dict() == pooled.replicas[2].to_dict()
    assert inline.aggregate.to_dict() == pooled.aggregate.to_dict()
