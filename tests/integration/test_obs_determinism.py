"""Observability must be a pure observer: byte-identical results on or off.

Every instrument added by ``repro.obs`` (tracer adoption, metrics counters,
frame capture, the profiled scheduler loop) only *reads* simulation state —
no RNG draws, no scheduling.  These tests enforce the contract the rest of
the suite assumes: the same seed produces byte-identical results whether an
observability session is active or not, in-process and when an observed
inline campaign is compared against unobserved pool workers.
"""

from __future__ import annotations

import pytest

from repro.campaign.runner import CampaignRunner
from repro.core.policies import broadcast_aggregation, unicast_aggregation
from repro.experiments import fig09_udp_flooding
from repro.experiments.scenarios import run_tcp_transfer, run_udp_saturation
from repro.obs.session import observe

TINY_FIG09 = {"rates_mbps": (0.65,), "flooding_intervals": (0.5,),
              "duration": 2.0}


def _udp_signature(seed: int) -> str:
    result = run_udp_saturation(broadcast_aggregation(), duration=2.0,
                                flooding_interval=0.5, seed=seed)
    return repr((result.throughput_mbps, result.packets_received,
                 result.sink.bytes_received, result.sink.first_arrival,
                 result.sink.last_arrival))


def _tcp_signature(seed: int) -> str:
    result = run_tcp_transfer(unicast_aggregation(), file_bytes=20_000,
                              seed=seed)
    return repr((result.throughput_mbps, result.completion_time,
                 result.receiver.bytes_received, result.complete))


@pytest.mark.parametrize("signature", [_udp_signature, _tcp_signature],
                         ids=["udp_saturation", "tcp_transfer"])
def test_full_observability_is_byte_neutral(signature):
    plain = signature(7)
    with observe(trace=True, metrics=True, capture=True, profile=True) as session:
        observed = signature(7)
    assert observed == plain
    # ...and the session really was watching, not silently disabled.
    assert session.simulators
    assert any(sim.tracer.records for sim in session.simulators)
    assert any(len(sim.metrics) for sim in session.simulators)
    assert len(session.capture) > 0
    assert session.profiler.events > 0


def test_tracer_overflow_does_not_change_results():
    # A tiny storage bound exercises the overflow path mid-run; dropping
    # records must not perturb the simulation itself.
    plain = _udp_signature(3)
    with observe(trace=True, max_trace_records=10) as session:
        bounded = _udp_signature(3)
    assert bounded == plain
    assert any(sim.tracer.dropped > 0 for sim in session.simulators)


def test_observed_experiment_sweep_is_byte_neutral():
    # fig09 creates several simulators per run; the session adopts each one.
    plain = repr(fig09_udp_flooding.run(**TINY_FIG09, seed=5).to_dict())
    with observe(trace=True, metrics=True, capture=True) as session:
        observed = repr(fig09_udp_flooding.run(**TINY_FIG09, seed=5).to_dict())
    assert observed == plain
    assert len(session.simulators) >= 2


def test_observed_inline_campaign_matches_unobserved_pool_workers():
    # Inline jobs run in this process and get adopted by the active session;
    # pool workers run unobserved in fresh processes.  Both must produce the
    # same bytes, or observing a campaign would invalidate its cache.
    with observe(trace=True, metrics=True, capture=True):
        inline = CampaignRunner(jobs=1).run_campaign(
            "fig09", seeds=[1, 2], overrides=TINY_FIG09)
    pooled = CampaignRunner(jobs=2).run_campaign(
        "fig09", seeds=[1, 2], overrides=TINY_FIG09)
    assert inline.replicas[1].to_dict() == pooled.replicas[1].to_dict()
    assert inline.replicas[2].to_dict() == pooled.replicas[2].to_dict()
    assert inline.aggregate.to_dict() == pooled.aggregate.to_dict()
