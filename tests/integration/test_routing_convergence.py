"""DSDV convergence property: loop-free shortest routes once motion stops.

The property backing the dynamic-routing subsystem: on *any* connected
topology, within a bounded number of advertisement periods after motion
stops, every node holds a route to every other node that

* is **loop-free** (following next hops reaches the destination without
  revisiting a node), and
* has the **shortest hop count** (equal to the BFS distance on the
  connectivity graph induced by the decodability range).

Random placements are drawn per seed from a dedicated RNG, rejected until
connected, and checked pair-exhaustively.  A second test exercises the
"motion stops" clause literally: nodes roam first, then freeze, and the
property must hold on the frozen topology.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.core.policies import broadcast_aggregation
from repro.mobility.models import RandomWaypoint
from repro.net.discovery import HelloConfig
from repro.net.dynamic_routing import DsdvConfig
from repro.sim.simulator import Simulator
from repro.topology.mobile import MobileScenario

#: The default indoor propagation model decodes out to ~12.5 m, but subframe
#: survival at 0.65 Mbps only stays ~1.0 up to ~8 m and collapses past 10 m.
#: Graph edges therefore require <= LINK_M (reliable), non-edges require
#: > NO_LINK_M (undecodable), and placements with any pair in the lossy band
#: between them are rejected — the connectivity graph the property checks
#: then matches what the radios actually experience.
LINK_M = 8.0
NO_LINK_M = 12.5

FAST_DSDV = DsdvConfig(hello=HelloConfig(hello_interval=0.4),
                       advertise_interval=1.2)


def _connectivity(positions: Sequence[Tuple[float, float]]) -> List[List[int]]:
    """Adjacency lists under the decodability range."""
    n = len(positions)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if math.dist(positions[i], positions[j]) <= LINK_M:
                adjacency[i].append(j)
                adjacency[j].append(i)
    return adjacency


def _bfs_distances(adjacency: List[List[int]], start: int) -> Dict[int, int]:
    distances = {start: 0}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def _ambiguous(positions: Sequence[Tuple[float, float]]) -> bool:
    """True when any pair sits in the lossy band between link and no-link."""
    n = len(positions)
    for i in range(n):
        for j in range(i + 1, n):
            distance = math.dist(positions[i], positions[j])
            if LINK_M < distance <= NO_LINK_M:
                return True
    return False


def _connected_placement(rng: random.Random, node_count: int,
                         area_m: float) -> List[Tuple[float, float]]:
    """Random positions, rejected until connected and unambiguous."""
    while True:
        positions = [(rng.uniform(0.0, area_m), rng.uniform(0.0, area_m))
                     for _ in range(node_count)]
        if _ambiguous(positions):
            continue
        adjacency = _connectivity(positions)
        if len(_bfs_distances(adjacency, 0)) == node_count:
            return positions


def _assert_routes_loop_free_and_shortest(scenario: MobileScenario,
                                          positions: Sequence[Tuple[float, float]]) -> None:
    adjacency = _connectivity(positions)
    nodes = scenario.network.nodes
    index_of = {node.ip: i for i, node in enumerate(nodes)}
    for i, node in enumerate(nodes):
        distances = _bfs_distances(adjacency, i)
        for j, target in enumerate(nodes):
            if i == j:
                continue
            expected = distances[j]
            entry = node.router.table.entry_for(target.ip)
            assert entry is not None and entry.valid, (
                f"node {i + 1} has no route to node {j + 1}")
            assert entry.metric == expected, (
                f"node {i + 1} -> node {j + 1}: metric {entry.metric}, "
                f"BFS distance {expected}")
            # Walk the forwarding chain: it must reach the target in exactly
            # the advertised number of hops without revisiting any node.
            current, hops, visited = i, 0, {i}
            while current != j:
                step = nodes[current].router.table.entry_for(target.ip)
                assert step is not None and step.valid
                current = index_of[step.next_hop]
                hops += 1
                assert current not in visited, (
                    f"routing loop towards node {j + 1} at node {current + 1}")
                visited.add(current)
                assert hops <= len(nodes)
            assert hops == expected


#: Advertisement periods within which convergence must complete: enough for
#: initial HELLO discovery plus metric-by-metric propagation across the
#: diameter, with slack for lost updates (they contend with nothing here).
CONVERGENCE_PERIODS = 8


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_random_connected_topologies_converge_loop_free_shortest(seed):
    placement_rng = random.Random(1000 + seed)
    node_count = placement_rng.choice([4, 5, 6])
    positions = _connected_placement(placement_rng, node_count, area_m=24.0)

    horizon = CONVERGENCE_PERIODS * FAST_DSDV.advertise_interval
    sim = Simulator(seed=seed)
    scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                              stop_time=horizon, routing="dsdv",
                              routing_config=FAST_DSDV)
    for position in positions:
        scenario.add_node(position)
    sim.run(until=horizon)
    _assert_routes_loop_free_and_shortest(scenario, positions)


def test_convergence_after_motion_stops():
    # Endpoints pinned 26 m apart; three relays roam (scrambling routes and
    # sequence numbers), then stop on clean chain slots: 6.5 m neighbor
    # links (reliable), 13 m next-nearest (undecodable).  Whatever state the
    # roaming phase left behind, the chain must converge within the bounded
    # number of advertisement periods.
    roam_time = 6.0
    chain_slots = ((6.5, 0.0), (13.0, 0.0), (19.5, 0.0))
    sim = Simulator(seed=7)
    scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                              stop_time=roam_time, routing="dsdv",
                              routing_config=FAST_DSDV)
    scenario.add_node((0.0, 0.0))
    scenario.add_node((26.0, 0.0))
    area = (0.0, -8.0, 26.0, 8.0)
    for start in chain_slots:
        scenario.add_node(start, RandomWaypoint(area=area, speed_range=(4.0, 4.0)))
    sim.run(until=roam_time)

    # Motion stops: drop the models and pin the relays on their chain slots.
    relays = scenario.network.nodes[2:]
    for node, slot in zip(relays, chain_slots):
        node.mobility.stop()
        node.phy.mobility = None  # position queries return the snapshot again
        node.position = slot
    frozen = [node.position for node in scenario.network.nodes]
    assert not _ambiguous(frozen)
    assert len(_bfs_distances(_connectivity(frozen), 0)) == len(frozen)

    # Re-arm the control plane beyond the original stop_time and let it
    # reconverge on the frozen topology.
    deadline = sim.now + CONVERGENCE_PERIODS * FAST_DSDV.advertise_interval
    for node in scenario.network.nodes:
        node.router.stop()
        node.router.start(stop_time=deadline)
    sim.run(until=deadline)
    _assert_routes_loop_free_and_shortest(scenario, frozen)
