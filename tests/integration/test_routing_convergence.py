"""Routing properties on random connected topologies, DSDV and AODV.

The protocol-agnostic harness lives in ``tests/helpers/routing.py``; this
module instantiates it for both dynamic control planes:

* **DSDV (proactive)**: on *any* connected topology, within a bounded number
  of advertisement periods after motion stops, every node holds a route to
  every other node that is **loop-free** (following next hops reaches the
  destination without revisiting a node) and has the **shortest hop count**
  (equal to the BFS distance on the connectivity graph induced by the
  decodability range).
* **AODV (reactive)**: after a demand-driven warm-up — one probe packet per
  requested pair, staggered so discoveries do not collide — every requested
  connected pair holds a **loop-free route that reaches its destination**.
  On-demand routes follow whichever RREQ copy won the flood, so shortest-path
  metrics are not part of the reactive property.

Random placements are drawn per seed from a dedicated RNG, rejected until
connected, and checked pair-exhaustively.  A second DSDV test exercises the
"motion stops" clause literally: nodes roam first, then freeze, and the
property must hold on the frozen topology.
"""

from __future__ import annotations

import random

import pytest

from helpers.routing import (
    ambiguous,
    assert_routes_loop_free_and_reach,
    assert_routes_loop_free_and_shortest,
    bfs_distances,
    connected_placement,
    connectivity,
)
from repro.core.policies import broadcast_aggregation
from repro.mobility.models import RandomWaypoint
from repro.net.discovery import HelloConfig
from repro.net.dynamic_routing import DsdvConfig
from repro.net.on_demand import AodvConfig
from repro.sim.simulator import Simulator
from repro.topology.mobile import MobileScenario

FAST_DSDV = DsdvConfig(hello=HelloConfig(hello_interval=0.4),
                       advertise_interval=1.2)

#: Long active-route lifetime: the reactive property is about discovery
#: correctness, so warmed-up routes must not expire before the assertions.
FAST_AODV = AodvConfig(hello=HelloConfig(hello_interval=0.4),
                       active_route_lifetime=120.0,
                       ring_start_ttl=1, ring_ttl_increment=2)

#: Advertisement periods within which DSDV convergence must complete: enough
#: for initial HELLO discovery plus metric-by-metric propagation across the
#: diameter, with slack for lost updates (they contend with nothing here).
CONVERGENCE_PERIODS = 8

#: Spacing between AODV warm-up probes; generous enough that an
#: expanding-ring escalation for one pair finishes before the next begins.
PROBE_SPACING_S = 0.15


def _random_scenario(protocol: str, seed: int):
    """A random connected placement running the given control plane."""
    placement_rng = random.Random(1000 + seed)
    node_count = placement_rng.choice([4, 5, 6])
    positions = connected_placement(placement_rng, node_count, area_m=24.0)
    config = FAST_DSDV if protocol == "dsdv" else FAST_AODV
    horizon = CONVERGENCE_PERIODS * FAST_DSDV.advertise_interval
    sim = Simulator(seed=seed)
    scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                              stop_time=horizon, routing=protocol,
                              routing_config=config)
    for position in positions:
        scenario.add_node(position)
    return sim, scenario, positions, horizon


def _warm_up_on_demand(sim, scenario, pairs, start: float) -> float:
    """Send one staggered probe datagram per requested pair; return the end time."""
    nodes = scenario.network.nodes
    sockets = {i: node.udp.bind(9100) for i, node in enumerate(nodes)}
    for offset, (source_index, dest_index) in enumerate(pairs):
        sim.schedule_at(start + offset * PROBE_SPACING_S,
                        sockets[source_index].send_to,
                        nodes[dest_index].ip, 9100, 16)
    return start + len(pairs) * PROBE_SPACING_S


@pytest.mark.parametrize("protocol", ["dsdv", "aodv"])
@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_random_connected_topologies_yield_loop_free_routes(protocol, seed):
    sim, scenario, positions, horizon = _random_scenario(protocol, seed)
    if protocol == "dsdv":
        # Proactive: converges on its own within the bounded horizon.
        sim.run(until=horizon)
        assert_routes_loop_free_and_shortest(scenario, positions)
        return
    # Reactive: routes exist only on demand, so request every ordered pair
    # (all are connected — the placement is) and assert each one routes.
    node_count = len(scenario.network.nodes)
    pairs = [(i, j) for i in range(node_count) for j in range(node_count)
             if i != j]
    probes_done = _warm_up_on_demand(sim, scenario, pairs, start=1.0)
    # Re-bound the control plane so late discoveries can still complete.
    deadline = probes_done + 3.0
    for node in scenario.network.nodes:
        node.router.stop()
        node.router.start(stop_time=deadline)
    sim.run(until=deadline)
    routers = [node.router for node in scenario.network.nodes]
    assert sum(router.discoveries_failed for router in routers) == 0
    assert_routes_loop_free_and_reach(scenario, pairs)


def test_convergence_after_motion_stops():
    # Endpoints pinned 26 m apart; three relays roam (scrambling routes and
    # sequence numbers), then stop on clean chain slots: 6.5 m neighbor
    # links (reliable), 13 m next-nearest (undecodable).  Whatever state the
    # roaming phase left behind, the chain must converge within the bounded
    # number of advertisement periods.
    roam_time = 6.0
    chain_slots = ((6.5, 0.0), (13.0, 0.0), (19.5, 0.0))
    sim = Simulator(seed=7)
    scenario = MobileScenario(sim, policy=broadcast_aggregation(),
                              stop_time=roam_time, routing="dsdv",
                              routing_config=FAST_DSDV)
    scenario.add_node((0.0, 0.0))
    scenario.add_node((26.0, 0.0))
    area = (0.0, -8.0, 26.0, 8.0)
    for start in chain_slots:
        scenario.add_node(start, RandomWaypoint(area=area, speed_range=(4.0, 4.0)))
    sim.run(until=roam_time)

    # Motion stops: drop the models and pin the relays on their chain slots.
    relays = scenario.network.nodes[2:]
    for node, slot in zip(relays, chain_slots):
        node.mobility.stop()
        node.phy.mobility = None  # position queries return the snapshot again
        node.position = slot
    frozen = [node.position for node in scenario.network.nodes]
    assert not ambiguous(frozen)
    assert len(bfs_distances(connectivity(frozen), 0)) == len(frozen)

    # Re-arm the control plane beyond the original stop_time and let it
    # reconverge on the frozen topology.
    deadline = sim.now + CONVERGENCE_PERIODS * FAST_DSDV.advertise_interval
    for node in scenario.network.nodes:
        node.router.stop()
        node.router.start(stop_time=deadline)
    sim.run(until=deadline)
    assert_routes_loop_free_and_shortest(scenario, frozen)
