"""The dynamic-routing experiments (mob03, mob04, rt01) and their contracts.

The headline acceptance criterion lives here: ``mob04`` must demonstrate
*measured route reconvergence* — delivery resumes via the backup path after
the orbiting relay leaves — where the static-routing baseline shows a
``mob02``-style outage lasting until the orbit returns.  Static-routing
construction itself is guarded bit-for-bit: a node built with the default
``routing="static"`` is indistinguishable from a pre-PR node.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    mob02_tcp_handoff,
    mob03_mesh_routing,
    mob04_relay_failover,
    rt01_control_overhead,
)

#: Small-but-meaningful parameter sets (larger than the determinism TINY_*
#: sets, smaller than FAST_PARAMS where possible).
MOB04_PARAMS = {"orbit_periods": (20.0,), "duration": 42.0, "warmup": 2.0,
                "cbr_interval": 0.08, "seed": 1}


class TestMob04Failover:
    @pytest.fixture(scope="class")
    def result(self):
        return mob04_relay_failover.run(**MOB04_PARAMS)

    def test_dsdv_delivery_resumes_via_backup_path(self, result):
        dsdv = result.get_series("dsdv delivery").y_values[0]
        static = result.get_series("static delivery").y_values[0]
        # DSDV keeps the flow alive across relay departures; static routing
        # delivers only while the orbiting relay is near the axis.
        assert dsdv > 0.8
        assert static < 0.5
        assert result.metrics["dsdv_minus_static_delivery"] > 0.3

    def test_reconvergence_is_measured_and_bounded(self, result):
        reconvergence = result.get_series("dsdv reconvergence s").y_values[0]
        assert reconvergence > 0.0, "a route break must have been repaired"
        # Bounded by HELLO hold time + advertisement propagation, far below
        # the half-period the static baseline waits for the relay's return.
        assert reconvergence < 5.0

    def test_application_outage_matches_the_routing_story(self, result):
        dsdv_outage = result.get_series("dsdv outage s").y_values[0]
        static_outage = result.get_series("static outage s").y_values[0]
        assert dsdv_outage < static_outage
        # The static outage spans a comparable stretch to the out-of-range
        # arc of the orbit; the DSDV outage is the repair latency plus
        # detection, well under half a period.
        assert static_outage > 8.0
        assert dsdv_outage < 10.0


class TestMob03Mesh:
    def test_fast_params_deliver_over_repaired_routes(self):
        result = mob03_mesh_routing.run(**mob03_mesh_routing.FAST_PARAMS, seed=1)
        for label in ("UA", "BA"):
            delivery = result.get_series(f"{label} delivery").y_values
            assert all(0.0 <= value <= 1.0 for value in delivery)
            assert delivery[0] > 0.5
            control = result.get_series(f"{label} ctrl frac").y_values
            assert all(0.0 < value < 1.0 for value in control)

    def test_grid_must_be_at_least_two_by_two(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            mob03_mesh_routing.run(grid_side=1)

    def test_warmup_must_precede_the_horizon(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            mob03_mesh_routing.run(warmup=5.0, duration=4.0)


class TestRt01Overhead:
    @pytest.fixture(scope="class")
    def result(self):
        return rt01_control_overhead.run(
            hello_intervals_s=(0.25, 1.0), duration=8.0, warmup=2.0,
            include_no_aggregation=True, seed=1)

    def test_longer_intervals_mean_less_overhead(self, result):
        for label in ("NA", "BA"):
            fractions = result.get_series(f"{label} ctrl frac")
            assert fractions.value_at(0.25) > fractions.value_at(1.0)
            rate = result.get_series(f"{label} ctrl/s")
            assert rate.value_at(0.25) > rate.value_at(1.0)

    def test_goodput_survives_the_control_plane(self, result):
        for label in ("NA", "BA"):
            goodput = result.get_series(f"{label} udp Mbps")
            assert min(goodput.y_values) > 0.0


class TestMob02ReprobeSatellite:
    def test_flag_off_reproduces_the_published_numbers(self):
        params = dict(orbit_periods=(8.0,), file_bytes=20_000, max_sim_time=20.0,
                      include_no_aggregation=False,
                      include_stationary_baseline=False, seed=1)
        default = mob02_tcp_handoff.run(**params)
        explicit = mob02_tcp_handoff.run(**params, tcp_idle_reprobe=False)
        assert default.to_dict() == explicit.to_dict()

    def test_reprobe_rescues_a_phase_locked_transfer(self):
        params = dict(orbit_periods=(40.0,), file_bytes=60_000,
                      max_sim_time=120.0, include_no_aggregation=False,
                      include_stationary_baseline=False, seed=1)
        stalled = mob02_tcp_handoff.run(**params)
        probed = mob02_tcp_handoff.run(**params, tcp_idle_reprobe=True)
        fraction = "UA received fraction"
        assert stalled.get_series(fraction).y_values[0] < 1.0
        assert probed.get_series(fraction).y_values[0] == pytest.approx(1.0)
        assert (probed.get_series("UA").y_values[0]
                > stalled.get_series("UA").y_values[0])


class TestRoutingConservation:
    def test_mesh_routing_run_conserves_every_followed_packet(self):
        # mob03 drives AODV under mobility — route breaks, rebuffering and
        # RREQ retries are exactly where custody hand-offs could go missing.
        from repro.obs import observe

        with observe(journey=True) as session:
            mob03_mesh_routing.run(speeds_mps=(2.0,), grid_side=2,
                                   warmup=1.0, duration=4.0, seed=3)
        assert session.journey_count() > 0
        report = session.conservation_report()
        assert report["balanced"], report


class TestStaticRoutingUnchanged:
    def test_default_node_carries_no_control_plane(self):
        from repro.net.routing import RoutingTable
        from repro.sim.simulator import Simulator
        from repro.channel.medium import WirelessChannel
        from repro.core.policies import broadcast_aggregation
        from repro.node.node import Node

        sim = Simulator(seed=1)
        node = Node(sim, WirelessChannel(sim), index=1,
                    policy=broadcast_aggregation())
        assert type(node.routing_table) is RoutingTable
        assert node.router is None
        node.start_routing()  # must be a no-op, not an error
        assert sim.pending_events == 0
        assert node.mac_stats.routing_subframes_sent == 0
