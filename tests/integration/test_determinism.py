"""Seed determinism of the scenario runners, and the warmup regression.

The campaign layer replicates experiments across seeds and processes, which
is only sound if (a) the same seed always produces byte-identical results and
(b) different seeds actually explore different random trajectories.  The
mobile scenarios (trajectories, per-link shadowing draws) are held to the
same contract, in-process and across pool workers.
"""

from __future__ import annotations

import pytest

from repro.campaign.runner import CampaignRunner
from repro.core.policies import broadcast_aggregation, unicast_aggregation
from repro.experiments import (
    mob01_flooding_mobility,
    mob02_tcp_handoff,
    mob03_mesh_routing,
    mob04_relay_failover,
    rt01_control_overhead,
    rt02_overhead_scaling,
)
from repro.experiments.scenarios import (
    run_star_tcp,
    run_tcp_transfer,
    run_udp_saturation,
)
from repro.units import throughput_mbps

FILE_BYTES = 30_000
UDP_DURATION = 3.0

#: Reduced mobile-scenario parameters (see the modules' FAST_PARAMS for the
#: campaign-scale sweeps; these are smaller still to keep this file quick).
TINY_MOB01 = {"speeds_mps": (3.0,), "node_count": 4, "duration": 1.5,
              "flooding_interval": 0.25}
TINY_MOB02 = {"orbit_periods": (6.0,), "file_bytes": 15_000, "max_sim_time": 15.0,
              "include_no_aggregation": False, "include_stationary_baseline": False}
TINY_MOB03 = {"speeds_mps": (3.0,), "grid_side": 2, "duration": 4.0, "warmup": 1.5,
              "include_no_aggregation": False}
TINY_MOB04 = {"orbit_periods": (10.0,), "duration": 12.0, "warmup": 1.5,
              "cbr_interval": 0.1, "include_static_baseline": False}
TINY_RT01 = {"hello_intervals_s": (0.5,), "duration": 4.0, "warmup": 1.5,
             "include_no_aggregation": False}
#: AODV only: the mobile byte-identical-per-seed contract must hold for the
#: on-demand control plane too (RREQ jitter, ring timers, expiry ordering).
TINY_RT02 = {"routings": ("aodv",), "flow_counts": (1, 2), "speeds_mps": (2.0,),
             "grid_side": 2, "duration": 5.0, "warmup": 2.0,
             "include_no_aggregation": False}


def _tcp_signature(seed: int) -> str:
    result = run_tcp_transfer(unicast_aggregation(), file_bytes=FILE_BYTES, seed=seed)
    return repr((result.throughput_mbps, result.completion_time,
                 result.receiver.bytes_received, result.complete))


def _udp_signature(seed: int) -> str:
    result = run_udp_saturation(broadcast_aggregation(), duration=UDP_DURATION,
                                flooding_interval=0.5, seed=seed)
    return repr((result.throughput_mbps, result.packets_received,
                 result.sink.bytes_received, result.warmup_bytes,
                 result.sink.first_arrival, result.sink.last_arrival))


def _star_signature(seed: int) -> str:
    result = run_star_tcp(unicast_aggregation(), file_bytes=FILE_BYTES, seed=seed)
    return repr((result.session_throughputs_mbps,
                 [receiver.bytes_received for receiver in result.receivers],
                 [receiver.completion_time for receiver in result.receivers]))


def _mob01_signature(seed: int) -> str:
    return repr(mob01_flooding_mobility.run(**TINY_MOB01, seed=seed).to_dict())


def _mob02_signature(seed: int) -> str:
    return repr(mob02_tcp_handoff.run(**TINY_MOB02, seed=seed).to_dict())


def _mob03_signature(seed: int) -> str:
    return repr(mob03_mesh_routing.run(**TINY_MOB03, seed=seed).to_dict())


def _mob04_signature(seed: int) -> str:
    return repr(mob04_relay_failover.run(**TINY_MOB04, seed=seed).to_dict())


def _rt01_signature(seed: int) -> str:
    return repr(rt01_control_overhead.run(**TINY_RT01, seed=seed).to_dict())


def _rt02_signature(seed: int) -> str:
    return repr(rt02_overhead_scaling.run(**TINY_RT02, seed=seed).to_dict())


ALL_SIGNATURES = [_tcp_signature, _udp_signature, _star_signature,
                  _mob01_signature, _mob02_signature, _mob03_signature,
                  _mob04_signature, _rt01_signature, _rt02_signature]
SIGNATURE_IDS = ["tcp_transfer", "udp_saturation", "star_tcp",
                 "mob01_flooding_mobility", "mob02_tcp_handoff",
                 "mob03_mesh_routing", "mob04_relay_failover",
                 "rt01_control_overhead", "rt02_aodv_overhead_scaling"]


@pytest.mark.parametrize("signature", ALL_SIGNATURES, ids=SIGNATURE_IDS)
def test_same_seed_runs_are_byte_identical(signature):
    assert signature(1) == signature(1)


@pytest.mark.parametrize("signature", ALL_SIGNATURES, ids=SIGNATURE_IDS)
def test_different_seeds_diverge(signature):
    assert signature(1) != signature(2)


@pytest.mark.parametrize("experiment_id,overrides", [
    ("mob01", TINY_MOB01),
    ("mob04", TINY_MOB04),
    ("rt02", TINY_RT02),
], ids=["mob01_mobility", "mob04_dynamic_routing", "rt02_aodv_routing"])
def test_mobile_campaign_across_pool_workers_matches_inline(experiment_id, overrides):
    # Mobility draws (trajectories, shadowing) and the routing control planes
    # (HELLO jitter, advertisement jitter, AODV rebroadcast jitter and ring
    # timers, expiry ordering) must replicate byte for byte in a fresh worker
    # process, or the campaign cache would mix histories.
    inline = CampaignRunner(jobs=1).run_campaign(experiment_id, seeds=[1, 2],
                                                 overrides=overrides)
    pooled = CampaignRunner(jobs=2).run_campaign(experiment_id, seeds=[1, 2],
                                                 overrides=overrides)
    assert pooled.replicas[1].to_dict() == inline.replicas[1].to_dict()
    assert pooled.replicas[2].to_dict() == inline.replicas[2].to_dict()
    assert pooled.aggregate.to_dict() == inline.aggregate.to_dict()


# ---------------------------------------------------------------------------
# Warmup regression: the parameter used to be dead (scenarios.py overwrote
# the warmup-adjusted throughput with the full-window value).
# ---------------------------------------------------------------------------

def test_udp_warmup_parameter_affects_throughput():
    short = run_udp_saturation(unicast_aggregation(), duration=4.0, warmup=0.5, seed=3)
    long = run_udp_saturation(unicast_aggregation(), duration=4.0, warmup=2.0, seed=3)
    # Same simulation either way (same seed, same horizon) — only the
    # measurement window differs, so a live warmup parameter must move the
    # reported number.
    assert short.sink.bytes_received == long.sink.bytes_received
    assert short.throughput_mbps != long.throughput_mbps


def test_udp_throughput_counts_only_post_warmup_bytes():
    warmup, duration = 1.0, 4.0
    result = run_udp_saturation(unicast_aggregation(), duration=duration,
                                warmup=warmup, seed=3)
    assert result.warmup_bytes > 0
    assert result.warmup_bytes < result.sink.bytes_received
    expected = throughput_mbps(result.sink.bytes_received - result.warmup_bytes,
                               duration - warmup)
    assert result.throughput_mbps == pytest.approx(expected)


def test_udp_sink_rejects_unsnapshotted_window_start():
    # Measuring from an arbitrary start would silently count pre-window bytes
    # (the original warmup bug); without a snapshot it must refuse instead.
    from repro.errors import ConfigurationError
    result = run_udp_saturation(unicast_aggregation(), duration=2.0, seed=3)
    with pytest.raises(ConfigurationError, match="snapshot"):
        result.sink.throughput_mbps(measurement_start=0.123)
    # Same protection for the window end: a past, unsnapshotted end time
    # cannot be measured after the fact.
    with pytest.raises(ConfigurationError, match="snapshot"):
        result.sink.throughput_mbps(measurement_start=0.0, measurement_end=0.5)


def test_udp_zero_warmup_measures_full_window():
    duration = 3.0
    result = run_udp_saturation(unicast_aggregation(), duration=duration,
                                warmup=0.0, seed=3)
    assert result.warmup_bytes == 0
    assert result.throughput_mbps == pytest.approx(
        throughput_mbps(result.sink.bytes_received, duration))
