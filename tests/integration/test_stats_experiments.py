"""Tests for result containers, statistics collection and the experiment runners."""

from __future__ import annotations

import pytest

from repro.core import broadcast_aggregation, delayed_broadcast_aggregation, unicast_aggregation
from repro.experiments import run_star_tcp, run_tcp_transfer, run_udp_saturation
from repro.experiments.paper_values import PAPER_VALUES
from repro.stats.collect import node_frame_sizes, relay_detail, transmission_percentages
from repro.stats.results import ExperimentResult, Series, TableResult

SMALL_FILE = 50_000


# ---------------------------------------------------------------------------
# Result containers
# ---------------------------------------------------------------------------

def test_series_add_and_lookup():
    series = Series(label="BA")
    series.add(0.65, 0.25)
    series.add(1.3, 0.45)
    assert series.value_at(1.3) == 0.45
    assert series.peak == 0.45
    with pytest.raises(KeyError):
        series.value_at(2.6)


def test_table_result_cells_and_text():
    table = TableResult(title="variant", columns=["a", "b"])
    table.add_row("NA", [1.0, 2.0])
    assert table.cell("NA", "b") == 2.0
    text = table.to_text()
    assert "variant" in text and "NA" in text


def test_experiment_result_rendering():
    result = ExperimentResult("figX", "demo")
    series = result.add_series(Series(label="BA"))
    series.add(1.0, 2.0)
    result.add_metric("gap", 0.1)
    result.note("a note")
    text = result.to_text()
    assert "figX" in text and "BA" in text and "gap" in text and "a note" in text
    assert result.get_series("BA") is series


def test_transmission_percentages_relative_to_baseline():
    percentages = transmission_percentages({"NA": 200, "UA": 70, "BA": 50})
    assert percentages["NA"] == 100.0
    assert percentages["UA"] == pytest.approx(35.0)
    assert transmission_percentages({"UA": 10}) == {"UA": 0.0}


def test_paper_values_registry_contains_every_table_and_figure():
    for key in ("table2", "figure7", "figure8", "figure9", "figure10", "figure11",
                "figure12", "figure13", "figure14", "table3", "table4", "table5",
                "table6", "table7", "table8", "setup"):
        assert key in PAPER_VALUES


# ---------------------------------------------------------------------------
# Scenario runners
# ---------------------------------------------------------------------------

def test_run_tcp_transfer_returns_complete_result():
    outcome = run_tcp_transfer(broadcast_aggregation(), hops=2, rate_mbps=1.3,
                               file_bytes=SMALL_FILE, seed=3)
    assert outcome.complete
    assert outcome.throughput_mbps > 0.1
    assert outcome.completion_time is not None
    assert len(outcome.network) == 3


def test_run_tcp_transfer_with_delayed_relay_policy():
    outcome = run_tcp_transfer(broadcast_aggregation(), hops=2, rate_mbps=1.3,
                               file_bytes=SMALL_FILE, seed=3,
                               relay_policy=delayed_broadcast_aggregation())
    assert outcome.complete
    assert outcome.network.node(2).policy.is_delayed
    assert not outcome.network.node(1).policy.is_delayed


def test_run_udp_saturation_measures_throughput():
    outcome = run_udp_saturation(unicast_aggregation(), hops=2, rate_mbps=0.65,
                                 duration=6.0, seed=3)
    assert 0.1 < outcome.throughput_mbps < 0.65
    assert outcome.packets_received > 50


def test_scenario_runs_conserve_every_followed_packet():
    # The journey audit must balance on the raw scenario runners too: TCP
    # retransmissions (fresh packets per attempt) and saturated UDP queues
    # (queue-full drops) are the classic places packets leak silently.
    from repro.obs import observe

    with observe(journey=True) as session:
        run_tcp_transfer(unicast_aggregation(), file_bytes=20_000, seed=2)
        run_udp_saturation(broadcast_aggregation(), duration=2.0,
                           flooding_interval=0.5, seed=2)
    assert session.journey_count() > 0
    report = session.conservation_report()
    assert report["balanced"], report


def test_run_udp_saturation_with_flooding_attaches_flooders():
    outcome = run_udp_saturation(broadcast_aggregation(), hops=2, rate_mbps=0.65,
                                 duration=5.0, flooding_interval=0.5, seed=3)
    assert len(outcome.flooders) == 3
    assert all(f.packets_sent > 0 for f in outcome.flooders)
    assert outcome.throughput_mbps > 0.1


def test_run_star_tcp_reports_worst_case_session():
    outcome = run_star_tcp(broadcast_aggregation(), rate_mbps=1.3, file_bytes=SMALL_FILE, seed=3)
    assert len(outcome.session_throughputs_mbps) == 2
    assert outcome.worst_case_throughput_mbps == min(outcome.session_throughputs_mbps)
    assert outcome.worst_case_throughput_mbps > 0.05


# ---------------------------------------------------------------------------
# Statistics collection
# ---------------------------------------------------------------------------

def test_relay_detail_reports_paper_metrics():
    outcome = run_tcp_transfer(unicast_aggregation(), hops=2, rate_mbps=1.3,
                               file_bytes=SMALL_FILE, seed=3)
    detail = relay_detail(outcome.network, relay_indices=[2])
    assert detail["transmissions"] > 0
    assert detail["average_frame_size"] > 1000
    assert 0.0 < detail["size_overhead"] < 0.5
    assert 0.0 < detail["time_overhead"] < 0.8
    assert detail["average_subframes_per_frame"] >= 1.0


def test_node_frame_sizes_server_bigger_than_client():
    outcome = run_tcp_transfer(unicast_aggregation(), hops=2, rate_mbps=1.3,
                               file_bytes=SMALL_FILE, seed=3)
    sizes = node_frame_sizes(outcome.network)
    # The server sends large data aggregates; the client sends small ACK frames.
    assert sizes[1] > sizes[3]
    assert sizes[2] > sizes[3]


def test_aggregation_reduces_relay_transmissions_and_overhead():
    from repro.core import no_aggregation
    na = run_tcp_transfer(no_aggregation(), hops=2, rate_mbps=1.3,
                          file_bytes=SMALL_FILE, seed=3)
    ba = run_tcp_transfer(broadcast_aggregation(), hops=2, rate_mbps=1.3,
                          file_bytes=SMALL_FILE, seed=3)
    na_detail = relay_detail(na.network, [2])
    ba_detail = relay_detail(ba.network, [2])
    assert ba_detail["transmissions"] < 0.6 * na_detail["transmissions"]
    assert ba_detail["average_frame_size"] > 2 * na_detail["average_frame_size"]
    assert ba_detail["size_overhead"] < na_detail["size_overhead"]
    assert ba_detail["time_overhead"] < na_detail["time_overhead"]
