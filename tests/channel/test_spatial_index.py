"""Property and lifecycle tests for the uniform-grid spatial index.

The grid's one load-bearing promise: its candidate list is a **superset** of
every registered PHY that could detect a frame — at any cell size, for any
placement, stationary or mid-flight, with or without shadowing.  The
differential suite (``tests/integration/test_spatial_determinism.py``) shows
whole runs agree; this file attacks the promise directly on random
placements, and pins the index's lifecycle invariants (purge on unregister,
re-bucketing on moves, no inheritance across id() recycling).
"""

from __future__ import annotations

import gc
import random

import pytest

from helpers.routing import connected_placement

from repro.channel.medium import WirelessChannel
from repro.channel.propagation import LogNormalShadowing
from repro.channel.spatial import UniformGridIndex
from repro.errors import ConfigurationError
from repro.phy.device import Phy, PhyConfig
from repro.sim.simulator import Simulator
from repro.topology.city import city_positions

TX_POWER_DBM = PhyConfig().tx_power_dbm
DETECT_FLOOR_DBM = PhyConfig().detect_floor_dbm

#: Cell sizes spanning much-smaller-than-range through much-larger (the
#: superset property must be independent of this tuning knob).
CELL_SIZES_M = (2.0, 7.0, 14.6, 40.0)


def _build(sim, positions, propagation=None, cell=7.0):
    channel = WirelessChannel(sim, propagation=propagation,
                              spatial_index="grid", spatial_cell_m=cell)
    phys = [Phy(sim, channel, position=position, name=f"phy{i + 1}")
            for i, position in enumerate(positions)]
    return channel, phys


def _detectable_receivers(channel, sender, phys, now):
    """Brute force: every PHY whose exact received power clears its floor."""
    receivers = []
    for phy in phys:
        if phy is sender:
            continue
        power = channel.received_power_dbm(sender, phy, TX_POWER_DBM, time=now)
        if power >= phy.config.detect_floor_dbm:
            receivers.append(phy)
    return receivers


def _assert_superset_and_ordered(channel, phys, now):
    spatial = channel._ensure_spatial()
    reach = channel._max_range_for(TX_POWER_DBM)
    assert reach is not None
    order = {id(phy): i for i, phy in enumerate(phys)}
    for sender in phys:
        candidates = spatial.candidates(sender.position_at(now), reach, now)
        candidate_ids = {id(phy) for phy in candidates}
        for receiver in _detectable_receivers(channel, sender, phys, now):
            assert id(receiver) in candidate_ids, (
                f"{receiver.name} can detect {sender.name} but the grid "
                f"pruned it (cell={spatial.cell_size_m})")
        ranks = [order[id(phy)] for phy in candidates]
        assert ranks == sorted(ranks), "candidates not in registration order"


# ---------------------------------------------------------------------------
# Superset property
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("cell", CELL_SIZES_M)
def test_superset_on_random_connected_placements(cell):
    for trial in range(6):
        rng = random.Random(1000 + trial)
        positions = connected_placement(rng, 8, 24.0)
        sim = Simulator(seed=trial + 1)
        channel, phys = _build(sim, positions, cell=cell)
        _assert_superset_and_ordered(channel, phys, now=0.0)


@pytest.mark.parametrize("cell", (3.0, 14.6))
def test_superset_on_cluster_placements(cell):
    # Cluster cities are dense in spots and empty elsewhere — the worst case
    # for any index that assumed uniform occupancy.  Connectivity is
    # irrelevant to the property, so disconnected layouts are kept.
    for trial in range(4):
        rng = random.Random(2000 + trial)
        positions = city_positions(40, spacing_m=8.0, placement="clusters",
                                   cluster_count=4, cluster_sigma_m=10.0,
                                   rng=rng)
        sim = Simulator(seed=trial + 1)
        channel, phys = _build(sim, positions, cell=cell)
        _assert_superset_and_ordered(channel, phys, now=0.0)


def test_superset_under_shadowing_draws():
    # Shadowing can *lower* a link's loss by up to max_sigma_factor * sigma;
    # the index widens its cutoff by exactly that margin (draws are clamped),
    # so even the luckiest draw cannot make a pruned receiver detectable.
    for trial in range(4):
        rng = random.Random(3000 + trial)
        positions = [(rng.uniform(0.0, 120.0), rng.uniform(0.0, 120.0))
                     for _ in range(14)]
        sim = Simulator(seed=trial + 1)
        channel, phys = _build(
            sim, positions, cell=10.0,
            propagation=LogNormalShadowing(sigma_db=6.0, coherence_time=0.5))
        # Evaluate at a few coherence epochs: each rolls fresh draws.
        for now in (0.0, 0.7, 1.3):
            _assert_superset_and_ordered(channel, phys, now=now)


class _Glide:
    """Minimal analytic mobility: constant velocity, no update events.

    Never copies its position into ``phy.position``, so the *only* way the
    index can see this PHY's motion is per-query revalidation against
    ``position_at(now)`` — exactly the code path under test.
    """

    def __init__(self, velocity):
        self.velocity = velocity
        self.origin = None
        self.phy = None

    def attach(self, phy):
        self.phy = phy
        self.origin = phy.position

    def start(self, stop_time=None):
        pass

    def position_at(self, time):
        return (self.origin[0] + self.velocity[0] * time,
                self.origin[1] + self.velocity[1] * time)


def test_superset_mid_flight_without_snapshot_updates():
    for trial in range(4):
        rng = random.Random(4000 + trial)
        positions = connected_placement(rng, 6, 20.0)
        sim = Simulator(seed=trial + 1)
        channel, phys = _build(sim, positions, cell=5.0)
        for i, phy in enumerate(phys):
            if i % 2 == 1:
                phy.set_mobility(_Glide((rng.uniform(-4.0, 4.0),
                                         rng.uniform(-4.0, 4.0))))
        # Queries strictly after several cell-widths of travel: stale cells
        # everywhere unless revalidation works.
        for now in (0.0, 3.5, 9.25):
            _assert_superset_and_ordered(channel, phys, now=now)


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------

def test_move_across_cells_then_unregister_leaves_nothing_behind():
    sim = Simulator(seed=1)
    channel, (anchor, mover) = _build(sim, [(0.0, 0.0), (3.0, 3.0)], cell=5.0)
    spatial = channel._ensure_spatial()
    assert spatial.stored_cell_of(mover) == (0, 0)
    # Static position reassignment must re-bucket through the setter hook.
    mover.position = (12.0, 17.0)
    assert spatial.stored_cell_of(mover) == spatial.cell_for((12.0, 17.0))
    spatial.audit()
    # Populate budget-cache rows for the doomed link, both directions.
    channel.received_power_dbm(mover, anchor, TX_POWER_DBM)
    channel.received_power_dbm(anchor, mover, TX_POWER_DBM)
    mover_id = id(mover)
    assert any(mover_id in key for key in channel._budget_cache)

    channel.unregister(mover)
    assert mover not in spatial
    assert spatial.stored_cell_of(mover) is None
    assert len(spatial) == 1
    spatial.audit()
    assert not any(mover_id in key for key in channel._budget_cache)


def test_mobile_entry_unregisters_cleanly_mid_flight():
    sim = Simulator(seed=2)
    channel, (anchor, rover) = _build(sim, [(0.0, 0.0), (2.0, 2.0)], cell=4.0)
    rover.set_mobility(_Glide((6.0, 0.0)))
    spatial = channel._ensure_spatial()
    assert spatial.mobile_count == 1
    # A query at t=3 revalidates and re-buckets the rover several cells away.
    spatial.candidates((0.0, 0.0), 1.0, 3.0)
    assert spatial.stored_cell_of(rover) == spatial.cell_for((20.0, 2.0))
    channel.unregister(rover)
    assert spatial.mobile_count == 0
    assert rover not in spatial
    spatial.audit()


def test_reregistration_after_id_recycling_never_inherits():
    sim = Simulator(seed=3)
    channel, (anchor, ghost) = _build(sim, [(0.0, 0.0), (23.0, 23.0)],
                                      cell=5.0)
    spatial = channel._ensure_spatial()
    ghost_cell = spatial.stored_cell_of(ghost)
    channel.received_power_dbm(ghost, anchor, TX_POWER_DBM)
    ghost_id = id(ghost)
    channel.unregister(ghost)
    del ghost
    gc.collect()
    # CPython routinely recycles the freed object's address for the next
    # same-shaped allocation; keep allocating until it does.  The property
    # under test is "no inheritance WHEN recycled", so bail out otherwise.
    fresh = None
    for attempt in range(512):
        candidate = Phy(sim, channel, position=(1.0, 1.0),
                        name=f"fresh{attempt}")
        if id(candidate) == ghost_id:
            fresh = candidate
            break
        channel.unregister(candidate)
        del candidate
        gc.collect()
    if fresh is None:
        pytest.skip("id() was not recycled within 512 allocations")
    assert spatial.stored_cell_of(fresh) == spatial.cell_for((1.0, 1.0))
    assert spatial.stored_cell_of(fresh) != ghost_cell
    assert not any(ghost_id in key and key != (ghost_id, ghost_id)
                   for key in channel._budget_cache), (
        "recycled id inherited budget-cache rows")
    spatial.audit()


def test_unregister_is_idempotent_and_audit_stays_clean():
    sim = Simulator(seed=4)
    channel, phys = _build(sim, [(0.0, 0.0), (6.0, 0.0), (0.0, 6.0)],
                           cell=4.0)
    spatial = channel._ensure_spatial()
    channel.unregister(phys[1])
    channel.unregister(phys[1])
    spatial.unregister(phys[1])
    assert len(spatial) == 2
    spatial.audit()


def test_cell_size_must_be_positive_and_finite():
    with pytest.raises(ConfigurationError):
        UniformGridIndex(0.0)
    with pytest.raises(ConfigurationError):
        UniformGridIndex(-3.0)
    with pytest.raises(ConfigurationError):
        UniformGridIndex(float("inf"))


def test_channel_rejects_unknown_spatial_mode():
    sim = Simulator(seed=5)
    with pytest.raises(ConfigurationError):
        WirelessChannel(sim, spatial_index="octree")
    with pytest.raises(ConfigurationError):
        WirelessChannel(sim, spatial_cell_m=-1.0)
