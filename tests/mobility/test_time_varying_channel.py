"""Time-varying link budgets, log-normal shadowing, and the stationary contract.

The mobility subsystem's central promise: the channel evaluates propagation
against exact positions at transmission start, per-link shadowing draws are
deterministic per seed, and a scenario built with ``Stationary`` models (or
no models at all) reproduces the static builders bit for bit.
"""

from __future__ import annotations

import math

import pytest

from repro.apps.cbr import CbrSource, UdpSink
from repro.channel.medium import WirelessChannel
from repro.channel.propagation import (
    LogDistancePathLoss,
    LogNormalShadowing,
    hydra_indoor_propagation,
)
from repro.core.policies import unicast_aggregation
from repro.errors import ConfigurationError, PhyError
from repro.mobility.models import CircularOrbit, Stationary
from repro.phy.device import Phy
from repro.sim.simulator import Simulator
from repro.topology.builders import build_linear_chain
from repro.topology.mobile import MobileScenario
from repro.units import mbps


def _two_phys(sim, propagation=None):
    channel = WirelessChannel(sim, propagation=propagation)
    a = Phy(sim, channel, position=(0.0, 0.0), name="a")
    b = Phy(sim, channel, position=(5.0, 0.0), name="b")
    return channel, a, b


# ---------------------------------------------------------------------------
# Time-varying positions in the link budget
# ---------------------------------------------------------------------------

def test_position_at_defaults_to_the_static_attribute():
    sim = Simulator(seed=1)
    _, a, _ = _two_phys(sim)
    assert a.position_at(0.0) is a.position
    assert a.position_at(123.0) is a.position


def test_link_budget_follows_the_mobile_node():
    sim = Simulator(seed=1)
    channel, a, b = _two_phys(sim)
    b.set_mobility(CircularOrbit(radius=2.5, period=8.0, center=(5.0, 0.0),
                                 phase_rad=math.pi))  # starts at (2.5, 0)
    snr_near = channel.link_snr_db(a, b)
    samples = []
    sim.schedule(4.0, lambda: samples.append(channel.link_snr_db(a, b)))
    sim.run(until=8.0)
    # Half a period later the orbit put b at (7.5, 0): 3x the distance.
    snr_far = samples[0]
    assert snr_near > snr_far
    expected_drop = 10.0 * 3.0 * math.log10(7.5 / 2.5)  # log-distance, n=3
    assert snr_near - snr_far == pytest.approx(expected_drop, rel=1e-6)


def test_received_power_uses_positions_at_the_given_time():
    sim = Simulator(seed=1)
    channel, a, b = _two_phys(sim)
    b.set_mobility(CircularOrbit(radius=2.5, period=8.0, center=(5.0, 0.0),
                                 phase_rad=math.pi), start=False)
    loss = hydra_indoor_propagation()
    for t in (0.0, 1.3, 4.0):
        expected = a.config.tx_power_dbm - loss.path_loss_db(
            a.position_at(t), b.position_at(t))
        assert channel.received_power_dbm(a, b, a.config.tx_power_dbm,
                                          time=t) == pytest.approx(expected)


def test_attaching_a_second_mobility_model_is_rejected():
    sim = Simulator(seed=1)
    _, a, _ = _two_phys(sim)
    a.set_mobility(Stationary())
    with pytest.raises(PhyError, match="already attached"):
        a.set_mobility(Stationary())


# ---------------------------------------------------------------------------
# Log-normal shadowing
# ---------------------------------------------------------------------------

def test_shadowing_offsets_are_deterministic_per_seed():
    offsets = []
    for _ in range(2):
        sim = Simulator(seed=5)
        channel, a, b = _two_phys(sim, propagation=LogNormalShadowing(sigma_db=6.0))
        offsets.append(channel.propagation.shadowing_db("a", "b", 0.0))
    assert offsets[0] == offsets[1]
    sim = Simulator(seed=6)
    channel, a, b = _two_phys(sim, propagation=LogNormalShadowing(sigma_db=6.0))
    assert channel.propagation.shadowing_db("a", "b", 0.0) != offsets[0]


def test_shadowing_is_symmetric_and_link_specific():
    sim = Simulator(seed=5)
    model = LogNormalShadowing(sigma_db=6.0)
    WirelessChannel(sim, propagation=model)
    assert model.shadowing_db("a", "b") == model.shadowing_db("b", "a")
    assert model.shadowing_db("a", "b") != model.shadowing_db("a", "c")
    asym = LogNormalShadowing(sigma_db=6.0, symmetric=False)
    WirelessChannel(Simulator(seed=5), propagation=asym)
    assert asym.shadowing_db("a", "b") != asym.shadowing_db("b", "a")


def test_shadowing_offset_is_independent_of_evaluation_order():
    sim = Simulator(seed=5)
    first = LogNormalShadowing(sigma_db=6.0)
    WirelessChannel(sim, propagation=first)
    ab_first = first.shadowing_db("a", "b")

    second = LogNormalShadowing(sigma_db=6.0)
    WirelessChannel(Simulator(seed=5), propagation=second)
    second.shadowing_db("c", "d")  # different link evaluated first
    assert second.shadowing_db("a", "b") == ab_first


def test_shadowing_applies_on_top_of_the_base_model():
    sim = Simulator(seed=5)
    base = LogDistancePathLoss()
    model = LogNormalShadowing(base=base, sigma_db=6.0)
    channel, a, b = _two_phys(sim, propagation=model)
    expected = base.path_loss_db(a.position, b.position) + model.shadowing_db("a", "b")
    measured = a.config.tx_power_dbm - channel.received_power_dbm(
        a, b, a.config.tx_power_dbm)
    assert measured == pytest.approx(expected)
    # The position-only protocol cannot know the link: base loss only.
    assert model.path_loss_db(a.position, b.position) == base.path_loss_db(
        a.position, b.position)


def test_shadowing_coherence_time_redraws_per_epoch():
    model = LogNormalShadowing(sigma_db=6.0, coherence_time=2.0)
    WirelessChannel(Simulator(seed=5), propagation=model)
    early = model.shadowing_db("a", "b", 0.5)
    assert model.shadowing_db("a", "b", 1.9) == early  # same epoch
    assert model.shadowing_db("a", "b", 2.1) != early  # next epoch
    static = LogNormalShadowing(sigma_db=6.0)
    WirelessChannel(Simulator(seed=5), propagation=static)
    assert static.shadowing_db("a", "b", 0.0) == static.shadowing_db("a", "b", 99.0)


def test_unbound_shadowing_refuses_link_evaluation():
    model = LogNormalShadowing(sigma_db=6.0)
    with pytest.raises(ConfigurationError, match="not bound"):
        model.shadowing_db("a", "b")
    with pytest.raises(ConfigurationError):
        LogNormalShadowing(sigma_db=-1.0)
    with pytest.raises(ConfigurationError):
        LogNormalShadowing(coherence_time=0.0)


def test_rebinding_shadowing_drops_offsets_from_the_previous_run():
    # Reusing one model instance across simulators (e.g. a sweep loop) must
    # serve each run the draws of *its* seed, not whatever ran first.
    shared = LogNormalShadowing(sigma_db=6.0)
    WirelessChannel(Simulator(seed=1), propagation=shared)
    offset_seed1 = shared.shadowing_db("a", "b")
    WirelessChannel(Simulator(seed=2), propagation=shared)
    fresh = LogNormalShadowing(sigma_db=6.0)
    WirelessChannel(Simulator(seed=2), propagation=fresh)
    assert shared.shadowing_db("a", "b") == fresh.shadowing_db("a", "b")
    assert shared.shadowing_db("a", "b") != offset_seed1


def test_mobile_scenario_rejects_channel_plus_propagation():
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim)
    with pytest.raises(ConfigurationError, match="not.*both|both"):
        MobileScenario(sim, policy=unicast_aggregation(), channel=channel,
                       propagation=LogNormalShadowing(sigma_db=6.0))


def test_zero_sigma_shadowing_is_transparent():
    model = LogNormalShadowing(sigma_db=0.0)
    WirelessChannel(Simulator(seed=5), propagation=model)
    assert model.shadowing_db("a", "b") == 0.0


# ---------------------------------------------------------------------------
# The stationary contract
# ---------------------------------------------------------------------------

def _udp_signature(network, sim, duration=1.5):
    sink = UdpSink(network.node(2))
    source = CbrSource.saturating(network.node(1), network.node(2).ip,
                                  link_rate_bps=mbps(0.65))
    source.start(0.001)
    sim.run(until=duration)
    return repr((sink.packets_received, sink.bytes_received, sink.first_arrival,
                 sink.last_arrival, network.node(1).mac_stats.data_transmissions,
                 network.node(1).phy.frames_sent, network.node(2).phy.frames_received))


def _mobile_chain(seed, with_models):
    sim = Simulator(seed=seed)
    scenario = MobileScenario(sim, policy=unicast_aggregation(),
                              unicast_rate_mbps=0.65)
    scenario.add_node((0.0, 0.0), Stationary() if with_models else None)
    scenario.add_node((2.5, 0.0), Stationary() if with_models else None)
    scenario.connect_chain(1, 2)
    return sim, scenario.network


def test_stationary_models_reproduce_the_static_scenario_bit_for_bit():
    sim_static, static = _mobile_chain(3, with_models=False)
    sim_model, modelled = _mobile_chain(3, with_models=True)
    assert _udp_signature(static, sim_static) == _udp_signature(modelled, sim_model)


def test_mobile_scenario_matches_the_static_builder_bit_for_bit():
    sim_builder = Simulator(seed=3)
    built = build_linear_chain(sim_builder, hops=1, policy=unicast_aggregation(),
                               unicast_rate_mbps=0.65)
    sim_mobile, mobile = _mobile_chain(3, with_models=False)
    assert _udp_signature(built, sim_builder) == _udp_signature(mobile, sim_mobile)
